#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace b2b::net {

// ---------------------------------------------------------------------------
// TaskPool
// ---------------------------------------------------------------------------

TaskPool::TaskPool(std::size_t workers)
    : workers_count_(std::max<std::size_t>(workers, 1)) {
  threads_.reserve(workers_count_);
  for (std::size_t i = 0; i < workers_count_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() { shutdown(); }

void TaskPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    queue_.push_back(std::move(task));
    queue_peak_ = std::max<std::uint64_t>(queue_peak_, queue_.size());
  }
  cv_.notify_one();
}

void TaskPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

bool TaskPool::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty() && running_ == 0;
}

std::uint64_t TaskPool::queue_peak() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_peak_;
}

void TaskPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    auto task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    task();
    lock.lock();
    --running_;
  }
}

// ---------------------------------------------------------------------------
// Strand
// ---------------------------------------------------------------------------

Strand::Strand(std::shared_ptr<TaskPool> pool)
    : pool_(std::move(pool)), inner_(std::make_shared<Inner>()) {}

Strand::~Strand() { stop(); }

void Strand::post(std::function<void()> task) {
  bool kick = false;
  {
    std::lock_guard<std::mutex> lock(inner_->mutex);
    if (inner_->stopping) return;
    inner_->queue.push_back(std::move(task));
    if (!inner_->scheduled) {
      inner_->scheduled = true;
      kick = true;
    }
  }
  if (kick) {
    pool_->post([inner = inner_, pool = pool_] { drain(inner, pool); });
  }
}

void Strand::drain(const std::shared_ptr<Inner>& inner,
                   const std::shared_ptr<TaskPool>& pool) {
  constexpr int kBatch = 16;
  std::unique_lock<std::mutex> lock(inner->mutex);
  for (int ran = 0; ran < kBatch; ++ran) {
    if (inner->stopping || inner->queue.empty()) {
      inner->scheduled = false;
      lock.unlock();
      inner->cv.notify_all();
      return;
    }
    auto task = std::move(inner->queue.front());
    inner->queue.pop_front();
    inner->running = true;
    lock.unlock();
    task();
    lock.lock();
    inner->running = false;
    if (inner->queue.empty()) inner->cv.notify_all();
  }
  // Budget exhausted with work left: requeue ourselves so sibling
  // strands sharing the pool get a turn (`scheduled` stays true).
  lock.unlock();
  inner->cv.notify_all();
  pool->post([inner, pool] { drain(inner, pool); });
}

bool Strand::idle() const {
  std::lock_guard<std::mutex> lock(inner_->mutex);
  return inner_->queue.empty() && !inner_->running;
}

void Strand::wait_idle() const {
  std::unique_lock<std::mutex> lock(inner_->mutex);
  inner_->cv.wait(lock, [this] {
    return inner_->stopping || (inner_->queue.empty() && !inner_->running);
  });
}

void Strand::stop() {
  std::unique_lock<std::mutex> lock(inner_->mutex);
  inner_->stopping = true;
  inner_->queue.clear();
  inner_->cv.notify_all();
  inner_->cv.wait(lock, [this] { return !inner_->running; });
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

Reactor::Reactor(Config config)
    : config_(config),
      epoch_(std::chrono::steady_clock::now()),
      wheel_(0, config.wheel) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw Error("reactor: epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw Error("reactor: eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr marks the wakeup fd
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  loop_thread_ = std::thread([this] { loop(); });
}

Reactor::~Reactor() {
  shutdown();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::uint64_t Reactor::now_micros() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

bool Reactor::on_loop_thread() const {
  return std::this_thread::get_id() == loop_thread_.get_id();
}

Reactor::FdHandlerPtr Reactor::add_fd(
    int fd, std::uint32_t events, std::function<void(std::uint32_t)> on_events) {
  auto handle = std::make_shared<FdHandler>();
  handle->fd = fd;
  handle->on_events = std::move(on_events);
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = handle.get();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    B2B_WARN("reactor: epoll_ctl ADD failed for fd ", fd);
    return nullptr;
  }
  registered_.push_back(handle);
  return handle;
}

void Reactor::update_fd(const FdHandlerPtr& handle, std::uint32_t events) {
  if (!handle || handle->dead) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = handle.get();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, handle->fd, &ev);
}

void Reactor::remove_fd(const FdHandlerPtr& handle) {
  if (!handle || handle->dead) return;
  handle->dead = true;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, handle->fd, nullptr);
  auto it = std::find(registered_.begin(), registered_.end(), handle);
  if (it != registered_.end()) registered_.erase(it);
  // The current epoll_wait batch may still hold a raw pointer to this
  // handler; keep it alive until the batch is fully dispatched.
  graveyard_.push_back(handle);
}

bool Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    posted_.push_back(std::move(fn));
  }
  wake();
  return true;
}

TimerWheel::TimerId Reactor::schedule_at(std::uint64_t due_micros,
                                         std::function<void()> fn) {
  TimerWheel::TimerId id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return TimerWheel::kInvalidTimer;
    id = wheel_.schedule_at(due_micros, std::move(fn));
  }
  // The loop may be sleeping past the new deadline; re-derive it.
  if (!on_loop_thread()) wake();
  return id;
}

TimerWheel::TimerId Reactor::schedule_after(std::uint64_t delay_micros,
                                            std::function<void()> fn) {
  return schedule_at(now_micros() + delay_micros, std::move(fn));
}

bool Reactor::cancel(TimerWheel::TimerId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return wheel_.cancel(id);
}

Reactor::Stats Reactor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  stats.timers_fired = wheel_.fired();
  return stats;
}

void Reactor::wake() {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void Reactor::drain_wakeup_fd() {
  std::uint64_t value;
  while (::read(wake_fd_, &value, sizeof value) > 0) {
  }
}

void Reactor::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Already stopping; still join below (idempotent via joinable()).
    }
    stopping_ = true;
    posted_.clear();
  }
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
}

void Reactor::loop() {
  std::vector<epoll_event> events(
      static_cast<std::size_t>(std::max(config_.max_events, 1)));
  std::deque<std::function<void()>> run_now;
  std::vector<std::function<void()>> fired;
  for (;;) {
    int timeout_ms = -1;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      if (!posted_.empty()) {
        timeout_ms = 0;
      } else if (auto due = wheel_.next_due_micros()) {
        const std::uint64_t now = now_micros();
        timeout_ms = *due <= now
                         ? 0
                         : static_cast<int>(
                               std::min<std::uint64_t>((*due - now) / 1000 + 1,
                                                       60'000));
      }
    }
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) {
      B2B_WARN("reactor: epoll_wait failed, loop exiting");
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      ++stats_.epoll_wakeups;
      run_now.swap(posted_);
      wheel_.advance(now_micros(), fired);
    }
    // Timer callbacks run BEFORE posted tasks. Owners tear down via a
    // posted task (and are destroyed only after it runs), so a timer
    // callback extracted in the same batch as a teardown task must run
    // first — while its owner is still alive. Anything the callback
    // reschedules is still in the wheel when the teardown task runs,
    // so its cancel() calls catch everything that would fire later.
    for (auto& fn : fired) fn();
    fired.clear();
    for (auto& fn : run_now) fn();
    run_now.clear();
    for (int i = 0; i < n; ++i) {
      auto* handler = static_cast<FdHandler*>(events[i].data.ptr);
      if (handler == nullptr) {
        drain_wakeup_fd();
        continue;
      }
      if (handler->dead) continue;  // removed earlier in this batch
      handler->on_events(events[i].events);
    }
    graveyard_.clear();
  }
}

}  // namespace b2b::net
