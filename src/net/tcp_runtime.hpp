// TCP socket implementation of the runtime seam: a federation across
// real OS processes and hosts.
//
// This is the third Runtime (after the deterministic simulator and the
// in-process threaded fabric) and the first whose parties can live in
// separate processes, as the paper's prototype organisations did as
// separate JVMs over Java RMI. Each party's TcpTransport owns one
// listening acceptor; connections to peers are established lazily on
// first send and re-established with capped exponential backoff after
// loss. On the wire every message travels as a length-prefixed,
// CRC-framed frame; the first frame in each direction of a connection is
// a handshake naming the sending party and its *incarnation* (a fresh
// random value per transport instance).
//
// §4.2 layering over a fair-lossy byte stream: TCP alone is not the
// paper's "eventual, once-only delivery" — a connection can die with
// data unflushed (not eventual) and a retransmit after a reset can
// deliver twice (not once-only). So the same machinery the other two
// runtimes use is layered on top: positive acknowledgement with
// retransmission for *eventual* delivery across resets and process
// crashes, per-sender sequence dedup (DedupWindow) for *once-only*
// delivery. The handshake incarnation scopes dedup state to one
// transport lifetime: a restarted process announces a new incarnation,
// the receiver drops the old window (its sequence numbers restart), and
// cross-restart duplicate suppression is delegated to the coordinator's
// journal-gated replay detection, exactly as DESIGN.md §7 prescribes
// for the crash model.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/chacha20.hpp"
#include "net/dedup.hpp"
#include "net/peer_directory.hpp"
#include "net/runtime.hpp"
#include "net/socket.hpp"
#include "net/wire_auth.hpp"
#include "net/threaded_runtime.hpp"  // SystemClock, ThreadedExecutor

namespace b2b::net {

/// Send-side fault injection: each frame write (initial or retransmit)
/// may be dropped or duplicated, sampled from a seeded generator. This
/// is the TCP fabric's analogue of ThreadedFaults — the bytes genuinely
/// never hit (or hit twice) the socket, so the §4.2 masking layer is
/// exercised over a real stream.
struct TcpFaults {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
};

/// Injected-fault counters (fabric-level, distinct from Transport::Stats).
struct TcpFabricStats {
  std::uint64_t frames_dropped_injected = 0;
  std::uint64_t frames_duplicated_injected = 0;
};

/// Eventual once-only delivery over real TCP connections.
class TcpTransport final : public Transport {
 public:
  struct Config {
    /// Real-time retransmission interval for un-acked messages. Also the
    /// cadence at which missing connections are (re)dialled.
    std::uint64_t retransmit_interval_micros = 20'000;
    /// Give-up bound so a permanently dead peer cannot pin the
    /// retransmit thread (and quiescence) forever.
    std::size_t max_retransmits = 10'000;
    /// Reconnect backoff: first retry after the min, doubling per
    /// failure up to the cap.
    std::uint64_t reconnect_backoff_min_micros = 20'000;
    std::uint64_t reconnect_backoff_max_micros = 1'000'000;
    /// Bound on one connect() attempt (dead-host, not dead-port, case).
    std::uint64_t connect_timeout_micros = 2'000'000;
    /// Bound on waiting for a peer's handshake frame: an accepted
    /// connection that never introduces itself is dropped.
    std::uint64_t handshake_timeout_micros = 5'000'000;
    /// Frames larger than this are treated as stream corruption.
    std::size_t max_frame_bytes = 16u << 20;
    /// Seed for the injected-fault generator.
    std::uint64_t fault_seed = 1;
    TcpFaults faults{};
    /// Wire v3 session authentication (wire_auth.hpp): per-connection
    /// HMAC keys negotiated at the hello, every data/ack frame MAC'd.
    WireAuth auth{};
  };

  /// Binds `host:port` (port 0 = ephemeral, see port()) and starts the
  /// acceptor and retransmit threads. `directory` is consulted when
  /// dialling peers; it is shared and may be updated concurrently.
  /// Throws b2b::Error if the address cannot be bound.
  TcpTransport(PartyId self, const std::string& host, std::uint16_t port,
               std::shared_ptr<PeerDirectory> directory, Config config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // Transport interface — all entry points are thread-safe.
  void send(const PartyId& to, Bytes payload) override;
  void set_handler(Handler handler) override;
  void set_handler_sync(Handler handler) override;
  void set_delivery_failure_handler(DeliveryFailureHandler handler) override;
  const PartyId& self() const override { return self_; }
  std::size_t unacked() const override;
  Stats stats() const override;

  /// The port the acceptor actually bound (resolves port 0).
  std::uint16_t port() const { return listener_.port(); }

  /// This transport instance's incarnation (fresh random per instance).
  std::uint64_t incarnation() const { return incarnation_; }

  /// Crash-model switch, as ThreadedNetwork::set_alive: while dead the
  /// party neither sends nor receives — outgoing writes are suppressed
  /// (but stay queued; §4.2 persistent storage) and incoming frames are
  /// dropped *un-acked*, so peers keep retransmitting into the downtime
  /// and delivery resumes on recovery. Connections stay open: the
  /// transport object models the surviving reliable channel.
  void set_alive(bool alive);

  /// Quiescence: nothing un-acked and no delivery in flight through the
  /// handler. Polled by ThreadedExecutor::settle.
  bool quiescent() const;

  TcpFabricStats fabric_stats() const;

  /// Stop the acceptor, reader and retransmit threads and close every
  /// connection (idempotent; also run by the destructor).
  void shutdown();

 private:
  /// One TCP connection (either direction). Usable for sending once the
  /// peer's handshake has been received (`handshaken`); writers
  /// serialise on `write_mutex`.
  struct Conn {
    Socket socket;
    std::mutex write_mutex;
    PartyId peer;                       // known at dial / after handshake
    std::uint64_t peer_incarnation = 0; // valid once handshaken
    bool handshaken = false;            // guarded by owner's mutex_
    bool hello_sent = false;            // touched only by dialer/reader
    /// Per-direction MAC keys (wire v3). `send` is set before the conn is
    /// published (dial) or before register_handshake makes it preferred
    /// (inbound reply), `recv` by the reader while processing the peer's
    /// hello; both are immutable afterwards, so post-publication readers
    /// need no extra lock.
    ConnKeys keys;
    std::atomic<bool> dead{false};
  };
  using ConnPtr = std::shared_ptr<Conn>;

  void accept_loop();
  void reader_loop(ConnPtr conn);
  void retransmit_loop();

  /// Frame `payload` ([u32 len][u32 crc32][payload]) and write it.
  /// Returns false (and kills the conn) on a write error.
  bool write_frame(const ConnPtr& conn, const Bytes& payload);
  void kill_conn(const ConnPtr& conn);

  /// Handshake receipt: adopt the peer's incarnation (resetting its
  /// dedup window if it changed) and make this the preferred connection
  /// for sending to the peer.
  void register_handshake(const ConnPtr& conn, PartyId peer,
                          std::uint64_t peer_incarnation);
  /// Returns false when the frame's incarnation proves it was spliced
  /// into this connection (caller must reset the connection).
  bool handle_data(const ConnPtr& conn, std::uint64_t frame_inc,
                   std::uint64_t seq, Bytes payload);
  void handle_ack(const PartyId& from, std::uint64_t frame_inc,
                  std::uint64_t seq);

  /// Dial `to` if the backoff allows (retransmit thread only). Returns
  /// the new connection, or nullptr.
  ConnPtr dial(const PartyId& to);

  /// Sample the injected-fault model for one frame write: 0 = drop,
  /// 1 = normal, 2 = duplicate. Caller holds mutex_.
  int sample_faults_locked();

  PartyId self_;
  std::shared_ptr<PeerDirectory> directory_;
  Config config_;
  std::uint64_t incarnation_;
  Listener listener_;

  mutable std::mutex mutex_;  // protocol + connection-table state below
  Handler handler_;
  DeliveryFailureHandler failure_handler_;
  Stats stats_;
  TcpFabricStats fabric_stats_;
  crypto::ChaCha20Rng fault_rng_;
  bool alive_ = true;
  struct Outgoing {
    Bytes payload;
    std::size_t attempts = 1;
  };
  std::unordered_map<PartyId, std::uint64_t> next_seq_;
  std::map<std::pair<PartyId, std::uint64_t>, Outgoing> outgoing_;
  std::unordered_map<PartyId, DedupWindow> delivered_;
  /// Latest incarnation seen per peer; frames from connections carrying
  /// a stale incarnation are dropped un-acked (the old process is gone).
  std::unordered_map<PartyId, std::uint64_t> peer_incarnation_;
  /// Preferred connection per peer (latest handshake wins, so an
  /// inbound connection from a restarted peer supersedes a stale dial).
  std::unordered_map<PartyId, ConnPtr> active_;
  struct Backoff {
    std::uint64_t delay_micros = 0;       // 0 = try immediately
    std::uint64_t not_before_micros = 0;  // SystemClock-style monotonic
    bool ever_connected = false;
  };
  std::unordered_map<PartyId, Backoff> backoff_;
  int dispatching_ = 0;  // deliveries in flight through the handler
  std::condition_variable dispatch_cv_;

  /// Serialises handler invocations (Transport contract: at most one
  /// delivering thread at a time). Never held together with mutex_.
  std::mutex deliver_mutex_;

  std::mutex conns_mutex_;  // conns_ / reader_threads_ / accepting
  std::vector<ConnPtr> conns_;
  std::vector<std::thread> reader_threads_;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;

  std::thread acceptor_;
  std::thread retransmitter_;
};

/// The TCP substrate as one bundle: a shared peer directory, real clock,
/// one TcpTransport per *local* party, and an executor whose quiescence
/// probe covers the local transports. In a cross-process deployment each
/// process holds one TcpRuntime with its own parties; in-process tests
/// put every party in one bundle on localhost.
class TcpRuntime final : public Runtime {
 public:
  struct Options {
    /// Shared address registry; created (empty) when null. Parties not
    /// listed are bound to `default_host` on an ephemeral port and
    /// written back, so single-process harnesses need no config at all.
    std::shared_ptr<PeerDirectory> directory;
    std::string default_host = "127.0.0.1";
    /// Per-party fault seed base (patterns repeatable per seed+party).
    std::uint64_t seed = 1;
    TcpFaults faults{};
    TcpTransport::Config transport{};
    ThreadedExecutor::Config executor{};
    /// Session-auth hook: called once per add_party to produce that
    /// party's WireAuth (its private key + the shared peer-key lookup).
    /// Null = wire auth off for every party in the bundle.
    std::function<WireAuth(const PartyId&)> wire_auth;
  };

  explicit TcpRuntime(const Options& options);
  ~TcpRuntime() override;

  /// Stop every runtime thread (timer first, then transports) without
  /// destroying the bundle. Idempotent; the destructor calls it. Harnesses
  /// that own threads fed by these transports (coordinator shard lanes)
  /// call this, then stop their threads, then let destructors run.
  void shutdown();

  TcpRuntime(const TcpRuntime&) = delete;
  TcpRuntime& operator=(const TcpRuntime&) = delete;

  Transport& add_party(const PartyId& id) override;
  Clock& clock() override { return clock_; }
  Executor& executor() override { return executor_; }

  PeerDirectory& directory() { return *directory_; }
  std::shared_ptr<PeerDirectory> directory_ptr() { return directory_; }

  /// The local transport for `id` (nullptr if unknown to this bundle).
  TcpTransport* transport(const PartyId& id);

  /// Crash-model switch for a local party (see TcpTransport::set_alive).
  void set_alive(const PartyId& id, bool alive);

  /// Aggregate injected-fault counters across local transports.
  TcpFabricStats fabric_stats() const;

  bool quiescent() const;

  /// Extra quiescence condition consulted by settle(), e.g. "this
  /// coordinator's shard lanes are idle" — a frame acked by the transport
  /// may still be queued on a per-object dispatch lane. Register and poll
  /// from the harness thread only (settle() runs there too).
  void add_quiescence_probe(std::function<bool()> probe) {
    quiescence_probes_.push_back(std::move(probe));
  }

 private:
  Options options_;
  std::shared_ptr<PeerDirectory> directory_;
  SystemClock clock_;
  std::vector<std::unique_ptr<TcpTransport>> transports_;
  std::vector<std::function<bool()>> quiescence_probes_;
  ThreadedExecutor executor_;
};

}  // namespace b2b::net
