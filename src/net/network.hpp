// Simulated unreliable network between organisations.
//
// §4.2 assumes "eventual, once-only message delivery" presented by the
// middleware on top of a network that may lose, delay, duplicate and
// reorder messages, partition (partitions heal eventually) and whose nodes
// may crash and recover. SimNetwork implements exactly that raw substrate;
// the ReliableEndpoint in reliable.hpp layers the assumed semantics on top.
//
// A pluggable Intruder hook implements the Dolev-Yao attacker of §4.4: it
// sees every datagram and may pass, drop, delay, tamper with or record it
// (and can inject recorded datagrams later = replay).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/chacha20.hpp"
#include "net/scheduler.hpp"

namespace b2b::net {

/// Per-link fault configuration. Delays are sampled uniformly.
struct LinkFaults {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  SimTime min_delay_micros = 1'000;
  SimTime max_delay_micros = 5'000;
};

/// Dolev-Yao intruder interface. Return value tells the network what to do
/// with the datagram; kTamper means `payload` was modified in place and
/// should still be delivered; kDelay means deliver after `*extra_delay`.
class Intruder {
 public:
  enum class Verdict { kPass, kDrop, kTamper, kDelay };

  virtual ~Intruder() = default;
  virtual Verdict intercept(const PartyId& from, const PartyId& to,
                            Bytes& payload, SimTime* extra_delay) = 0;
};

/// Counters exposed for the benches (E6: message/byte complexity).
struct NetworkStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t datagrams_dropped = 0;
  std::uint64_t datagrams_duplicated = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
};

/// The simulated datagram network. Not a reliable channel: see
/// ReliableEndpoint for the once-only layer.
class SimNetwork {
 public:
  using Handler =
      std::function<void(const PartyId& from, const Bytes& payload)>;

  SimNetwork(EventScheduler& scheduler, std::uint64_t seed);

  /// Register a node. Reattaching replaces the handler (used on recovery).
  void attach(const PartyId& node, Handler handler);

  /// Crash (`alive=false`) or recover (`alive=true`) a node. A dead node
  /// neither sends nor receives; datagrams addressed to it are dropped.
  void set_alive(const PartyId& node, bool alive);
  bool alive(const PartyId& node) const;

  /// Fault model: per-link overrides fall back to the default.
  void set_default_faults(const LinkFaults& faults) { default_faults_ = faults; }
  void set_link_faults(const PartyId& from, const PartyId& to,
                       const LinkFaults& faults);
  void clear_link_faults() { link_faults_.clear(); }

  /// Cut connectivity between the two groups until `heal_at` (virtual
  /// time). Datagrams across the cut are dropped while it is in force.
  void partition(const std::set<PartyId>& side_a,
                 const std::set<PartyId>& side_b, SimTime heal_at);

  /// Install (or remove, with nullptr) the Dolev-Yao intruder.
  void set_intruder(Intruder* intruder) { intruder_ = intruder; }

  /// Send one datagram. May be lost/duplicated/delayed per the fault
  /// model. Sending from or to a dead node silently drops.
  void send(const PartyId& from, const PartyId& to, Bytes payload);

  /// Deliver a datagram verbatim after `delay` (used by intruders to
  /// replay recorded traffic).
  void inject(const PartyId& from, const PartyId& to, Bytes payload,
              SimTime delay);

  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

  EventScheduler& scheduler() { return scheduler_; }

 private:
  struct PartitionRule {
    std::set<PartyId> side_a;
    std::set<PartyId> side_b;
    SimTime heal_at;
  };

  const LinkFaults& faults_for(const PartyId& from, const PartyId& to) const;
  bool partitioned(const PartyId& from, const PartyId& to) const;
  void schedule_delivery(const PartyId& from, const PartyId& to,
                         Bytes payload, SimTime delay);

  EventScheduler& scheduler_;
  crypto::ChaCha20Rng rng_;
  std::unordered_map<PartyId, Handler> handlers_;
  std::unordered_map<PartyId, bool> alive_;
  LinkFaults default_faults_;
  std::map<std::pair<PartyId, PartyId>, LinkFaults> link_faults_;
  std::vector<PartitionRule> partitions_;
  Intruder* intruder_ = nullptr;
  NetworkStats stats_;
};

}  // namespace b2b::net
