// Real-thread implementation of the runtime seam.
//
// Each party's ThreadedTransport runs on its own OS threads (a receiver
// draining a mutex/condvar mailbox, plus a retransmit timer), talking over
// an in-process lossy ThreadedNetwork. The delivery semantics are the same
// as ReliableEndpoint over SimNetwork — positive acknowledgement with
// retransmission for *eventual* delivery across loss and crash/recovery,
// per-sender sequence dedup (DedupWindow) for *once-only* delivery — so
// the protocol layer cannot tell the difference, which is the point: the
// same Coordinator/Replica code that runs deterministically on the
// simulator here serves genuinely concurrent traffic.
//
// What the threaded network does NOT model: link delays beyond natural
// scheduling jitter, partitions, and the Dolev-Yao intruder — those remain
// simulator-only instruments. Loss, duplication and node crash/recovery
// are supported.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/chacha20.hpp"
#include "net/dedup.hpp"
#include "net/runtime.hpp"

namespace b2b::net {

/// Fault model of the in-process channel. Probabilities are sampled from
/// a seeded generator under the network lock, so loss patterns are
/// repeatable even though thread interleavings are not.
struct ThreadedFaults {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
};

struct ThreadedNetworkStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t datagrams_dropped = 0;
  std::uint64_t datagrams_duplicated = 0;
};

class ThreadedTransport;

/// The in-process datagram fabric: a registry of per-party mailboxes.
class ThreadedNetwork {
 public:
  explicit ThreadedNetwork(std::uint64_t seed = 1,
                           ThreadedFaults faults = ThreadedFaults{});

  void set_faults(const ThreadedFaults& faults);

  /// Crash (`alive=false`) or recover (`alive=true`) a node, as
  /// SimNetwork::set_alive: a dead node neither sends nor receives.
  void set_alive(const PartyId& node, bool alive);
  bool alive(const PartyId& node) const;

  ThreadedNetworkStats stats() const;

 private:
  friend class ThreadedTransport;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::pair<PartyId, Bytes>> queue;
    bool closed = false;
    bool dispatching = false;  // a frame is being processed right now
  };

  /// Register `node`; returns its (stable, shared) mailbox.
  std::shared_ptr<Mailbox> attach(const PartyId& node);
  void detach(const PartyId& node);

  /// Send one datagram, applying the fault model.
  void deliver(const PartyId& from, const PartyId& to, const Bytes& payload);

  mutable std::mutex mutex_;  // registry, fault model, rng, stats
  crypto::ChaCha20Rng rng_;
  ThreadedFaults faults_;
  std::unordered_map<PartyId, std::shared_ptr<Mailbox>> boxes_;
  std::unordered_map<PartyId, bool> alive_;
  ThreadedNetworkStats stats_;
};

/// Eventual once-only delivery over a ThreadedNetwork, on real threads.
class ThreadedTransport final : public Transport {
 public:
  struct Config {
    /// Real-time retransmission interval for un-acked messages.
    std::uint64_t retransmit_interval_micros = 2'000;
    /// Give-up bound so a permanently dead peer cannot pin the
    /// retransmit thread (and quiescence) forever.
    std::size_t max_retransmits = 50'000;
  };

  ThreadedTransport(ThreadedNetwork& network, PartyId self, Config config);
  ThreadedTransport(ThreadedNetwork& network, PartyId self)
      : ThreadedTransport(network, std::move(self), Config{}) {}
  ~ThreadedTransport() override;

  ThreadedTransport(const ThreadedTransport&) = delete;
  ThreadedTransport& operator=(const ThreadedTransport&) = delete;

  // Transport interface — all entry points are thread-safe.
  void send(const PartyId& to, Bytes payload) override;
  void set_handler(Handler handler) override;
  void set_handler_sync(Handler handler) override;
  void set_delivery_failure_handler(DeliveryFailureHandler handler) override;
  const PartyId& self() const override { return self_; }
  std::size_t unacked() const override;
  Stats stats() const override;

  /// Quiescence: nothing un-acked, inbox drained, no frame in flight
  /// through the handler. Polled by ThreadedExecutor::settle.
  bool quiescent() const;

  /// Stop the worker threads (idempotent; also run by the destructor).
  void shutdown();

 private:
  void receive_loop();
  void retransmit_loop();
  void process_frame(const PartyId& from, const Bytes& frame);

  ThreadedNetwork& network_;
  PartyId self_;
  Config config_;
  std::shared_ptr<ThreadedNetwork::Mailbox> mailbox_;

  mutable std::mutex mutex_;  // everything below
  Handler handler_;
  DeliveryFailureHandler failure_handler_;
  Transport::Stats stats_;
  struct Outgoing {
    Bytes payload;
    std::size_t attempts = 1;
  };
  std::unordered_map<PartyId, std::uint64_t> next_seq_;
  std::map<std::pair<PartyId, std::uint64_t>, Outgoing> outgoing_;
  std::unordered_map<PartyId, DedupWindow> delivered_;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;

  std::thread receiver_;
  std::thread retransmitter_;
};

/// Real monotonic time plus a timer thread for schedule_after.
class SystemClock final : public Clock {
 public:
  SystemClock();
  ~SystemClock() override;

  SystemClock(const SystemClock&) = delete;
  SystemClock& operator=(const SystemClock&) = delete;

  std::uint64_t now_micros() const override;
  void schedule_after(std::uint64_t delay_micros,
                      std::function<void()> fn) override;

  /// Stop the timer thread; pending timers are dropped.
  void shutdown();

 private:
  void timer_loop();

  struct Timer {
    std::uint64_t due_micros;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Timer& other) const {
      if (due_micros != other.due_micros) return due_micros > other.due_micros;
      return seq > other.seq;
    }
  };

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::thread thread_;
};

/// Progress = real time passing while worker threads run. `run_until`
/// polls the predicate; `settle` waits for a caller-supplied quiescence
/// probe to hold over several consecutive samples.
class ThreadedExecutor final : public Executor {
 public:
  struct Config {
    std::uint64_t poll_interval_micros = 500;
    /// run_until / settle give up after this much real time.
    std::uint64_t timeout_micros = 60'000'000;
    /// Consecutive quiescent samples settle requires.
    int stable_samples = 3;
  };

  ThreadedExecutor(std::function<bool()> quiescent, Config config)
      : quiescent_(std::move(quiescent)), config_(config) {}
  explicit ThreadedExecutor(std::function<bool()> quiescent)
      : ThreadedExecutor(std::move(quiescent), Config{}) {}

  bool run_until(const std::function<bool()>& predicate) override;
  void settle() override;

 private:
  std::function<bool()> quiescent_;
  Config config_;
};

/// The whole threaded substrate as one bundle: lossy in-process fabric,
/// real clock, one ThreadedTransport per party, and an executor whose
/// quiescence probe covers every transport the bundle handed out.
/// Destroying the bundle stops all worker threads (transports first, then
/// the timer thread).
class ThreadedRuntime final : public Runtime {
 public:
  struct Options {
    std::uint64_t seed = 1;
    ThreadedFaults faults{};
    ThreadedTransport::Config transport{};
    ThreadedExecutor::Config executor{};
  };

  explicit ThreadedRuntime(const Options& options)
      : network_(options.seed, options.faults),
        transport_config_(options.transport),
        executor_([this] { return quiescent(); }, options.executor) {}

  ~ThreadedRuntime() override { shutdown(); }

  /// Explicit stop barrier. The timer thread is joined FIRST: a
  /// schedule_after callback in flight may call into a transport (a
  /// coordinator probing a run, say), so transports must not start dying
  /// until no such callback can still be running. Member destruction
  /// order alone ran that race the other way (transports_ is declared
  /// after clock_, hence destroyed before it). Idempotent; the destructor
  /// calls it. Harnesses that own threads fed by these transports
  /// (coordinator shard lanes) call this, then stop their threads, then
  /// let destructors run.
  void shutdown() {
    clock_.shutdown();
    for (auto& transport : transports_) transport->shutdown();
  }

  Transport& add_party(const PartyId& id) override {
    transports_.push_back(std::make_unique<ThreadedTransport>(
        network_, id, transport_config_));
    return *transports_.back();
  }

  Clock& clock() override { return clock_; }
  Executor& executor() override { return executor_; }

  ThreadedNetwork& network() { return network_; }

  /// True when every transport has drained its inbox and holds nothing
  /// un-acked, and every registered probe agrees. Sound because any
  /// in-flight frame implies a non-empty mailbox or a sender with
  /// un-acked state.
  bool quiescent() const {
    for (const auto& transport : transports_) {
      if (!transport->quiescent()) return false;
    }
    for (const auto& probe : quiescence_probes_) {
      if (!probe()) return false;
    }
    return true;
  }

  /// Extra quiescence condition consulted by settle(), e.g. "this
  /// coordinator's shard lanes are idle" — a frame acked by the transport
  /// may still be queued on a per-object dispatch lane. Register and poll
  /// from the harness thread only (settle() runs there too).
  void add_quiescence_probe(std::function<bool()> probe) {
    quiescence_probes_.push_back(std::move(probe));
  }

 private:
  ThreadedNetwork network_;
  SystemClock clock_;
  ThreadedTransport::Config transport_config_;
  // Stopped explicitly by the destructor above, after the timer thread;
  // declared after network_ so receiver/retransmit threads die while the
  // fabric they use is still alive.
  std::vector<std::unique_ptr<ThreadedTransport>> transports_;
  std::vector<std::function<bool()>> quiescence_probes_;
  ThreadedExecutor executor_;
};

}  // namespace b2b::net
