#include "net/threaded_runtime.hpp"

#include <chrono>

#include "common/logging.hpp"
#include "wire/codec.hpp"

namespace b2b::net {

namespace {

constexpr std::uint8_t kData = 0;
constexpr std::uint8_t kAck = 1;

Bytes encode_frame(std::uint8_t type, std::uint64_t seq, BytesView payload) {
  wire::Encoder enc;
  enc.u8(type).u64(seq);
  if (type == kData) enc.blob(payload);
  return std::move(enc).take();
}

void sleep_micros(std::uint64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace

// ---------------------------------------------------------------------------
// ThreadedNetwork
// ---------------------------------------------------------------------------

ThreadedNetwork::ThreadedNetwork(std::uint64_t seed, ThreadedFaults faults)
    : rng_(seed), faults_(faults) {}

void ThreadedNetwork::set_faults(const ThreadedFaults& faults) {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_ = faults;
}

void ThreadedNetwork::set_alive(const PartyId& node, bool alive) {
  std::lock_guard<std::mutex> lock(mutex_);
  alive_[node] = alive;
}

bool ThreadedNetwork::alive(const PartyId& node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = alive_.find(node);
  return it == alive_.end() || it->second;
}

ThreadedNetworkStats ThreadedNetwork::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::shared_ptr<ThreadedNetwork::Mailbox> ThreadedNetwork::attach(
    const PartyId& node) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& box = boxes_[node];
  if (!box) box = std::make_shared<Mailbox>();
  alive_[node] = true;
  return box;
}

void ThreadedNetwork::detach(const PartyId& node) {
  std::lock_guard<std::mutex> lock(mutex_);
  boxes_.erase(node);
}

void ThreadedNetwork::deliver(const PartyId& from, const PartyId& to,
                              const Bytes& payload) {
  std::shared_ptr<Mailbox> box;
  int copies = 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.datagrams_sent;
    auto from_alive = alive_.find(from);
    auto to_alive = alive_.find(to);
    bool both_alive = (from_alive == alive_.end() || from_alive->second) &&
                      (to_alive == alive_.end() || to_alive->second);
    auto it = boxes_.find(to);
    if (!both_alive || it == boxes_.end()) {
      ++stats_.datagrams_dropped;
      return;
    }
    if (faults_.drop_probability > 0.0 &&
        rng_.next_double() < faults_.drop_probability) {
      ++stats_.datagrams_dropped;
      return;
    }
    if (faults_.duplicate_probability > 0.0 &&
        rng_.next_double() < faults_.duplicate_probability) {
      ++stats_.datagrams_duplicated;
      copies = 2;
    }
    stats_.datagrams_delivered += copies;
    box = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(box->mutex);
    if (box->closed) return;
    for (int i = 0; i < copies; ++i) box->queue.emplace_back(from, payload);
  }
  box->cv.notify_one();
}

// ---------------------------------------------------------------------------
// ThreadedTransport
// ---------------------------------------------------------------------------

ThreadedTransport::ThreadedTransport(ThreadedNetwork& network, PartyId self,
                                     Config config)
    : network_(network),
      self_(std::move(self)),
      config_(config),
      mailbox_(network.attach(self_)) {
  receiver_ = std::thread([this] { receive_loop(); });
  retransmitter_ = std::thread([this] { retransmit_loop(); });
}

ThreadedTransport::~ThreadedTransport() {
  shutdown();
  network_.detach(self_);
}

void ThreadedTransport::shutdown() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopping_) {
      // Already shut down (idempotent) — just make sure threads joined.
    }
    stopping_ = true;
  }
  stop_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(mailbox_->mutex);
    mailbox_->closed = true;
  }
  mailbox_->cv.notify_all();
  if (receiver_.joinable()) receiver_.join();
  if (retransmitter_.joinable()) retransmitter_.join();
}

void ThreadedTransport::send(const PartyId& to, Bytes payload) {
  std::uint64_t seq;
  Bytes frame;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seq = next_seq_[to]++;
    frame = encode_frame(kData, seq, payload);
    outgoing_[{to, seq}] = Outgoing{std::move(payload), 1};
    ++stats_.app_sent;
    stats_.bytes_sent += frame.size();
  }
  network_.deliver(self_, to, frame);
}

void ThreadedTransport::set_handler(Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handler_ = std::move(handler);
}

void ThreadedTransport::set_handler_sync(Handler handler) {
  set_handler(std::move(handler));
  // process_frame snapshots the handler *before* invoking it, so a frame
  // popped before the swap may still be running through the old handler.
  // Wait for the receiver to finish that dispatch; afterwards the old
  // handler's target can be destroyed safely.
  std::unique_lock<std::mutex> lock(mailbox_->mutex);
  mailbox_->cv.wait(lock, [this] { return !mailbox_->dispatching; });
}

void ThreadedTransport::set_delivery_failure_handler(
    DeliveryFailureHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  failure_handler_ = std::move(handler);
}

std::size_t ThreadedTransport::unacked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outgoing_.size();
}

Transport::Stats ThreadedTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool ThreadedTransport::quiescent() const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!outgoing_.empty()) return false;
  }
  std::lock_guard<std::mutex> lock(mailbox_->mutex);
  return mailbox_->queue.empty() && !mailbox_->dispatching;
}

void ThreadedTransport::receive_loop() {
  for (;;) {
    PartyId from;
    Bytes frame;
    {
      std::unique_lock<std::mutex> lock(mailbox_->mutex);
      mailbox_->cv.wait(
          lock, [this] { return mailbox_->closed || !mailbox_->queue.empty(); });
      if (mailbox_->closed) return;
      from = std::move(mailbox_->queue.front().first);
      frame = std::move(mailbox_->queue.front().second);
      mailbox_->queue.pop_front();
      // Quiescence must not report an empty inbox while the popped frame
      // is still being processed (it may trigger further sends).
      mailbox_->dispatching = true;
    }
    process_frame(from, frame);
    {
      std::lock_guard<std::mutex> lock(mailbox_->mutex);
      mailbox_->dispatching = false;
    }
    // Wake set_handler_sync callers waiting for the dispatch to drain.
    mailbox_->cv.notify_all();
  }
}

void ThreadedTransport::process_frame(const PartyId& from, const Bytes& frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.bytes_received += frame.size();
  }
  std::uint8_t type;
  std::uint64_t seq;
  Bytes payload;
  try {
    wire::Decoder dec{frame};
    type = dec.u8();
    seq = dec.u64();
    if (type == kData) payload = dec.blob();
    dec.expect_done();
  } catch (const CodecError&) {
    B2B_DEBUG("threaded: dropping malformed frame from ", from);
    return;
  }

  if (type == kAck) {
    std::lock_guard<std::mutex> lock(mutex_);
    outgoing_.erase({from, seq});
    return;
  }

  // DATA: always acknowledge, deliver only the first copy.
  Handler handler;
  bool deliver = false;
  Bytes ack = encode_frame(kAck, seq, {});
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.acks_sent;
    stats_.bytes_sent += ack.size();
    if (delivered_[from].mark(seq)) {
      deliver = true;
      ++stats_.app_delivered;
      handler = handler_;
    } else {
      ++stats_.duplicates_suppressed;
    }
  }
  network_.deliver(self_, from, ack);
  // Invoke the handler outside the transport lock: it re-enters the
  // transport (replies) and takes the coordinator lock, so holding our
  // mutex here would invert the coordinator->transport lock order.
  if (deliver && handler) handler(from, payload);
}

void ThreadedTransport::retransmit_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      stop_cv_.wait_for(
          lock, std::chrono::microseconds(config_.retransmit_interval_micros),
          [this] { return stopping_; });
      if (stopping_) return;
    }
    std::vector<std::pair<PartyId, Bytes>> frames;
    std::vector<PartyId> failed;
    DeliveryFailureHandler failure_handler;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = outgoing_.begin(); it != outgoing_.end();) {
        auto& [key, out] = *it;
        if (out.attempts >= config_.max_retransmits) {
          B2B_WARN("threaded: giving up on ", self_, " -> ", key.first,
                   " seq ", key.second);
          failed.push_back(key.first);
          it = outgoing_.erase(it);
          continue;
        }
        ++out.attempts;
        ++stats_.retransmissions;
        frames.emplace_back(key.first,
                            encode_frame(kData, key.second, out.payload));
        stats_.bytes_sent += frames.back().second.size();
        ++it;
      }
      if (!failed.empty()) failure_handler = failure_handler_;
    }
    for (auto& [to, frame] : frames) network_.deliver(self_, to, frame);
    // Outside mutex_: the callback re-enters the coordinator, which may
    // call back into the transport (lock-order inversion otherwise).
    if (failure_handler) {
      for (const auto& to : failed) failure_handler(to);
    }
  }
}

// ---------------------------------------------------------------------------
// SystemClock
// ---------------------------------------------------------------------------

SystemClock::SystemClock() : epoch_(std::chrono::steady_clock::now()) {
  thread_ = std::thread([this] { timer_loop(); });
}

SystemClock::~SystemClock() { shutdown(); }

void SystemClock::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::uint64_t SystemClock::now_micros() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void SystemClock::schedule_after(std::uint64_t delay_micros,
                                 std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    timers_.push(Timer{now_micros() + delay_micros, next_seq_++,
                       std::move(fn)});
  }
  cv_.notify_all();
}

void SystemClock::timer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopping_) return;
    if (timers_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !timers_.empty(); });
      continue;
    }
    std::uint64_t due = timers_.top().due_micros;
    std::uint64_t now = now_micros();
    if (now < due) {
      cv_.wait_for(lock, std::chrono::microseconds(due - now));
      continue;
    }
    auto fn = timers_.top().fn;
    timers_.pop();
    lock.unlock();
    fn();  // may schedule more timers; must not hold our lock
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// ThreadedExecutor
// ---------------------------------------------------------------------------

bool ThreadedExecutor::run_until(const std::function<bool()>& predicate) {
  std::uint64_t waited = 0;
  while (waited < config_.timeout_micros) {
    if (predicate()) return true;
    sleep_micros(config_.poll_interval_micros);
    waited += config_.poll_interval_micros;
  }
  return predicate();
}

void ThreadedExecutor::settle() {
  std::uint64_t waited = 0;
  int stable = 0;
  while (waited < config_.timeout_micros) {
    if (quiescent_ && quiescent_()) {
      if (++stable >= config_.stable_samples) return;
    } else {
      stable = 0;
    }
    sleep_micros(config_.poll_interval_micros);
    waited += config_.poll_interval_micros;
  }
  B2B_WARN("threaded executor: settle timed out before quiescence");
}

}  // namespace b2b::net
