#include "net/network.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace b2b::net {

SimNetwork::SimNetwork(EventScheduler& scheduler, std::uint64_t seed)
    : scheduler_(scheduler), rng_(seed) {}

void SimNetwork::attach(const PartyId& node, Handler handler) {
  handlers_[node] = std::move(handler);
  alive_.emplace(node, true);
}

void SimNetwork::set_alive(const PartyId& node, bool alive) {
  alive_[node] = alive;
}

bool SimNetwork::alive(const PartyId& node) const {
  auto it = alive_.find(node);
  return it != alive_.end() && it->second;
}

void SimNetwork::set_link_faults(const PartyId& from, const PartyId& to,
                                 const LinkFaults& faults) {
  link_faults_[{from, to}] = faults;
}

void SimNetwork::partition(const std::set<PartyId>& side_a,
                           const std::set<PartyId>& side_b, SimTime heal_at) {
  partitions_.push_back(PartitionRule{side_a, side_b, heal_at});
}

const LinkFaults& SimNetwork::faults_for(const PartyId& from,
                                         const PartyId& to) const {
  auto it = link_faults_.find({from, to});
  return it != link_faults_.end() ? it->second : default_faults_;
}

bool SimNetwork::partitioned(const PartyId& from, const PartyId& to) const {
  SimTime now = scheduler_.now();
  for (const auto& rule : partitions_) {
    if (now >= rule.heal_at) continue;
    bool from_a = rule.side_a.contains(from);
    bool from_b = rule.side_b.contains(from);
    bool to_a = rule.side_a.contains(to);
    bool to_b = rule.side_b.contains(to);
    if ((from_a && to_b) || (from_b && to_a)) return true;
  }
  return false;
}

void SimNetwork::schedule_delivery(const PartyId& from, const PartyId& to,
                                   Bytes payload, SimTime delay) {
  scheduler_.after(delay, [this, from, to, payload = std::move(payload)]() {
    if (!alive(to)) {
      ++stats_.datagrams_dropped;
      return;
    }
    auto it = handlers_.find(to);
    if (it == handlers_.end() || !it->second) {
      ++stats_.datagrams_dropped;
      return;
    }
    ++stats_.datagrams_delivered;
    stats_.bytes_delivered += payload.size();
    it->second(from, payload);
  });
}

void SimNetwork::send(const PartyId& from, const PartyId& to, Bytes payload) {
  ++stats_.datagrams_sent;
  stats_.bytes_sent += payload.size();

  if (!alive(from) || !alive(to) || partitioned(from, to)) {
    ++stats_.datagrams_dropped;
    return;
  }

  const LinkFaults& faults = faults_for(from, to);
  SimTime span = faults.max_delay_micros > faults.min_delay_micros
                     ? faults.max_delay_micros - faults.min_delay_micros
                     : 0;
  SimTime delay =
      faults.min_delay_micros + (span > 0 ? rng_.next_below(span + 1) : 0);

  if (intruder_ != nullptr) {
    SimTime extra_delay = 0;
    switch (intruder_->intercept(from, to, payload, &extra_delay)) {
      case Intruder::Verdict::kDrop:
        ++stats_.datagrams_dropped;
        B2B_TRACE("intruder dropped ", from, " -> ", to);
        return;
      case Intruder::Verdict::kDelay:
        delay += extra_delay;
        break;
      case Intruder::Verdict::kTamper:
        B2B_TRACE("intruder tampered ", from, " -> ", to);
        break;
      case Intruder::Verdict::kPass:
        break;
    }
  }

  if (faults.drop_probability > 0 &&
      rng_.next_double() < faults.drop_probability) {
    ++stats_.datagrams_dropped;
    return;
  }

  if (faults.duplicate_probability > 0 &&
      rng_.next_double() < faults.duplicate_probability) {
    ++stats_.datagrams_duplicated;
    SimTime dup_delay = delay + 1 + rng_.next_below(faults.max_delay_micros + 1);
    schedule_delivery(from, to, payload, dup_delay);
  }

  schedule_delivery(from, to, std::move(payload), delay);
}

void SimNetwork::inject(const PartyId& from, const PartyId& to, Bytes payload,
                        SimTime delay) {
  ++stats_.datagrams_sent;
  stats_.bytes_sent += payload.size();
  schedule_delivery(from, to, std::move(payload), delay);
}

}  // namespace b2b::net
