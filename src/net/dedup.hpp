// Bounded-memory once-only delivery bookkeeping.
//
// A reliable channel must remember which sender sequence numbers it has
// already delivered so retransmissions and network duplicates are
// suppressed. Remembering every number in a std::set grows without bound
// over a long-lived connection; but because each sender allocates
// sequence numbers contiguously from 0, everything below the lowest gap
// can be collapsed into a single watermark. DedupWindow keeps that
// contiguous prefix plus the (small, transient) set of out-of-order
// deliveries above it — memory proportional to reordering depth, not to
// connection lifetime.
#pragma once

#include <cstdint>
#include <set>

namespace b2b::net {

class DedupWindow {
 public:
  /// Record receipt of `seq`. Returns true exactly once per sequence
  /// number — the caller delivers on true, suppresses on false.
  bool mark(std::uint64_t seq) {
    if (seq < prefix_) return false;  // inside the delivered prefix
    if (!window_.insert(seq).second) return false;
    while (!window_.empty() && *window_.begin() == prefix_) {
      window_.erase(window_.begin());
      ++prefix_;
    }
    return true;
  }

  /// True if `seq` has been marked before.
  bool seen(std::uint64_t seq) const {
    return seq < prefix_ || window_.contains(seq);
  }

  /// All sequence numbers below this have been delivered.
  std::uint64_t prefix() const { return prefix_; }

  /// Out-of-order deliveries currently held above the prefix. For a
  /// contiguous sender this returns to 0 whenever the channel is caught
  /// up — the boundedness the std::set version lacked.
  std::size_t window_size() const { return window_.size(); }

 private:
  std::uint64_t prefix_ = 0;
  std::set<std::uint64_t> window_;
};

}  // namespace b2b::net
