// An active wire-level intruder: in-process man-in-the-middle proxy for
// the socket runtimes (DESIGN.md §11).
//
// The paper argues its safety properties — no invalid state installed,
// non-repudiable evidence, honest parties unblamed — against a protocol-
// level adversary; the simulator's Dolev–Yao intruder exercises them on
// message *content*. This proxy brings the same adversary down to the
// byte stream the TCP and reactor runtimes actually speak: it terminates
// both legs of every connection to an interposed party, re-parses the
// `[len][crc32]` frame protocol (frame.hpp), and applies a scripted or
// seeded-random schedule of attacks per frame — delay, drop, duplicate,
// reorder, replay recorded frames (same and cross incarnation, i.e.
// spliced across connections), truncate mid-frame, and byte-mutate the
// *unsigned* regions (length prefixes, CRCs, hello fields, data/ack
// incarnations, ack sequence numbers) with the CRC recomputed so the
// corruption survives the checksum layer.
//
// Wire v3 widened the arsenal. Rewriting a live frame's seq or payload,
// forging acks, stripping the auth fields from a hello, and splicing a
// recorded frame across connections used to be out of scope — on a
// CRC-only wire they are indistinguishable from the honest sender. With
// per-connection session MACs (wire_auth.hpp) every one of them must now
// die at the receiving transport as `frames_rejected_auth`, so the proxy
// plays them too: kRewrite, kForgeAck, kDowngrade, kSplice. The random
// schedule only draws them when `auth_arsenal` is set (i.e. when the
// interposed federation actually authenticates its wire — against an
// unauthenticated wire they would be silent corruption no honest
// transport can detect, which is precisely the boundary v3 closed).
// Still out of scope: forging RSA signatures and stealing session keys.
//
// The mutation schedule is coverage-guided: actions are biased toward
// frames whose protocol-state transition (previous frame type → current
// frame type per stream direction, data frames refined by the embedded
// b2b message type) has rarely been seen, so a campaign spends its
// adversarial budget on the corners of the protocol state machine
// rather than re-corrupting the steady state.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/chacha20.hpp"
#include "net/frame.hpp"
#include "net/peer_directory.hpp"
#include "net/socket.hpp"

namespace b2b::net {

/// One adversarial decision for one relayed frame.
enum class IntruderAction : std::uint8_t {
  kForward = 0,   // relay untouched
  kDrop,          // never delivered (retransmission must recover)
  kDelay,         // held back a bounded random time, then relayed
  kDuplicate,     // relayed twice (dedup window must suppress)
  kReorder,       // held until the next frame on this leg passes first
  kReplay,        // relayed, then a recorded frame from this flow injected
  kTruncate,      // a prefix of the frame written, then the pair reset
  kMutate,        // unsigned region rewritten, CRC recomputed, relayed
  // Wire v3 arsenal: MAC-detectable forgeries (see header comment).
  kRewrite,       // live data seq/payload rewritten, CRC fresh, MAC stale
  kForgeAck,      // fabricated ack injected without the session key
  kDowngrade,     // hello auth fields stripped, flag forced to kAuthNone
  kSplice,        // recorded frame from a *different* flow injected
};

/// What the proxy knows about a frame when choosing an action.
struct FrameInfo {
  std::string client;        // the non-interposed end ("?" until its hello)
  std::string victim;        // the interposed party
  bool to_victim = true;     // leg: true = client→victim
  std::uint8_t frame_type = 0xFF;  // frame::kData/kAck/kHello, 0xFF unknown
  std::uint8_t msg_type = 0;       // Envelope type byte for data frames
  std::uint64_t seq = 0;           // data/ack frames
  std::uint64_t incarnation = 0;   // data/ack frames and hellos
};

struct IntruderStats {
  std::uint64_t parties_interposed = 0;
  std::uint64_t connections_intercepted = 0;
  std::uint64_t frames_seen = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t replayed = 0;
  /// Replays whose recorded frame came from a different incarnation of
  /// the sender than the leg currently carries (cross-restart splices).
  std::uint64_t replayed_cross_incarnation = 0;
  std::uint64_t truncated = 0;
  std::uint64_t mutated = 0;
  /// Wire v3 arsenal (each one must land as frames_rejected_auth on an
  /// authenticated wire — zero of them may reach an application).
  std::uint64_t rewritten = 0;
  std::uint64_t acks_forged = 0;
  std::uint64_t downgraded = 0;
  std::uint64_t spliced = 0;
  /// Frames arriving at the proxy itself with a hostile length prefix
  /// (the proxy enforces frame::decode_header like the runtimes do).
  std::uint64_t hostile_lengths_rejected = 0;
};

/// Seeded, coverage-guided action source. Thread-safe.
class MutationSchedule {
 public:
  struct Config {
    /// Campaign seed (B2B_INTRUDER_SEED in the test harness).
    std::uint64_t seed = 11;
    /// Baseline per-frame probability of an adversarial action.
    double action_probability = 0.08;
    /// Probability while a transition is still novel (first few sightings).
    double novel_boost = 0.5;
    /// Upper bound for kDelay holds.
    std::uint32_t max_delay_millis = 25;
    /// Budget: after this many adversarial actions the schedule only
    /// forwards (a campaign's built-in passivation).
    std::size_t max_actions = static_cast<std::size_t>(-1);
    /// Draw the wire v3 attacks (kRewrite/kForgeAck/kDowngrade/kSplice)
    /// in the random arsenal. Enable ONLY against a session-authenticated
    /// federation: on a MAC-less wire these are silent corruption no
    /// transport can detect (scripted games may still force them).
    bool auth_arsenal = false;
  };

  explicit MutationSchedule(const Config& config)
      : config_(config), rng_(config.seed) {}

  IntruderAction next_action(const FrameInfo& info);

  /// Protocol-state transitions observed so far ("hello>data:propose",
  /// "data:decide>ack", ...) — the campaign's coverage report.
  std::vector<std::string> transitions_covered() const;
  std::size_t actions_taken() const;
  std::uint32_t max_delay_millis() const { return config_.max_delay_millis; }

  /// Draw from the schedule's rng (mutation variants, delays, replay
  /// picks share the seed so a failing schedule replays exactly).
  std::uint64_t next_below(std::uint64_t bound);

 private:
  mutable std::mutex mutex_;
  Config config_;
  crypto::ChaCha20Rng rng_;
  std::map<std::string, std::uint64_t> transitions_;  // transition → count
  std::map<std::string, std::string> prev_label_;     // stream dir → label
  std::size_t actions_ = 0;
};

/// The man-in-the-middle itself. Interpose a party *after* its transport
/// has bound (its real address is in the directory) and *before* peers
/// dial it: the proxy re-points the directory entry at its own listener,
/// and every connection to the victim from then on is terminated,
/// parsed, attacked and re-originated.
class IntruderProxy {
 public:
  /// Scripted override, consulted while active before the randomised
  /// schedule: return an action to force it, nullopt to fall through.
  using Script = std::function<std::optional<IntruderAction>(const FrameInfo&)>;

  struct Config {
    MutationSchedule::Config schedule{};
    Script script;
    /// Start passive (pure relay)? Campaigns measure clean-run overhead
    /// and post-attack convergence through a passive proxy.
    bool active = true;
    /// The proxy vets length prefixes like the runtimes (satellite of
    /// the §11 threat model: no endpoint allocates a hostile length).
    std::size_t max_frame_bytes = frame::kMaxFrameLen;
    std::uint64_t dial_timeout_micros = 2'000'000;
    /// Per-flow recording cap for the replay arsenal.
    std::size_t max_recorded_per_flow = 256;
  };

  IntruderProxy(std::shared_ptr<PeerDirectory> directory, Config config);
  ~IntruderProxy();

  IntruderProxy(const IntruderProxy&) = delete;
  IntruderProxy& operator=(const IntruderProxy&) = delete;

  /// Redirect all traffic *to* `victim` through this proxy. Throws
  /// b2b::Error if the directory has no address for it yet.
  void interpose(const PartyId& victim);

  /// Active = attacking; passive = byte-transparent relay. Liveness
  /// claims are asserted after set_active(false).
  void set_active(bool active);
  bool active() const { return active_.load(); }

  IntruderStats stats() const;
  std::vector<std::string> transitions_covered() const {
    return schedule_.transitions_covered();
  }
  std::size_t actions_taken() const { return schedule_.actions_taken(); }

  /// Stop listeners and relay threads, close every intercepted
  /// connection and restore the victims' real directory entries
  /// (idempotent; the destructor calls it).
  void shutdown();

 private:
  struct Tap {
    PartyId victim;
    PeerAddress real;
    Listener listener;
    std::thread acceptor;
  };
  /// One intercepted connection: the accepted client leg, the dialed
  /// victim leg, and one relay thread per direction.
  struct Pair {
    PartyId victim;
    Socket client_sock;
    Socket victim_sock;
    std::thread c2v;
    std::thread v2c;
    std::mutex name_mutex;
    std::string client_name = "?";
    /// Sender incarnation per leg (from the hello each leg carried),
    /// guarded by name_mutex. [0] = client→victim, [1] = victim→client.
    std::uint64_t leg_incarnation[2] = {0, 0};
    std::atomic<bool> dead{false};
  };
  using PairPtr = std::shared_ptr<Pair>;

  void accept_loop(Tap& tap);
  void relay(const PairPtr& pair, bool to_victim);
  void kill_pair(const PairPtr& pair);
  IntruderAction decide(const FrameInfo& info);
  /// Apply `action` to one parsed frame; returns false when the pair
  /// must die (truncation). `out` is the leg's destination socket,
  /// `held` the leg's reorder slot.
  bool apply(const PairPtr& pair, bool to_victim, Socket& out,
             const FrameInfo& info, const Bytes& payload,
             std::optional<Bytes>& held);
  bool write_framed(Socket& out, const Bytes& framed,
                    std::optional<Bytes>& held);
  void record(const std::string& flow, Bytes framed, std::uint64_t inc);
  /// Field-level mutation with the CRC recomputed (kMutate variant 3).
  Bytes mutated_field_payload(const Bytes& payload);

  std::shared_ptr<PeerDirectory> directory_;
  Config config_;
  MutationSchedule schedule_;
  std::atomic<bool> active_;

  mutable std::mutex mutex_;  // stats_, recorded_, pairs_, stopping_
  IntruderStats stats_;
  struct Recorded {
    Bytes framed;
    std::uint64_t incarnation = 0;
  };
  std::map<std::string, std::vector<Recorded>> recorded_;  // flow → frames
  std::size_t replay_cursor_ = 0;  // under mutex_; cycles the arsenal
  std::vector<PairPtr> pairs_;
  bool stopping_ = false;

  std::vector<std::unique_ptr<Tap>> taps_;  // appended under mutex_
};

}  // namespace b2b::net
