// Shared wire marshalling for the socket runtimes.
//
// TcpRuntime (thread-per-connection) and ReactorRuntime (epoll) speak
// the *same* byte stream: every message is a length-prefixed CRC-framed
// frame, the first frame in each direction is a handshake naming the
// sending party and its incarnation, and data/ack frames carry the §4.2
// positive-acknowledgement sequence numbers. Keeping the encoding in
// one place is what makes the two runtimes wire-compatible — a reactor
// gateway can terminate connections from thread-per-peer processes and
// vice versa. In Basic Remoting Patterns terms this header is the
// MARSHALLER; the runtimes differ only in their SERVER REQUEST HANDLER
// (how bytes reach the process), and the coordinator above both is the
// INVOKER.
//
// Wire v2 (intruder hardening, DESIGN.md §11): data and ack frames name
// the incarnation their sequence number belongs to. Sequence numbers are
// only meaningful *within* one transport incarnation, so an unbound seq
// let a man-in-the-middle re-inject a recorded pre-restart frame into a
// post-restart connection and poison the fresh dedup window (the stale
// frame's seq would be marked delivered, silently suppressing — and
// falsely acking — the restarted peer's genuine frame with that seq).
// Binding (incarnation, seq) together makes such re-injection detectable
// at the receiver: a data frame whose incarnation differs from the
// connection's handshaken incarnation is proof of splicing and kills the
// connection; an ack that does not echo our own incarnation is ignored.
//
// Wire v3 (session authentication, DESIGN.md §11): the hello carries an
// auth flag and, when set, an RSA-encrypted ephemeral key half plus an
// RSA signature over every preceding hello field — stripping or flipping
// the flag breaks the signature, so a downgrade is detectable, and each
// side's half seeds the HMAC key for the frames *it* sends (wire_auth.hpp).
// Authenticated data/ack payloads end in a 32-byte HMAC-SHA256 tag over
// the rest of the payload, verified in constant time before any parsing.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "store/crc32.hpp"
#include "wire/codec.hpp"

namespace b2b::net::frame {

/// Frame payload types (first byte of every decoded payload).
constexpr std::uint8_t kData = 0;
constexpr std::uint8_t kAck = 1;
constexpr std::uint8_t kHello = 2;

/// Handshake magic ("B2BT") and protocol version.
constexpr std::uint32_t kMagic = 0x42'32'42'54;
constexpr std::uint16_t kVersion = 3;

/// Length of the HMAC-SHA256 tag that terminates every authenticated
/// data/ack payload.
constexpr std::size_t kMacLen = 32;

/// Hello auth-flag values (the u8 after the incarnation).
constexpr std::uint8_t kAuthNone = 0;
constexpr std::uint8_t kAuthHmac = 1;

/// Stream framing: [u32 len LE][u32 crc32 LE][payload].
constexpr std::size_t kHeaderLen = 8;

/// Hard ceiling on any length prefix a decoder will honour, shared by
/// every frame-parsing endpoint (tcp, reactor, intruder proxy). Configs
/// may lower the limit per transport (max_frame_bytes) but can never
/// raise it past this: a hostile 0xFFFFFFFF prefix must be rejected
/// before it becomes a 4 GiB allocation.
constexpr std::uint32_t kMaxFrameLen = 64u << 20;

inline void put_u32_le(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

inline std::uint32_t get_u32_le(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

/// Decode and vet the 8-byte stream header. Returns false when the
/// length prefix exceeds `limit` or the shared hard cap — the caller
/// must treat the stream as hostile (reset the connection and bump its
/// rejection counter) instead of allocating the claimed length.
struct Header {
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
};
inline bool decode_header(const std::uint8_t* in, std::size_t limit,
                          Header* out) {
  out->len = get_u32_le(in);
  out->crc = get_u32_le(in + 4);
  return out->len <= kMaxFrameLen && out->len <= limit;
}

inline Bytes encode_data(std::uint64_t incarnation, std::uint64_t seq,
                         BytesView payload) {
  wire::Encoder enc;
  enc.u8(kData).u64(incarnation).u64(seq).blob(payload);
  return std::move(enc).take();
}

/// Acks echo the *data sender's* incarnation (the one the acked seq
/// lives in), so a replayed ack from a previous incarnation can never
/// retire a live message.
inline Bytes encode_ack(std::uint64_t incarnation, std::uint64_t seq) {
  wire::Encoder enc;
  enc.u8(kAck).u64(incarnation).u64(seq);
  return std::move(enc).take();
}

/// Unauthenticated hello (auth flag 0, no key material). Kept as the
/// three-argument form the pre-v3 call sites and tests use.
inline Bytes encode_hello(const PartyId& from, const PartyId& to,
                          std::uint64_t incarnation) {
  wire::Encoder enc;
  enc.u8(kHello).u32(kMagic).u16(kVersion).str(from.str()).str(to.str());
  enc.u64(incarnation).u8(kAuthNone);
  return std::move(enc).take();
}

/// The canonical bytes an authenticated hello's RSA signature covers:
/// every field that precedes the signature, auth flag and encrypted key
/// half included, so stripping either is as detectable as forging them.
inline Bytes hello_signing_bytes(const PartyId& from, const PartyId& to,
                                 std::uint64_t incarnation,
                                 BytesView enc_half) {
  wire::Encoder enc;
  enc.u32(kMagic).u16(kVersion).str(from.str()).str(to.str());
  enc.u64(incarnation).u8(kAuthHmac).blob(enc_half);
  return std::move(enc).take();
}

/// Authenticated hello: flag 1, RSA-encrypted ephemeral half, signature
/// over hello_signing_bytes().
inline Bytes encode_hello_auth(const PartyId& from, const PartyId& to,
                               std::uint64_t incarnation, BytesView enc_half,
                               BytesView signature) {
  wire::Encoder enc;
  enc.u8(kHello).u32(kMagic).u16(kVersion).str(from.str()).str(to.str());
  enc.u64(incarnation).u8(kAuthHmac).blob(enc_half).blob(signature);
  return std::move(enc).take();
}

/// Hello fields after the type byte. `decode_hello` assumes the caller
/// already consumed the leading u8 (the frame type); it validates nothing
/// beyond wire shape — magic/version/direction checks stay with the
/// runtimes so their rejection counters see them.
struct Hello {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::string from;
  std::string to;
  std::uint64_t incarnation = 0;
  std::uint8_t auth_flag = kAuthNone;
  Bytes enc_half;    // RSA ciphertext of the sender's ephemeral half
  Bytes signature;   // RSA signature over hello_signing_bytes()
};
inline Hello decode_hello(wire::Decoder& dec) {
  Hello h;
  h.magic = dec.u32();
  h.version = dec.u16();
  h.from = dec.str();
  h.to = dec.str();
  h.incarnation = dec.u64();
  h.auth_flag = dec.u8();
  if (h.auth_flag == kAuthHmac) {
    h.enc_half = dec.blob();
    h.signature = dec.blob();
  }
  dec.expect_done();
  return h;
}

/// Prepend the stream header ([len][crc32]) to an encoded payload.
inline Bytes frame_payload(const Bytes& payload) {
  Bytes framed(kHeaderLen + payload.size());
  put_u32_le(framed.data(), static_cast<std::uint32_t>(payload.size()));
  put_u32_le(framed.data() + 4, store::crc32(payload));
  std::copy(payload.begin(), payload.end(), framed.begin() + kHeaderLen);
  return framed;
}

}  // namespace b2b::net::frame
