// Hierarchical timer wheel: O(1) schedule/cancel for the reactor.
//
// The reactor replaces one retransmit thread per party and one timer
// thread per runtime with a single wheel consulted by the epoll loop.
// At C10K scale that is thousands of concurrently armed timers
// (retransmit ticks, connect/handshake deadlines, Clock::schedule
// callbacks), so the classic hashed-hierarchical design applies: four
// levels of 64 slots each, a timer lands `delta` ticks out in the level
// whose span covers delta, and timers cascade down a level whenever the
// wheel's cursor rolls over a slot boundary. A timer never fires early:
// deadlines round UP to the next tick, and advance() only fires slots
// the cursor has fully passed.
//
// Thread model: the wheel itself is NOT synchronised. The Reactor owns
// one and guards it with its own mutex (schedule/cancel arrive from any
// thread; advance runs on the loop thread). advance() hands expired
// callbacks back to the caller instead of invoking them, so the caller
// can drop its lock first — a fired callback is free to re-schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace b2b::net {

class TimerWheel {
 public:
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  struct Config {
    /// Wheel granularity. Deadlines round up to a multiple of this, so
    /// it bounds both firing slop and the epoll wait quantum.
    std::uint64_t tick_micros = 1'024;
  };

  static constexpr std::size_t kLevels = 4;
  static constexpr std::size_t kSlotBits = 6;
  static constexpr std::size_t kSlots = 1u << kSlotBits;  // 64 per level

  explicit TimerWheel(std::uint64_t now_micros)
      : TimerWheel(now_micros, Config{}) {}
  TimerWheel(std::uint64_t now_micros, Config config)
      : config_(config), cursor_(now_micros / config_.tick_micros) {}

  /// Arm a timer for `due_micros` (absolute, same timebase as advance).
  /// A deadline at or before "now" fires on the next advance.
  TimerId schedule_at(std::uint64_t due_micros, std::function<void()> fn) {
    const TimerId id = next_id_++;
    std::uint64_t due_tick =
        (due_micros + config_.tick_micros - 1) / config_.tick_micros;
    if (due_tick <= cursor_) due_tick = cursor_ + 1;
    place(Entry{id, due_tick, std::move(fn)});
    ++pending_;
    return id;
  }

  /// Disarm. Returns false if the timer already fired or never existed.
  bool cancel(TimerId id) {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    slots_[it->second.level][it->second.slot].erase(it->second.where);
    index_.erase(it);
    --pending_;
    return true;
  }

  /// Move the cursor up to `now_micros`, collecting every expired
  /// callback (in deadline order, FIFO within a tick) into `fired`.
  /// Returns the number collected.
  std::size_t advance(std::uint64_t now_micros,
                      std::vector<std::function<void()>>& fired) {
    const std::uint64_t target = now_micros / config_.tick_micros;
    std::size_t count = 0;
    while (cursor_ < target && pending_ > 0) {
      ++cursor_;
      // Slot boundaries rolled over by this tick cascade their coarser
      // entries down before the fine slot fires.
      for (std::size_t level = 1; level < kLevels; ++level) {
        const std::uint64_t span = std::uint64_t{1} << (kSlotBits * level);
        if (cursor_ % span != 0) break;
        cascade(level, (cursor_ >> (kSlotBits * level)) & (kSlots - 1));
      }
      auto& slot = slots_[0][cursor_ & (kSlots - 1)];
      while (!slot.empty()) {
        Entry entry = std::move(slot.front());
        slot.pop_front();
        index_.erase(entry.id);
        --pending_;
        ++fired_;
        ++count;
        fired.push_back(std::move(entry.fn));
      }
    }
    if (pending_ == 0) cursor_ = target < cursor_ ? cursor_ : target;
    return count;
  }

  /// Conservative earliest instant a timer could fire (never later than
  /// the true deadline): the next non-empty fine slot, else the next
  /// cascade boundary. nullopt when nothing is armed.
  std::optional<std::uint64_t> next_due_micros() const {
    if (pending_ == 0) return std::nullopt;
    for (std::uint64_t d = 1; d < kSlots; ++d) {
      if (!slots_[0][(cursor_ + d) & (kSlots - 1)].empty()) {
        return (cursor_ + d) * config_.tick_micros;
      }
    }
    // Everything armed lives in coarser levels; it can only fire after
    // cascading at the next level-1 boundary.
    const std::uint64_t boundary = ((cursor_ >> kSlotBits) + 1) << kSlotBits;
    return boundary * config_.tick_micros;
  }

  std::size_t pending() const { return pending_; }
  std::uint64_t fired() const { return fired_; }
  std::uint64_t tick_micros() const { return config_.tick_micros; }

 private:
  struct Entry {
    TimerId id;
    std::uint64_t due_tick;
    std::function<void()> fn;
  };
  struct Location {
    std::size_t level;
    std::size_t slot;
    std::list<Entry>::iterator where;
  };

  /// File an entry by its distance from the cursor: level L holds
  /// deltas in [64^L, 64^(L+1)), slotted by the due tick's level-L
  /// digit. Deltas beyond the top level clamp into the farthest top
  /// slot and re-place themselves on each cascade.
  void place(Entry entry) {
    const std::uint64_t delta =
        entry.due_tick > cursor_ ? entry.due_tick - cursor_ : 1;
    std::size_t level = 0;
    std::uint64_t span = kSlots;
    while (level + 1 < kLevels && delta >= span) {
      ++level;
      span <<= kSlotBits;
    }
    std::uint64_t due = entry.due_tick;
    if (level + 1 == kLevels && delta >= span) {
      due = cursor_ + span - 1;  // clamp; re-placed when it cascades
    }
    const std::size_t slot =
        static_cast<std::size_t>(due >> (kSlotBits * level)) & (kSlots - 1);
    auto& list = slots_[level][slot];
    const TimerId id = entry.id;
    list.push_back(std::move(entry));
    index_[id] = Location{level, slot, std::prev(list.end())};
  }

  void cascade(std::size_t level, std::size_t slot) {
    std::list<Entry> moved = std::move(slots_[level][slot]);
    slots_[level][slot].clear();
    for (auto& entry : moved) {
      index_.erase(entry.id);
      place(std::move(entry));
    }
  }

  Config config_;
  std::uint64_t cursor_;  // last fully-fired tick
  std::uint64_t next_id_ = 1;
  std::size_t pending_ = 0;
  std::uint64_t fired_ = 0;
  std::list<Entry> slots_[kLevels][kSlots];
  std::unordered_map<TimerId, Location> index_;
};

}  // namespace b2b::net
