// ChaCha20-based cryptographically strong pseudo-random generator.
//
// §4.2 of the paper assumes "a secure pseudo-random sequence generator to
// generate statistically random and unpredictable sequences of bits"; the
// random numbers it produces (r_i) become the secret authenticators that
// make the final `decide` message self-authenticating. We implement the
// ChaCha20 block function (RFC 8439) and run it in counter mode from a
// 256-bit seed. Seeding from a fixed value makes simulations reproducible.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace b2b::crypto {

/// Deterministic CSPRNG. Not thread-safe; give each party its own.
class ChaCha20Rng {
 public:
  /// Seed with a 32-byte key. Shorter seeds are zero-padded, longer seeds
  /// are hashed down with SHA-256.
  explicit ChaCha20Rng(BytesView seed);

  /// Convenience: seed from a 64-bit value (tests and simulations).
  explicit ChaCha20Rng(std::uint64_t seed);

  /// Fill `out` with random bytes.
  void fill(std::uint8_t* out, std::size_t len);

  /// `len` random bytes.
  Bytes bytes(std::size_t len);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound). Throws std::invalid_argument if bound==0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  // UniformRandomBitGenerator interface so <random> utilities work too.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }
  result_type operator()() { return next_u64(); }

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t block_pos_ = 64;  // empty
};

}  // namespace b2b::crypto
