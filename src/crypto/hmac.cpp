#include "crypto/hmac.hpp"

#include <stdexcept>

namespace b2b::crypto {

namespace {
constexpr std::size_t kBlockLen = 64;  // SHA-256 block size
}  // namespace

HmacSha256::HmacSha256(BytesView key) {
  std::array<std::uint8_t, kBlockLen> padded{};
  if (key.size() > kBlockLen) {
    Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), padded.begin());
  } else {
    std::copy(key.begin(), key.end(), padded.begin());
  }
  for (std::size_t i = 0; i < kBlockLen; ++i) {
    ipad_[i] = static_cast<std::uint8_t>(padded[i] ^ 0x36);
    opad_[i] = static_cast<std::uint8_t>(padded[i] ^ 0x5c);
  }
  inner_.update(BytesView{ipad_.data(), ipad_.size()});
}

HmacSha256& HmacSha256::update(BytesView data) {
  inner_.update(data);
  return *this;
}

Digest HmacSha256::finish() {
  Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(BytesView{opad_.data(), opad_.size()});
  outer.update(BytesView{inner_digest.data(), inner_digest.size()});
  return outer.finish();
}

void HmacSha256::reset() {
  inner_.reset();
  inner_.update(BytesView{ipad_.data(), ipad_.size()});
}

Digest HmacSha256::mac(BytesView key, BytesView data) {
  HmacSha256 h(key);
  h.update(data);
  return h.finish();
}

Digest hkdf_extract(BytesView salt, BytesView ikm) {
  if (salt.empty()) {
    std::array<std::uint8_t, 32> zero_salt{};
    return HmacSha256::mac(BytesView{zero_salt.data(), zero_salt.size()},
                           ikm);
  }
  return HmacSha256::mac(salt, ikm);
}

Bytes hkdf_expand(const Digest& prk, BytesView info, std::size_t length) {
  if (length > 255 * 32) {
    throw std::invalid_argument("hkdf_expand: length > 255*HashLen");
  }
  Bytes okm;
  okm.reserve(length);
  Digest block{};
  std::size_t block_len = 0;  // T(0) is empty
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    HmacSha256 h(BytesView{prk.data(), prk.size()});
    h.update(BytesView{block.data(), block_len});
    h.update(info);
    h.update(BytesView{&counter, 1});
    block = h.finish();
    block_len = block.size();
    std::size_t take = std::min(length - okm.size(), block_len);
    okm.insert(okm.end(), block.begin(), block.begin() + take);
    ++counter;
  }
  return okm;
}

}  // namespace b2b::crypto
