// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the secure one-way, collision-resistant hash H the paper assumes
// in §4.2. It is used everywhere evidence is built: state hashes in state
// identifier tuples, member hashes in group identifier tuples, hashes of
// random authenticators, and the hash chain of the evidence log.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace b2b::crypto {

/// A 32-byte SHA-256 digest.
using Digest = std::array<std::uint8_t, 32>;

/// Streaming SHA-256. Typical use: Sha256 h; h.update(a); h.update(b);
/// Digest d = h.finish();
class Sha256 {
 public:
  Sha256();

  /// Absorb more input. May be called any number of times before finish().
  Sha256& update(BytesView data);

  /// Finalize and return the digest. The object must not be reused after
  /// finish() without calling reset().
  Digest finish();

  /// Return to the initial state.
  void reset();

  /// One-shot convenience.
  static Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Digest <-> Bytes helpers (wire format uses plain byte strings).
Bytes digest_bytes(const Digest& digest);
Digest digest_from_bytes(BytesView data);  // throws CodecError if size != 32

}  // namespace b2b::crypto
