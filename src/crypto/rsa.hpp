// RSA signatures (from-scratch), the signature scheme of §4.2.
//
// Every protocol message part that the paper writes as sig_i(x) is an RSA
// signature over SHA-256(x) with EMSA-PKCS1-v1_5-style padding. Signatures
// are therefore verifiable by any third party holding only the signer's
// public key — which is exactly what makes the evidence non-repudiable and
// usable in the extra-protocol dispute resolution the paper describes.
//
// Key generation uses Miller-Rabin probable primes from the ChaCha20 CSPRNG
// and Chinese-Remainder-Theorem signing for speed.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/bigint.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace b2b::crypto {

/// Public half of an RSA keypair: (n, e). Serializable for distribution.
class RsaPublicKey {
 public:
  RsaPublicKey() = default;
  RsaPublicKey(BigInt n, BigInt e);

  const BigInt& n() const { return n_; }
  const BigInt& e() const { return e_; }
  /// Modulus size in bytes; all signatures have exactly this length.
  std::size_t modulus_bytes() const { return (n_.bit_length() + 7) / 8; }

  /// Verify `signature` over SHA-256(message). Returns false on any
  /// mismatch (never throws for a well-formed key).
  bool verify(BytesView message, BytesView signature) const;

  /// Verify a signature over a precomputed digest.
  bool verify_digest(const Digest& digest, BytesView signature) const;

  /// RSAES-PKCS1-v1_5 encryption (type-2 random nonzero padding) for
  /// small key-transport payloads — wire v3 ships each connection's
  /// ephemeral MAC half under the peer's public key this way.
  /// Ciphertext length == modulus_bytes(). Throws CryptoError when
  /// `plaintext` exceeds modulus_bytes() - 11.
  Bytes encrypt(BytesView plaintext, ChaCha20Rng& rng) const;

  Bytes encode() const;
  static RsaPublicKey decode(BytesView data);  // throws CodecError

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;

 private:
  BigInt n_;
  BigInt e_;
};

/// Full keypair. The private exponent never leaves this object.
class RsaPrivateKey {
 public:
  RsaPrivateKey() = default;
  RsaPrivateKey(BigInt n, BigInt e, BigInt d, BigInt p, BigInt q);

  const RsaPublicKey& public_key() const { return public_key_; }

  /// Sign SHA-256(message). Result length == modulus_bytes().
  Bytes sign(BytesView message) const;

  /// Sign a precomputed digest.
  Bytes sign_digest(const Digest& digest) const;

  /// Undo RSAES-PKCS1-v1_5 encryption. Returns nullopt on any length or
  /// padding mismatch — the transport treats that as a hostile hello and
  /// kills the connection rather than distinguishing failure modes.
  std::optional<Bytes> decrypt(BytesView ciphertext) const;

 private:
  RsaPublicKey public_key_;
  BigInt d_;
  // CRT components for ~4x faster signing.
  BigInt p_, q_, d_p_, d_q_, q_inv_;
};

/// Bounded, thread-safe cache of signatures that have already verified.
///
/// The RSA floor work (DESIGN.md §13) re-sees the same signed bytes many
/// times: retransmitted responses, replayed decides, resends after
/// recovery. A verification that already succeeded is a pure function of
/// (public key, digest, signature), so its result can be remembered and a
/// retransmission never re-enters modular exponentiation.
///
/// Poisoning resistance: the cache key is SHA-256 over the FULL tuple —
/// the encoded public key (n and e, length-prefixed), the 32-byte message
/// digest and the complete signature bytes. A frame that collides with a
/// cached entry on any prefix (same digest but different signer, same
/// signer+digest but different signature bytes, a truncated signature)
/// hashes to a different key and misses. Only exact replays of a
/// previously verified triple hit. Negative results are never cached, so
/// a forgery can at worst cost the full verification it would cost anyway.
class SignatureCache {
 public:
  explicit SignatureCache(std::size_t capacity = 1024);

  /// True iff this exact (key, digest, signature) triple verified before
  /// and is still resident. Counts a hit or miss.
  bool contains(const RsaPublicKey& key, const Digest& digest,
                BytesView signature) const;

  /// Remember a triple as verified (caller must have verified it!).
  /// FIFO-evicts when over capacity.
  void insert(const RsaPublicKey& key, const Digest& digest,
              BytesView signature);

  /// Verify through the cache: hit → true without touching RSA; miss →
  /// full verification, inserting on success.
  bool verify(const RsaPublicKey& key, BytesView message, BytesView signature);
  bool verify_digest(const RsaPublicKey& key, const Digest& digest,
                     BytesView signature);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  static std::string cache_key(const RsaPublicKey& key, const Digest& digest,
                               BytesView signature);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_set<std::string> entries_;
  std::deque<std::string> order_;  // FIFO eviction order
  mutable Stats stats_;
};

/// One signature for batch_verify: `key` must outlive the call.
struct BatchVerifyItem {
  const RsaPublicKey* key = nullptr;
  Digest digest{};
  Bytes signature;
};

struct BatchVerifyResult {
  /// True iff every item verified.
  bool all_ok = false;
  /// Per-item verdicts, parallel to the input.
  std::vector<bool> ok;
  /// Indices of the items that failed (the batch localises bad members).
  std::vector<std::size_t> bad;
  /// Items answered from the cache without any modular arithmetic.
  std::size_t cache_hits = 0;
  /// Same-key groups accepted via one screening equation instead of
  /// per-item full verifications.
  std::size_t screened_groups = 0;
};

/// Verify many signatures at once, cheaper than one-by-one.
///
/// Items are first answered from `cache` (when given). The remainder are
/// grouped by public key; each same-key group of two or more is screened
/// with one Bellare–Garay–Rabin small-exponents test — random 32-bit
/// multipliers l_i drawn from `rng`, accepting iff
/// (prod s_i^{l_i})^e == prod m_i^{l_i} (mod n) — which costs one e-ary
/// exponentiation for the whole group. A group that fails screening (or
/// contains a malformed signature) is re-checked one by one so the result
/// names exactly the bad indices; a cheating signature survives screening
/// with probability ~2^-32 per batch and never survives localisation.
/// Verified items are inserted into `cache`. Distinct keys can never be
/// aggregated (different moduli), so cross-signer batches degrade
/// gracefully to per-key groups.
BatchVerifyResult batch_verify(const std::vector<BatchVerifyItem>& items,
                               ChaCha20Rng& rng,
                               SignatureCache* cache = nullptr);

/// Generate a keypair with an n of `bits` bits (e = 65537).
/// `bits` must be >= 512; tests use 512 for speed, benches go larger.
RsaPrivateKey generate_rsa_keypair(std::size_t bits, ChaCha20Rng& rng);

/// Miller-Rabin probable-prime test with `rounds` random bases.
bool is_probable_prime(const BigInt& candidate, ChaCha20Rng& rng,
                       int rounds = 20);

/// Random probable prime of exactly `bits` bits (top two bits set so that
/// the product of two such primes has exactly 2*bits bits).
BigInt generate_prime(std::size_t bits, ChaCha20Rng& rng);

}  // namespace b2b::crypto
