// RSA signatures (from-scratch), the signature scheme of §4.2.
//
// Every protocol message part that the paper writes as sig_i(x) is an RSA
// signature over SHA-256(x) with EMSA-PKCS1-v1_5-style padding. Signatures
// are therefore verifiable by any third party holding only the signer's
// public key — which is exactly what makes the evidence non-repudiable and
// usable in the extra-protocol dispute resolution the paper describes.
//
// Key generation uses Miller-Rabin probable primes from the ChaCha20 CSPRNG
// and Chinese-Remainder-Theorem signing for speed.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/bigint.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace b2b::crypto {

/// Public half of an RSA keypair: (n, e). Serializable for distribution.
class RsaPublicKey {
 public:
  RsaPublicKey() = default;
  RsaPublicKey(BigInt n, BigInt e);

  const BigInt& n() const { return n_; }
  const BigInt& e() const { return e_; }
  /// Modulus size in bytes; all signatures have exactly this length.
  std::size_t modulus_bytes() const { return (n_.bit_length() + 7) / 8; }

  /// Verify `signature` over SHA-256(message). Returns false on any
  /// mismatch (never throws for a well-formed key).
  bool verify(BytesView message, BytesView signature) const;

  /// Verify a signature over a precomputed digest.
  bool verify_digest(const Digest& digest, BytesView signature) const;

  /// RSAES-PKCS1-v1_5 encryption (type-2 random nonzero padding) for
  /// small key-transport payloads — wire v3 ships each connection's
  /// ephemeral MAC half under the peer's public key this way.
  /// Ciphertext length == modulus_bytes(). Throws CryptoError when
  /// `plaintext` exceeds modulus_bytes() - 11.
  Bytes encrypt(BytesView plaintext, ChaCha20Rng& rng) const;

  Bytes encode() const;
  static RsaPublicKey decode(BytesView data);  // throws CodecError

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;

 private:
  BigInt n_;
  BigInt e_;
};

/// Full keypair. The private exponent never leaves this object.
class RsaPrivateKey {
 public:
  RsaPrivateKey() = default;
  RsaPrivateKey(BigInt n, BigInt e, BigInt d, BigInt p, BigInt q);

  const RsaPublicKey& public_key() const { return public_key_; }

  /// Sign SHA-256(message). Result length == modulus_bytes().
  Bytes sign(BytesView message) const;

  /// Sign a precomputed digest.
  Bytes sign_digest(const Digest& digest) const;

  /// Undo RSAES-PKCS1-v1_5 encryption. Returns nullopt on any length or
  /// padding mismatch — the transport treats that as a hostile hello and
  /// kills the connection rather than distinguishing failure modes.
  std::optional<Bytes> decrypt(BytesView ciphertext) const;

 private:
  RsaPublicKey public_key_;
  BigInt d_;
  // CRT components for ~4x faster signing.
  BigInt p_, q_, d_p_, d_q_, q_inv_;
};

/// Generate a keypair with an n of `bits` bits (e = 65537).
/// `bits` must be >= 512; tests use 512 for speed, benches go larger.
RsaPrivateKey generate_rsa_keypair(std::size_t bits, ChaCha20Rng& rng);

/// Miller-Rabin probable-prime test with `rounds` random bases.
bool is_probable_prime(const BigInt& candidate, ChaCha20Rng& rng,
                       int rounds = 20);

/// Random probable prime of exactly `bits` bits (top two bits set so that
/// the product of two such primes has exactly 2*bits bits).
BigInt generate_prime(std::size_t bits, ChaCha20Rng& rng);

}  // namespace b2b::crypto
