#include "crypto/timestamp.hpp"

#include <utility>

#include "common/error.hpp"

namespace b2b::crypto {

namespace {

Bytes signing_input(const Digest& digest, std::uint64_t time_micros) {
  Bytes input(digest.begin(), digest.end());
  for (int i = 7; i >= 0; --i) {
    input.push_back(static_cast<std::uint8_t>((time_micros >> (8 * i)) & 0xff));
  }
  return input;
}

}  // namespace

Bytes Timestamp::encode() const {
  Bytes out = signing_input(message_hash, time_micros);
  out.insert(out.end(), signature.begin(), signature.end());
  return out;
}

Timestamp Timestamp::decode(BytesView data) {
  if (data.size() < 40) throw CodecError("Timestamp: truncated");
  Timestamp ts;
  ts.message_hash = digest_from_bytes(data.subspan(0, 32));
  ts.time_micros = 0;
  for (int i = 0; i < 8; ++i) {
    ts.time_micros = (ts.time_micros << 8) | data[32 + i];
  }
  ts.signature.assign(data.begin() + 40, data.end());
  return ts;
}

TimestampService::TimestampService(RsaPrivateKey keypair, ClockFn clock)
    : keypair_(std::move(keypair)), clock_(std::move(clock)) {}

Timestamp TimestampService::stamp(BytesView message) const {
  return stamp_digest(Sha256::hash(message));
}

Timestamp TimestampService::stamp_digest(const Digest& digest) const {
  Timestamp ts;
  ts.message_hash = digest;
  ts.time_micros = clock_();
  ts.signature = keypair_.sign(signing_input(digest, ts.time_micros));
  return ts;
}

bool TimestampService::verify(const Timestamp& ts,
                              const RsaPublicKey& tss_key) {
  return tss_key.verify(signing_input(ts.message_hash, ts.time_micros),
                        ts.signature);
}

}  // namespace b2b::crypto
