// HMAC-SHA256 (RFC 2104 / FIPS 198-1) and an HKDF-style KDF (RFC 5869),
// both built on the from-scratch Sha256.
//
// These are the symmetric primitives of wire v3 (DESIGN.md §11): at the
// hello exchange each connection derives fresh per-direction keys from
// RSA-transported ephemeral halves, expands them with HKDF, and MACs
// every data/ack frame so a live-incarnation forgery — rewriting a seq
// or payload, forging an ack — dies at the transport as
// `frames_rejected_auth` instead of masquerading as the honest sender.
// MAC comparison must go through `b2b::constant_time_equal` (bytes.hpp)
// so a byte-by-byte early exit never leaks how much of a guess matched.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace b2b::crypto {

/// Streaming HMAC-SHA256. Keys longer than the 64-byte SHA-256 block are
/// pre-hashed per RFC 2104. Typical use mirrors Sha256:
///   HmacSha256 mac(key); mac.update(a); mac.update(b); Digest t = mac.finish();
class HmacSha256 {
 public:
  explicit HmacSha256(BytesView key);

  HmacSha256& update(BytesView data);

  /// Finalize and return the 32-byte tag. Call reset() before reuse.
  Digest finish();

  /// Return to the post-key-schedule initial state (same key).
  void reset();

  /// One-shot convenience.
  static Digest mac(BytesView key, BytesView data);

 private:
  std::array<std::uint8_t, 64> ipad_;
  std::array<std::uint8_t, 64> opad_;
  Sha256 inner_;
};

/// HKDF-Extract: PRK = HMAC(salt, ikm). An empty salt means a zero-filled
/// hash-length salt, per RFC 5869.
Digest hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: OKM = first `length` bytes of T(1) || T(2) || ... where
/// T(i) = HMAC(prk, T(i-1) || info || i). `length` <= 255*32.
Bytes hkdf_expand(const Digest& prk, BytesView info, std::size_t length);

}  // namespace b2b::crypto
