#include "crypto/chacha20.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace b2b::crypto {

namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b;
  d ^= a;
  d = std::rotl(d, 16);
  c += d;
  b ^= c;
  b = std::rotl(b, 12);
  a += b;
  d ^= a;
  d = std::rotl(d, 8);
  c += d;
  b ^= c;
  b = std::rotl(b, 7);
}

}  // namespace

ChaCha20Rng::ChaCha20Rng(BytesView seed) {
  std::array<std::uint8_t, 32> key{};
  if (seed.size() <= 32) {
    std::copy(seed.begin(), seed.end(), key.begin());
  } else {
    Digest d = Sha256::hash(seed);
    std::copy(d.begin(), d.end(), key.begin());
  }
  // RFC 8439 constants "expa nd 3 2-by te k".
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = static_cast<std::uint32_t>(key[i * 4]) |
                    (static_cast<std::uint32_t>(key[i * 4 + 1]) << 8) |
                    (static_cast<std::uint32_t>(key[i * 4 + 2]) << 16) |
                    (static_cast<std::uint32_t>(key[i * 4 + 3]) << 24);
  }
  state_[12] = 0;  // 64-bit block counter in words 12..13
  state_[13] = 0;
  state_[14] = 0;  // nonce fixed to zero: each Rng instance is one stream
  state_[15] = 0;
}

ChaCha20Rng::ChaCha20Rng(std::uint64_t seed)
    : ChaCha20Rng([seed] {
        Bytes s(8);
        for (int i = 0; i < 8; ++i) {
          s[i] = static_cast<std::uint8_t>((seed >> (8 * i)) & 0xff);
        }
        return s;
      }()) {}

void ChaCha20Rng::refill() {
  std::array<std::uint32_t, 16> working = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    std::uint32_t word = working[i] + state_[i];
    block_[i * 4 + 0] = static_cast<std::uint8_t>(word);
    block_[i * 4 + 1] = static_cast<std::uint8_t>(word >> 8);
    block_[i * 4 + 2] = static_cast<std::uint8_t>(word >> 16);
    block_[i * 4 + 3] = static_cast<std::uint8_t>(word >> 24);
  }
  block_pos_ = 0;
  // Increment the 64-bit counter.
  if (++state_[12] == 0) ++state_[13];
}

void ChaCha20Rng::fill(std::uint8_t* out, std::size_t len) {
  while (len > 0) {
    if (block_pos_ == block_.size()) refill();
    std::size_t take = std::min(len, block_.size() - block_pos_);
    std::memcpy(out, block_.data() + block_pos_, take);
    block_pos_ += take;
    out += take;
    len -= take;
  }
}

Bytes ChaCha20Rng::bytes(std::size_t len) {
  Bytes out(len);
  fill(out.data(), len);
  return out;
}

std::uint64_t ChaCha20Rng::next_u64() {
  std::uint8_t buf[8];
  fill(buf, 8);
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return out;
}

std::uint64_t ChaCha20Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("next_below: zero bound");
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = ~static_cast<std::uint64_t>(0) -
                        (~static_cast<std::uint64_t>(0) % bound) - 1;
  std::uint64_t value;
  do {
    value = next_u64();
  } while (value > limit);
  return value % bound;
}

double ChaCha20Rng::next_double() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

}  // namespace b2b::crypto
