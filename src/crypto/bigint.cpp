#include "crypto/bigint.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/error.hpp"

namespace b2b::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("BigInt::from_hex: invalid character");
}

}  // namespace

BigInt::BigInt(u64 value) {
  if (value != 0) limbs_.push_back(value);
}

void BigInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes_be(BytesView bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // bytes[0] is most significant; byte i contributes to bit position
    // 8 * (size - 1 - i).
    std::size_t bit_pos = 8 * (bytes.size() - 1 - i);
    out.limbs_[bit_pos / 64] |= static_cast<u64>(bytes[i]) << (bit_pos % 64);
  }
  out.normalize();
  return out;
}

Bytes BigInt::to_bytes_be() const {
  if (is_zero()) return {};
  std::size_t bytes = (bit_length() + 7) / 8;
  return to_bytes_be(bytes);
}

Bytes BigInt::to_bytes_be(std::size_t width) const {
  if (bit_length() > width * 8) {
    throw std::invalid_argument("BigInt::to_bytes_be: value too large");
  }
  Bytes out(width, 0);
  for (std::size_t i = 0; i < width; ++i) {
    std::size_t bit_pos = 8 * (width - 1 - i);
    out[i] = static_cast<std::uint8_t>(
        (limb(bit_pos / 64) >> (bit_pos % 64)) & 0xff);
  }
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  BigInt out;
  for (char c : hex) {
    out = (out << 4) + BigInt(static_cast<u64>(hex_value(c)));
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string out;
  bool leading = true;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      int digit = static_cast<int>((limbs_[i] >> shift) & 0xf);
      if (leading && digit == 0) continue;
      leading = false;
      out.push_back("0123456789abcdef"[digit]);
    }
  }
  return out;
}

BigInt BigInt::from_decimal(std::string_view dec) {
  BigInt out;
  BigInt ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("BigInt::from_decimal: invalid character");
    }
    out = out * ten + BigInt(static_cast<u64>(c - '0'));
  }
  return out;
}

std::string BigInt::to_decimal() const {
  if (is_zero()) return "0";
  std::string out;
  BigInt value = *this;
  BigInt ten(10);
  while (!value.is_zero()) {
    auto [q, r] = divmod(value, ten);
    out.push_back(static_cast<char>('0' + r.low_u64()));
    value = q;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  u64 top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb_index = i / 64;
  if (limb_index >= limbs_.size()) return false;
  return ((limbs_[limb_index] >> (i % 64)) & 1) != 0;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt out;
  std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 sum = static_cast<u128>(limb(i)) + rhs.limb(i) + carry;
    out.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const {
  if (*this < rhs) {
    throw std::invalid_argument("BigInt::operator-: negative result");
  }
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u128 lhs_limb = limbs_[i];
    u128 sub = static_cast<u128>(rhs.limb(i)) + borrow;
    if (lhs_limb >= sub) {
      out.limbs_[i] = static_cast<u64>(lhs_limb - sub);
      borrow = 0;
    } else {
      out.limbs_[i] = static_cast<u64>((static_cast<u128>(1) << 64) +
                                       lhs_limb - sub);
      borrow = 1;
    }
  }
  out.normalize();
  return out;
}

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (is_zero() || rhs.is_zero()) return {};
  BigInt out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(limbs_[i]) * rhs.limbs_[j] +
                 out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.limbs_[i + rhs.limbs_.size()] += carry;
  }
  out.normalize();
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    if (bits == 0) return out;
  }
  if (is_zero()) return {};
  std::size_t limb_shift = bits / 64;
  std::size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.normalize();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  std::size_t limb_shift = bits / 64;
  std::size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return {};
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.normalize();
  return out;
}

BigInt::DivMod BigInt::divmod(const BigInt& numerator,
                              const BigInt& denominator) {
  if (denominator.is_zero()) {
    throw std::domain_error("BigInt::divmod: division by zero");
  }
  if (numerator < denominator) {
    return {BigInt{}, numerator};
  }
  // Single-limb divisor: simple short division.
  if (denominator.limbs_.size() == 1) {
    u64 d = denominator.limbs_[0];
    BigInt quotient;
    quotient.limbs_.assign(numerator.limbs_.size(), 0);
    u64 rem = 0;
    for (std::size_t i = numerator.limbs_.size(); i-- > 0;) {
      u128 cur = (static_cast<u128>(rem) << 64) | numerator.limbs_[i];
      quotient.limbs_[i] = static_cast<u64>(cur / d);
      rem = static_cast<u64>(cur % d);
    }
    quotient.normalize();
    return {quotient, BigInt(rem)};
  }

  // Knuth algorithm D. Normalize so the divisor's top limb has its high
  // bit set; this guarantees the quotient-digit estimate is off by at
  // most 2 and the correction loop below terminates.
  int shift = 0;
  {
    u64 top = denominator.limbs_.back();
    while ((top & (static_cast<u64>(1) << 63)) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  BigInt u = numerator << shift;
  BigInt v = denominator << shift;
  std::size_t n = v.limbs_.size();
  std::size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);  // u has m + n + 1 limbs

  BigInt quotient;
  quotient.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n] * B + u[j+n-1]) / v[n-1].
    u128 numer = (static_cast<u128>(u.limbs_[j + n]) << 64) | u.limbs_[j + n - 1];
    u128 q_hat = numer / v.limbs_[n - 1];
    u128 r_hat = numer % v.limbs_[n - 1];
    constexpr u128 kBase = static_cast<u128>(1) << 64;
    while (q_hat >= kBase ||
           q_hat * v.limbs_[n - 2] > ((r_hat << 64) | u.limbs_[j + n - 2])) {
      --q_hat;
      r_hat += v.limbs_[n - 1];
      if (r_hat >= kBase) break;
    }
    // Multiply-and-subtract: u[j..j+n] -= q_hat * v.
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u128 product = q_hat * v.limbs_[i] + carry;
      carry = product >> 64;
      u64 product_lo = static_cast<u64>(product);
      u128 diff = static_cast<u128>(u.limbs_[j + i]) - product_lo - borrow;
      u.limbs_[j + i] = static_cast<u64>(diff);
      borrow = (diff >> 64) & 1;  // 1 if we wrapped
    }
    u128 diff = static_cast<u128>(u.limbs_[j + n]) - carry - borrow;
    u.limbs_[j + n] = static_cast<u64>(diff);
    bool negative = ((diff >> 64) & 1) != 0;

    if (negative) {
      // q_hat was one too large: add back one multiple of v.
      --q_hat;
      u128 add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(u.limbs_[j + i]) + v.limbs_[i] + add_carry;
        u.limbs_[j + i] = static_cast<u64>(sum);
        add_carry = sum >> 64;
      }
      u.limbs_[j + n] = static_cast<u64>(u.limbs_[j + n] + add_carry);
    }
    quotient.limbs_[j] = static_cast<u64>(q_hat);
  }

  quotient.normalize();
  u.limbs_.resize(n);
  u.normalize();
  BigInt remainder = u >> shift;
  return {quotient, remainder};
}

BigInt BigInt::operator/(const BigInt& rhs) const {
  return divmod(*this, rhs).quotient;
}

BigInt BigInt::operator%(const BigInt& rhs) const {
  return divmod(*this, rhs).remainder;
}

BigInt gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = b;
    b = r;
  }
  return a;
}

BigInt lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) {
    throw std::domain_error("lcm of zero");
  }
  return (a / gcd(a, b)) * b;
}

BigInt mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid tracking only the coefficient of `a`, with values kept
  // non-negative by representing the coefficient pair as (value, sign).
  if (m.is_zero()) throw std::domain_error("mod_inverse: zero modulus");
  BigInt r0 = m;
  BigInt r1 = a % m;
  // s pairs: coefficient of a modulo m; track as non-negative with sign.
  BigInt s0;          // 0
  BigInt s1(1);       // 1
  bool s0_neg = false;
  bool s1_neg = false;

  while (!r1.is_zero()) {
    auto [q, r2] = BigInt::divmod(r0, r1);
    // s2 = s0 - q * s1 with signs.
    BigInt qs1 = q * s1;
    BigInt s2;
    bool s2_neg = false;
    if (s0_neg == s1_neg) {
      // s0 and q*s1 have the same sign: s2 = |s0| - |q s1| (sign flips if
      // the subtraction would go negative).
      if (s0 >= qs1) {
        s2 = s0 - qs1;
        s2_neg = s0_neg;
      } else {
        s2 = qs1 - s0;
        s2_neg = !s0_neg;
      }
    } else {
      s2 = s0 + qs1;
      s2_neg = s0_neg;
    }
    r0 = r1;
    r1 = r2;
    s0 = s1;
    s0_neg = s1_neg;
    s1 = s2;
    s1_neg = s2_neg;
  }
  if (!(r0 == BigInt(1))) {
    throw CryptoError("mod_inverse: inverse does not exist");
  }
  BigInt result = s0 % m;
  if (s0_neg && !result.is_zero()) result = m - result;
  return result;
}

MontgomeryContext::MontgomeryContext(const BigInt& modulus)
    : modulus_(modulus), limbs_(modulus.limb_count()) {
  if (!modulus.is_odd() || modulus <= BigInt(1)) {
    throw std::invalid_argument("MontgomeryContext: modulus must be odd > 1");
  }
  // n0_inv = -modulus^{-1} mod 2^64 via Newton iteration on 64-bit words.
  std::uint64_t m0 = modulus.limb(0);
  std::uint64_t inv = m0;  // correct to 3 bits initially (m0 odd)
  for (int i = 0; i < 6; ++i) inv *= 2 - m0 * inv;
  n0_inv_ = ~inv + 1;  // -inv mod 2^64

  BigInt r = BigInt(1) << (64 * limbs_);
  r_mod_ = r % modulus_;
  r2_mod_ = (r_mod_ * r_mod_) % modulus_;
}

BigInt MontgomeryContext::mul(const BigInt& a, const BigInt& b) const {
  // CIOS Montgomery multiplication over 64-bit limbs.
  using u128 = unsigned __int128;
  const std::size_t n = limbs_;
  std::vector<std::uint64_t> t(n + 2, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t a_i = a.limb(i);
    // t += a_i * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      u128 cur = static_cast<u128>(a_i) * b.limb(j) + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[n]) + carry;
    t[n] = static_cast<std::uint64_t>(cur);
    t[n + 1] = static_cast<std::uint64_t>(cur >> 64);

    // m = t[0] * n0_inv mod 2^64;  t += m * modulus;  t >>= 64
    std::uint64_t m_factor = t[0] * n0_inv_;
    carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      u128 cur2 = static_cast<u128>(m_factor) * modulus_.limb(j) + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur2);
      carry = static_cast<std::uint64_t>(cur2 >> 64);
    }
    u128 cur3 = static_cast<u128>(t[n]) + carry;
    t[n] = static_cast<std::uint64_t>(cur3);
    t[n + 1] += static_cast<std::uint64_t>(cur3 >> 64);
    // shift down one limb
    for (std::size_t j = 0; j <= n; ++j) t[j] = t[j + 1];
    t[n + 1] = 0;
  }
  // Assemble and reduce once if needed.
  BigInt result = BigInt::from_bytes_be({});  // zero
  {
    Bytes be((n + 1) * 8, 0);
    for (std::size_t i = 0; i <= n; ++i) {
      for (int bbyte = 0; bbyte < 8; ++bbyte) {
        be[(n - i) * 8 + (7 - bbyte)] =
            static_cast<std::uint8_t>((t[i] >> (8 * bbyte)) & 0xff);
      }
    }
    result = BigInt::from_bytes_be(be);
  }
  if (result >= modulus_) result = result - modulus_;
  return result;
}

BigInt MontgomeryContext::to_mont(const BigInt& value) const {
  return mul(value % modulus_, r2_mod_);
}

BigInt MontgomeryContext::from_mont(const BigInt& value) const {
  return mul(value, BigInt(1));
}

BigInt MontgomeryContext::pow(const BigInt& base, const BigInt& exponent) const {
  BigInt result = r_mod_;  // 1 in Montgomery form
  BigInt acc = to_mont(base);
  std::size_t bits = exponent.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = mul(result, result);
    if (exponent.bit(i)) result = mul(result, acc);
  }
  return from_mont(result);
}

BigInt mod_exp(const BigInt& base, const BigInt& exponent,
               const BigInt& modulus) {
  if (modulus.is_zero()) throw std::domain_error("mod_exp: zero modulus");
  if (modulus == BigInt(1)) return {};
  if (modulus.is_odd()) {
    return MontgomeryContext(modulus).pow(base, exponent);
  }
  // Even modulus: plain left-to-right square-and-multiply.
  BigInt result(1);
  BigInt acc = base % modulus;
  std::size_t bits = exponent.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = (result * result) % modulus;
    if (exponent.bit(i)) result = (result * acc) % modulus;
  }
  return result;
}

}  // namespace b2b::crypto
