#include "crypto/rsa.hpp"

#include <map>
#include <stdexcept>

#include "common/error.hpp"

namespace b2b::crypto {

namespace {

// DER DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
constexpr std::uint8_t kSha256DigestInfo[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

/// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `em_len` bytes.
Bytes pkcs1_encode(const Digest& digest, std::size_t em_len) {
  constexpr std::size_t kPrefixLen = sizeof(kSha256DigestInfo);
  std::size_t t_len = kPrefixLen + digest.size();
  if (em_len < t_len + 11) {
    throw CryptoError("pkcs1_encode: modulus too small for SHA-256");
  }
  Bytes em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(std::begin(kSha256DigestInfo), std::end(kSha256DigestInfo),
            em.begin() + static_cast<std::ptrdiff_t>(em_len - t_len));
  std::copy(digest.begin(), digest.end(),
            em.begin() + static_cast<std::ptrdiff_t>(em_len - digest.size()));
  return em;
}

constexpr std::uint64_t kSmallPrimes[] = {
    3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37,  41,  43,  47,  53,  59,
    61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131,
    137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251};

}  // namespace

RsaPublicKey::RsaPublicKey(BigInt n, BigInt e)
    : n_(std::move(n)), e_(std::move(e)) {}

bool RsaPublicKey::verify(BytesView message, BytesView signature) const {
  return verify_digest(Sha256::hash(message), signature);
}

bool RsaPublicKey::verify_digest(const Digest& digest,
                                 BytesView signature) const {
  if (n_.is_zero()) return false;
  if (signature.size() != modulus_bytes()) return false;
  BigInt s = BigInt::from_bytes_be(signature);
  if (s >= n_) return false;
  BigInt m = mod_exp(s, e_, n_);
  Bytes em;
  try {
    em = m.to_bytes_be(modulus_bytes());
  } catch (const std::invalid_argument&) {
    return false;
  }
  Bytes expected = pkcs1_encode(digest, modulus_bytes());
  return em == expected;
}

Bytes RsaPublicKey::encrypt(BytesView plaintext, ChaCha20Rng& rng) const {
  std::size_t k = modulus_bytes();
  if (plaintext.size() + 11 > k) {
    throw CryptoError("RsaPublicKey::encrypt: plaintext too long");
  }
  // EME-PKCS1-v1_5: 0x00 0x02 PS 0x00 M with PS >= 8 nonzero random bytes.
  Bytes em(k, 0);
  em[1] = 0x02;
  std::size_t ps_len = k - plaintext.size() - 3;
  for (std::size_t i = 0; i < ps_len; ++i) {
    std::uint8_t b;
    do {
      b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    } while (b == 0);
    em[2 + i] = b;
  }
  em[2 + ps_len] = 0x00;
  std::copy(plaintext.begin(), plaintext.end(),
            em.begin() + static_cast<std::ptrdiff_t>(3 + ps_len));
  BigInt m = BigInt::from_bytes_be(em);
  return mod_exp(m, e_, n_).to_bytes_be(k);
}

Bytes RsaPublicKey::encode() const {
  Bytes n_bytes = n_.to_bytes_be();
  Bytes e_bytes = e_.to_bytes_be();
  Bytes out;
  out.reserve(8 + n_bytes.size() + e_bytes.size());
  auto put_u32 = [&out](std::uint32_t v) {
    for (int i = 3; i >= 0; --i) {
      out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
  };
  put_u32(static_cast<std::uint32_t>(n_bytes.size()));
  out.insert(out.end(), n_bytes.begin(), n_bytes.end());
  put_u32(static_cast<std::uint32_t>(e_bytes.size()));
  out.insert(out.end(), e_bytes.begin(), e_bytes.end());
  return out;
}

RsaPublicKey RsaPublicKey::decode(BytesView data) {
  std::size_t pos = 0;
  auto get_u32 = [&]() -> std::uint32_t {
    if (pos + 4 > data.size()) throw CodecError("RsaPublicKey: truncated");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data[pos++];
    return v;
  };
  auto get_blob = [&](std::size_t len) -> BytesView {
    if (pos + len > data.size()) throw CodecError("RsaPublicKey: truncated");
    BytesView view = data.subspan(pos, len);
    pos += len;
    return view;
  };
  std::uint32_t n_len = get_u32();
  BigInt n = BigInt::from_bytes_be(get_blob(n_len));
  std::uint32_t e_len = get_u32();
  BigInt e = BigInt::from_bytes_be(get_blob(e_len));
  if (pos != data.size()) throw CodecError("RsaPublicKey: trailing bytes");
  return RsaPublicKey(std::move(n), std::move(e));
}

RsaPrivateKey::RsaPrivateKey(BigInt n, BigInt e, BigInt d, BigInt p, BigInt q)
    : public_key_(std::move(n), std::move(e)),
      d_(std::move(d)),
      p_(std::move(p)),
      q_(std::move(q)) {
  BigInt one(1);
  d_p_ = d_ % (p_ - one);
  d_q_ = d_ % (q_ - one);
  q_inv_ = mod_inverse(q_, p_);
}

Bytes RsaPrivateKey::sign(BytesView message) const {
  return sign_digest(Sha256::hash(message));
}

Bytes RsaPrivateKey::sign_digest(const Digest& digest) const {
  std::size_t k = public_key_.modulus_bytes();
  BigInt m = BigInt::from_bytes_be(pkcs1_encode(digest, k));
  // CRT: s = m^d mod n computed as two half-size exponentiations.
  BigInt m1 = mod_exp(m % p_, d_p_, p_);
  BigInt m2 = mod_exp(m % q_, d_q_, q_);
  // h = q_inv * (m1 - m2) mod p (adjusting when m1 < m2)
  BigInt diff = (m1 >= m2) ? (m1 - m2) : (p_ - ((m2 - m1) % p_)) % p_;
  BigInt h = (q_inv_ * diff) % p_;
  BigInt s = m2 + h * q_;
  return s.to_bytes_be(k);
}

std::optional<Bytes> RsaPrivateKey::decrypt(BytesView ciphertext) const {
  std::size_t k = public_key_.modulus_bytes();
  if (ciphertext.size() != k || k < 11) return std::nullopt;
  BigInt c = BigInt::from_bytes_be(ciphertext);
  if (c >= public_key_.n()) return std::nullopt;
  // CRT, same shape as sign_digest.
  BigInt m1 = mod_exp(c % p_, d_p_, p_);
  BigInt m2 = mod_exp(c % q_, d_q_, q_);
  BigInt diff = (m1 >= m2) ? (m1 - m2) : (p_ - ((m2 - m1) % p_)) % p_;
  BigInt h = (q_inv_ * diff) % p_;
  BigInt m = m2 + h * q_;
  Bytes em;
  try {
    em = m.to_bytes_be(k);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  if (em[0] != 0x00 || em[1] != 0x02) return std::nullopt;
  std::size_t sep = 2;
  while (sep < k && em[sep] != 0x00) ++sep;
  if (sep == k || sep < 10) return std::nullopt;  // PS must be >= 8 bytes
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep + 1), em.end());
}

SignatureCache::SignatureCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::string SignatureCache::cache_key(const RsaPublicKey& key,
                                      const Digest& digest,
                                      BytesView signature) {
  // Hash the full (key, digest, signature) triple with explicit length
  // framing so no field can collide into a neighbour: the encoded key is
  // itself length-prefixed, the digest is fixed-width, and the signature
  // length is mixed in before its bytes.
  Sha256 hasher;
  Bytes key_bytes = key.encode();
  auto mix_len = [&hasher](std::uint64_t n) {
    Bytes len(8);
    for (int i = 0; i < 8; ++i) {
      len[i] = static_cast<std::uint8_t>(n >> (8 * i));
    }
    hasher.update(len);
  };
  mix_len(key_bytes.size());
  hasher.update(key_bytes);
  hasher.update(BytesView(digest.data(), digest.size()));
  mix_len(signature.size());
  hasher.update(signature);
  Digest id = hasher.finish();
  return std::string(reinterpret_cast<const char*>(id.data()), id.size());
}

bool SignatureCache::contains(const RsaPublicKey& key, const Digest& digest,
                              BytesView signature) const {
  std::string id = cache_key(key, digest, signature);
  std::lock_guard<std::mutex> lock(mutex_);
  bool hit = entries_.contains(id);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return hit;
}

void SignatureCache::insert(const RsaPublicKey& key, const Digest& digest,
                            BytesView signature) {
  std::string id = cache_key(key, digest, signature);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!entries_.insert(id).second) return;
  order_.push_back(std::move(id));
  ++stats_.insertions;
  while (entries_.size() > capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
    ++stats_.evictions;
  }
}

bool SignatureCache::verify(const RsaPublicKey& key, BytesView message,
                            BytesView signature) {
  return verify_digest(key, Sha256::hash(message), signature);
}

bool SignatureCache::verify_digest(const RsaPublicKey& key,
                                   const Digest& digest, BytesView signature) {
  if (contains(key, digest, signature)) return true;
  if (!key.verify_digest(digest, signature)) return false;
  insert(key, digest, signature);
  return true;
}

SignatureCache::Stats SignatureCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SignatureCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

BatchVerifyResult batch_verify(const std::vector<BatchVerifyItem>& items,
                               ChaCha20Rng& rng, SignatureCache* cache) {
  BatchVerifyResult out;
  out.ok.assign(items.size(), false);

  // Pass 1: cache answers, and group the remainder by public key.
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchVerifyItem& item = items[i];
    if (item.key == nullptr) continue;
    if (cache != nullptr &&
        cache->contains(*item.key, item.digest, item.signature)) {
      out.ok[i] = true;
      ++out.cache_hits;
      continue;
    }
    Bytes key_id = item.key->encode();
    groups[std::string(key_id.begin(), key_id.end())].push_back(i);
  }

  auto verify_one = [&](std::size_t i) {
    const BatchVerifyItem& item = items[i];
    out.ok[i] = item.key->verify_digest(item.digest, item.signature);
    if (out.ok[i] && cache != nullptr) {
      cache->insert(*item.key, item.digest, item.signature);
    }
  };

  for (auto& [key_id, indices] : groups) {
    const RsaPublicKey& key = *items[indices.front()].key;
    const std::size_t k = key.modulus_bytes();
    bool screened = indices.size() >= 2;
    if (screened) {
      // Bellare–Garay–Rabin small-exponents screening over the group:
      // accept iff (prod s_i^{l_i})^e == prod m_i^{l_i} (mod n) for
      // random 32-bit l_i >= 1. Any malformed member (wrong length,
      // s >= n) drops the group to per-item verification instead.
      BigInt sig_acc(1);
      BigInt msg_acc(1);
      for (std::size_t i : indices) {
        const BatchVerifyItem& item = items[i];
        if (item.signature.size() != k) {
          screened = false;
          break;
        }
        BigInt s = BigInt::from_bytes_be(item.signature);
        if (s >= key.n()) {
          screened = false;
          break;
        }
        BigInt m = BigInt::from_bytes_be(pkcs1_encode(item.digest, k));
        BigInt l(static_cast<std::uint64_t>(rng.next_u64() & 0xffffffffULL) |
                 1ULL);
        sig_acc = (sig_acc * mod_exp(s, l, key.n())) % key.n();
        msg_acc = (msg_acc * mod_exp(m, l, key.n())) % key.n();
      }
      if (screened && mod_exp(sig_acc, key.e(), key.n()) == msg_acc) {
        ++out.screened_groups;
        for (std::size_t i : indices) {
          out.ok[i] = true;
          if (cache != nullptr) {
            cache->insert(key, items[i].digest, items[i].signature);
          }
        }
        continue;
      }
    }
    // Singleton group, malformed member, or screening failed: verify each
    // member individually so the caller learns exactly which are bad.
    for (std::size_t i : indices) verify_one(i);
  }

  out.all_ok = true;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!out.ok[i]) {
      out.all_ok = false;
      out.bad.push_back(i);
    }
  }
  return out;
}

bool is_probable_prime(const BigInt& candidate, ChaCha20Rng& rng, int rounds) {
  if (candidate < BigInt(2)) return false;
  for (std::uint64_t sp : kSmallPrimes) {
    BigInt small(sp);
    if (candidate == small) return true;
    if ((candidate % small).is_zero()) return false;
  }
  if (!candidate.is_odd()) return candidate == BigInt(2);

  // Write candidate - 1 = 2^r * d with d odd.
  BigInt n_minus_1 = candidate - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  MontgomeryContext mont(candidate);
  std::size_t cand_bytes = (candidate.bit_length() + 7) / 8;
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, candidate - 2].
    BigInt a;
    do {
      a = BigInt::from_bytes_be(rng.bytes(cand_bytes)) % candidate;
    } while (a < BigInt(2) || a > candidate - BigInt(2));

    BigInt x = mont.pow(a, d);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = (x * x) % candidate;
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt generate_prime(std::size_t bits, ChaCha20Rng& rng) {
  if (bits < 16) throw std::invalid_argument("generate_prime: bits too small");
  std::size_t num_bytes = (bits + 7) / 8;
  for (;;) {
    Bytes raw = rng.bytes(num_bytes);
    // Clear excess leading bits, then set the top two bits and the low bit.
    std::size_t excess = num_bytes * 8 - bits;
    raw[0] = static_cast<std::uint8_t>(raw[0] & (0xff >> excess));
    raw[0] |= static_cast<std::uint8_t>(0xc0 >> excess);
    if (excess >= 7) {
      // Top two bits straddle a byte boundary.
      raw[1] |= 0x80;
    }
    raw[num_bytes - 1] |= 0x01;
    BigInt candidate = BigInt::from_bytes_be(raw);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

RsaPrivateKey generate_rsa_keypair(std::size_t bits, ChaCha20Rng& rng) {
  if (bits < 512) {
    throw std::invalid_argument("generate_rsa_keypair: need >= 512 bits");
  }
  BigInt e(65537);
  for (;;) {
    BigInt p = generate_prime(bits / 2, rng);
    BigInt q = generate_prime(bits / 2, rng);
    if (p == q) continue;
    if (q > p) std::swap(p, q);
    BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    BigInt one(1);
    BigInt lambda = lcm(p - one, q - one);
    if (!(gcd(e, lambda) == one)) continue;
    BigInt d = mod_inverse(e, lambda);
    return RsaPrivateKey(std::move(n), e, std::move(d), std::move(p),
                         std::move(q));
  }
}

}  // namespace b2b::crypto
