// Trusted time-stamping service (TSS).
//
// §4.2: "all signed evidence must be time-stamped. It is assumed that a
// trusted time-stamping service ... is available to each party". Given a
// message m the TSS returns TS(m, t) = (H(m), t, sig_TSS(H(m) || t)) —
// evidence that m existed at time t. The simulation's TSS reads the
// virtual clock through a caller-supplied function, so time-stamps are
// deterministic in tests.
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace b2b::crypto {

/// A signed time-stamp over some message hash.
struct Timestamp {
  Digest message_hash{};
  std::uint64_t time_micros = 0;
  Bytes signature;  // TSS signature over message_hash || time

  Bytes encode() const;
  static Timestamp decode(BytesView data);  // throws CodecError

  friend bool operator==(const Timestamp&, const Timestamp&) = default;
};

/// The service itself: holds the TSS keypair and a clock source.
class TimestampService {
 public:
  using ClockFn = std::function<std::uint64_t()>;

  /// `keypair` is the TSS identity; `clock` yields microseconds.
  TimestampService(RsaPrivateKey keypair, ClockFn clock);

  const RsaPublicKey& public_key() const {
    return keypair_.public_key();
  }

  /// Stamp a message (hashes it first).
  Timestamp stamp(BytesView message) const;

  /// Stamp a precomputed hash.
  Timestamp stamp_digest(const Digest& digest) const;

  /// Verify a timestamp against a TSS public key. Static so any party can
  /// verify with only the public key.
  static bool verify(const Timestamp& ts, const RsaPublicKey& tss_key);

 private:
  RsaPrivateKey keypair_;
  ClockFn clock_;
};

}  // namespace b2b::crypto
