// Arbitrary-precision unsigned integers.
//
// This is the numeric substrate for the RSA signature scheme the paper's
// non-repudiation evidence relies on (§4.2 assumes a verifiable, unforgeable
// signature scheme). Only non-negative values are supported because RSA and
// the auxiliary number theory (gcd, modular inverse, Miller-Rabin) never
// need negatives; operator- therefore requires a >= b and throws otherwise.
//
// Representation: little-endian vector of 64-bit limbs, normalized so the
// most significant limb is non-zero (zero is the empty vector).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace b2b::crypto {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a machine word.
  BigInt(std::uint64_t value);  // NOLINT(google-explicit-constructor)

  /// Big-endian byte-string conversions (the wire format for keys and
  /// signatures). from_bytes_be accepts leading zero bytes.
  static BigInt from_bytes_be(BytesView bytes);
  /// Minimal-length big-endian bytes (empty for zero).
  Bytes to_bytes_be() const;
  /// Fixed-width big-endian bytes, left-padded with zeros. Throws if the
  /// value does not fit.
  Bytes to_bytes_be(std::size_t width) const;

  /// Hex (no 0x prefix) and decimal conversions, mainly for tests/debugging.
  static BigInt from_hex(std::string_view hex);
  std::string to_hex() const;
  static BigInt from_decimal(std::string_view dec);
  std::string to_decimal() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1) != 0; }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  /// Value of bit `i` (false beyond bit_length).
  bool bit(std::size_t i) const;

  std::size_t limb_count() const { return limbs_.size(); }
  std::uint64_t limb(std::size_t i) const {
    return i < limbs_.size() ? limbs_[i] : 0;
  }

  /// Low 64 bits of the value.
  std::uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  // Arithmetic. operator- throws std::invalid_argument when *this < rhs.
  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  BigInt operator/(const BigInt& rhs) const;
  BigInt operator%(const BigInt& rhs) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  BigInt& operator+=(const BigInt& rhs) { return *this = *this + rhs; }
  BigInt& operator-=(const BigInt& rhs) { return *this = *this - rhs; }
  BigInt& operator*=(const BigInt& rhs) { return *this = *this * rhs; }

  struct DivMod;
  /// Quotient and remainder in one division (Knuth algorithm D).
  /// Throws std::domain_error on division by zero.
  static DivMod divmod(const BigInt& numerator, const BigInt& denominator);

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.limbs_ == b.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

 private:
  void normalize();

  std::vector<std::uint64_t> limbs_;
};

/// Result of BigInt::divmod.
struct BigInt::DivMod {
  BigInt quotient;
  BigInt remainder;
};

/// Greatest common divisor (binary-free Euclid; fine at RSA sizes).
BigInt gcd(BigInt a, BigInt b);

/// Least common multiple. Throws std::domain_error if either input is zero.
BigInt lcm(const BigInt& a, const BigInt& b);

/// Modular inverse of `a` mod `m`. Throws b2b::CryptoError when the inverse
/// does not exist (gcd(a, m) != 1).
BigInt mod_inverse(const BigInt& a, const BigInt& m);

/// base^exponent mod modulus. Uses Montgomery multiplication when the
/// modulus is odd (the RSA case), plain square-and-multiply otherwise.
/// Throws std::domain_error for modulus == 0.
BigInt mod_exp(const BigInt& base, const BigInt& exponent,
               const BigInt& modulus);

/// Montgomery context for repeated multiplications modulo one odd modulus.
/// Exposed so Miller-Rabin and RSA share the machinery, and so tests can
/// exercise it directly against the reference path.
class MontgomeryContext {
 public:
  /// Throws std::invalid_argument unless modulus is odd and > 1.
  explicit MontgomeryContext(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }

  /// Convert into / out of Montgomery form.
  BigInt to_mont(const BigInt& value) const;
  BigInt from_mont(const BigInt& value) const;

  /// Montgomery product of two values already in Montgomery form.
  BigInt mul(const BigInt& a, const BigInt& b) const;

  /// base^exponent mod modulus (inputs/outputs in ordinary form).
  BigInt pow(const BigInt& base, const BigInt& exponent) const;

 private:
  BigInt modulus_;
  std::size_t limbs_;       // width of the modulus in limbs
  std::uint64_t n0_inv_;    // -modulus^{-1} mod 2^64
  BigInt r_mod_;            // R mod modulus (Montgomery form of 1)
  BigInt r2_mod_;           // R^2 mod modulus, used by to_mont
};

}  // namespace b2b::crypto
