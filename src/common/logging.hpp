// Minimal leveled logger.
//
// Protocol runs are easier to debug with a trace of message flow; the
// logger is off by default (Warn) so tests and benches stay quiet. The
// level is a process-wide setting controlled by set_log_level() or the
// B2B_LOG environment variable ("trace", "debug", "info", "warn", "off").
#pragma once

#include <sstream>
#include <string>

namespace b2b {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kOff };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr if `level` >= the current threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {

template <typename... Args>
std::string format_log(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace detail

#define B2B_LOG(level, ...)                                           \
  do {                                                                \
    if (static_cast<int>(level) >= static_cast<int>(b2b::log_level())) \
      b2b::log_line(level, b2b::detail::format_log(__VA_ARGS__));     \
  } while (false)

#define B2B_TRACE(...) B2B_LOG(b2b::LogLevel::kTrace, __VA_ARGS__)
#define B2B_DEBUG(...) B2B_LOG(b2b::LogLevel::kDebug, __VA_ARGS__)
#define B2B_INFO(...) B2B_LOG(b2b::LogLevel::kInfo, __VA_ARGS__)
#define B2B_WARN(...) B2B_LOG(b2b::LogLevel::kWarn, __VA_ARGS__)

}  // namespace b2b
