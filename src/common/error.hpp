// Error hierarchy for B2BObjects.
//
// Failures that callers are expected to handle programmatically are thrown
// as subclasses of b2b::Error so that call sites can catch by category
// (codec, crypto, protocol, validation) or catch everything from the
// middleware at once.
#pragma once

#include <stdexcept>
#include <string>

namespace b2b {

/// Root of all exceptions thrown by the middleware.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or truncated wire data.
class CodecError : public Error {
 public:
  explicit CodecError(const std::string& what) : Error("codec: " + what) {}
};

/// Cryptographic failure (bad key, verification failure, etc.).
class CryptoError : public Error {
 public:
  explicit CryptoError(const std::string& what) : Error("crypto: " + what) {}
};

/// Violation of protocol rules detected during a coordination run.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what)
      : Error("protocol: " + what) {}
};

/// Application-level validation rejected a request (e.g. a synchronous
/// state change was vetoed by a peer, as §5 prescribes for sync mode).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what)
      : Error("validation: " + what) {}
};

/// Persistent-store failure (corrupt log, I/O error).
class StoreError : public Error {
 public:
  explicit StoreError(const std::string& what) : Error("store: " + what) {}
};

}  // namespace b2b
