// Strongly typed identifiers used across the middleware.
//
// The paper names parties P_1..P_n; we identify a party by a short string
// alias (an "organisation name"). ObjectId names a coordinated object in
// the virtual space (Figure 2 of the paper). Both are thin wrappers over
// std::string so that the two cannot be confused at call sites.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>

namespace b2b {

namespace detail {

/// CRTP-less tagged string: Tag makes distinct instantiations distinct types.
template <typename Tag>
class TaggedString {
 public:
  TaggedString() = default;
  explicit TaggedString(std::string value) : value_(std::move(value)) {}

  const std::string& str() const { return value_; }
  bool empty() const { return value_.empty(); }

  friend auto operator<=>(const TaggedString&, const TaggedString&) = default;
  friend std::ostream& operator<<(std::ostream& os, const TaggedString& id) {
    return os << id.value_;
  }

 private:
  std::string value_;
};

}  // namespace detail

struct PartyIdTag {};
struct ObjectIdTag {};

/// Identifies a participant (organisation) — P_i in the paper.
using PartyId = detail::TaggedString<PartyIdTag>;

/// Identifies a shared object in the virtual space.
using ObjectId = detail::TaggedString<ObjectIdTag>;

}  // namespace b2b

namespace std {

template <>
struct hash<b2b::PartyId> {
  std::size_t operator()(const b2b::PartyId& id) const noexcept {
    return std::hash<std::string>{}(id.str());
  }
};

template <>
struct hash<b2b::ObjectId> {
  std::size_t operator()(const b2b::ObjectId& id) const noexcept {
    return std::hash<std::string>{}(id.str());
  }
};

}  // namespace std
