#include "common/bytes.hpp"

#include <stdexcept>

namespace b2b {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex character");
}

}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) * 16 +
                                            hex_value(hex[i + 1])));
  }
  return out;
}

Bytes bytes_of(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string string_of(BytesView data) {
  return std::string(data.begin(), data.end());
}

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace b2b
