#include "common/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace b2b {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("B2B_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  std::string v(env);
  if (v == "trace") return LogLevel::kTrace;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  return LogLevel::kOff;
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::cerr << "[b2b " << level_name(level) << "] " << message << '\n';
}

}  // namespace b2b
