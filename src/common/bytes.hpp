// Byte-buffer utilities shared by every B2BObjects module.
//
// The middleware moves opaque byte strings around constantly (serialized
// states, hashes, signatures, wire messages), so we standardise on a single
// alias `b2b::Bytes` and provide the small set of helpers the rest of the
// code needs: hex conversion, concatenation and constant-time comparison
// (for comparing secrets such as random authenticators).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace b2b {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encode `data` as lowercase hex.
std::string to_hex(BytesView data);

/// Decode a hex string (upper or lower case). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Interpret a UTF-8/ASCII string as raw bytes.
Bytes bytes_of(std::string_view s);

/// Interpret raw bytes as a std::string (no validation).
std::string string_of(BytesView data);

/// Concatenate any number of byte buffers.
Bytes concat(std::initializer_list<BytesView> parts);

/// Compare two buffers in time independent of content (length leaks).
/// Used when comparing secret values such as random authenticators.
bool constant_time_equal(BytesView a, BytesView b);

}  // namespace b2b
