#include "b2b/federation.hpp"

#include <map>
#include <mutex>
#include <optional>

#include "common/error.hpp"

namespace b2b::core {

namespace {

/// Wire v3 session authentication for the socket runtimes: every party
/// (and the termination TTP) keys itself out of the federation's shared
/// deterministic keypair pool, by roster index — the same identities the
/// coordinators already sign evidence with. Unknown identities fail
/// closed (no peer key → no hello → no connection).
std::function<net::WireAuth(const PartyId&)> wire_auth_hook(
    std::vector<std::string> party_names, std::size_t bits) {
  auto roster = std::make_shared<const std::vector<std::string>>(
      std::move(party_names));
  auto key_index = [roster](const PartyId& id) -> std::optional<std::size_t> {
    if (id.str() == "termination-ttp") return 998;
    for (std::size_t i = 0; i < roster->size(); ++i) {
      if ((*roster)[i] == id.str()) return i;
    }
    return std::nullopt;
  };
  return [key_index, bits](const PartyId& self) {
    net::WireAuth auth;
    auto index = key_index(self);
    if (!index) return auth;  // not a federation identity: leave auth off
    auth.enabled = true;
    // Pool entries live for the process; alias them without owning.
    auth.private_key = std::shared_ptr<const crypto::RsaPrivateKey>(
        std::shared_ptr<const void>{},
        &Federation::shared_keypair(bits, *index));
    auth.peer_key = [key_index, bits](const PartyId& peer)
        -> std::shared_ptr<const crypto::RsaPublicKey> {
      auto peer_index = key_index(peer);
      if (!peer_index) return nullptr;  // fail closed on unknown peers
      return std::make_shared<crypto::RsaPublicKey>(
          Federation::shared_keypair(bits, *peer_index).public_key());
    };
    return auth;
  };
}

}  // namespace

const crypto::RsaPrivateKey& Federation::shared_keypair(std::size_t bits,
                                                        std::size_t index) {
  static std::mutex mutex;
  static std::map<std::pair<std::size_t, std::size_t>, crypto::RsaPrivateKey>
      cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto key = std::make_pair(bits, index);
  auto it = cache.find(key);
  if (it == cache.end()) {
    crypto::ChaCha20Rng rng(0xfede'0000ULL + bits * 1000 + index);
    it = cache.emplace(key, crypto::generate_rsa_keypair(bits, rng)).first;
  }
  return it->second;
}

Federation::Federation(std::vector<std::string> party_names)
    : Federation(std::move(party_names), Options{}) {}

Federation::Federation(std::vector<std::string> party_names,
                       const Options& options)
    : options_(options), runtime_(options.runtime), rsa_bits_(options.rsa_bits) {
  if (runtime_ == RuntimeKind::kSim) {
    net::SimRuntime::Options sim_options;
    sim_options.seed = options.seed;
    sim_options.faults = options.faults;
    sim_options.reliable = options.reliable;
    sim_ = std::make_unique<net::SimRuntime>(sim_options);
  } else if (runtime_ == RuntimeKind::kThreaded) {
    net::ThreadedRuntime::Options threaded_options;
    threaded_options.seed = options.seed;
    threaded_options.faults = options.threaded_faults;
    threaded_options.transport = options.threaded_transport;
    threaded_options.executor = options.threaded_executor;
    threaded_ = std::make_unique<net::ThreadedRuntime>(threaded_options);
  } else if (runtime_ == RuntimeKind::kTcp) {
    net::TcpRuntime::Options tcp_options;
    tcp_options.directory = options.tcp_directory;
    tcp_options.seed = options.seed;
    tcp_options.faults = options.tcp_faults;
    tcp_options.transport = options.tcp_transport;
    tcp_options.executor = options.threaded_executor;
    if (options.wire_auth) {
      tcp_options.wire_auth = wire_auth_hook(party_names, options.rsa_bits);
    }
    tcp_ = std::make_unique<net::TcpRuntime>(tcp_options);
  } else {
    net::ReactorRuntime::Options reactor_options;
    reactor_options.directory = options.tcp_directory;
    reactor_options.seed = options.seed;
    reactor_options.faults = options.reactor_faults;
    reactor_options.transport = options.reactor_transport;
    reactor_options.executor = options.threaded_executor;
    reactor_options.workers = options.reactor_workers;
    if (options.wire_auth) {
      reactor_options.wire_auth = wire_auth_hook(party_names, options.rsa_bits);
    }
    reactor_ = std::make_unique<net::ReactorRuntime>(reactor_options);
  }

  if (options.use_tss) {
    // The TSS gets its own identity (index well away from party keys).
    tss_ = std::make_unique<crypto::TimestampService>(
        shared_keypair(options.rsa_bits, 999),
        [this] { return clock().now_micros(); });
  }

  for (std::size_t i = 0; i < party_names.size(); ++i) {
    auto party = std::make_unique<Party>();
    party->id = PartyId{party_names[i]};
    party->transport = &runtime_impl().add_party(party->id);
    parties_.push_back(std::move(party));
    parties_.back()->coordinator = std::make_unique<Coordinator>(
        party_config(i), *parties_.back()->transport, clock(), tss_.get());
    // A frame acked by the transport may still be queued on one of the
    // coordinator's shard lanes; teach the runtime's quiescence probe
    // about it. Party objects are stable (vector of pointers) and the
    // runtime — and with it the probe — dies before parties_ does.
    Party* raw = parties_.back().get();
    auto lane_probe = [raw] {
      return !raw->coordinator || raw->coordinator->lanes_idle();
    };
    if (threaded_) {
      threaded_->add_quiescence_probe(lane_probe);
    } else if (tcp_) {
      tcp_->add_quiescence_probe(lane_probe);
    } else if (reactor_) {
      reactor_->add_quiescence_probe(lane_probe);
    }
  }

  // Shared PKI: every organisation can verify every other's signatures
  // (§4.2: "All parties are assumed to have the means to verify each
  // other's signatures").
  for (auto& a : parties_) {
    for (auto& b : parties_) {
      if (a != b) {
        a->coordinator->add_known_party(b->id,
                                        b->coordinator->public_key());
      }
    }
  }
}

Federation::~Federation() {
  // Teardown is a two-stage barrier. First stop every runtime thread
  // (timer, receivers, retransmitters) so nothing new is posted to a
  // coordinator shard lane; then join the lanes themselves, so no lane
  // task can call into a transport the runtime member destructor (which
  // runs first — runtimes are declared last) is about to destroy.
  if (threaded_) threaded_->shutdown();
  if (tcp_) tcp_->shutdown();
  if (reactor_) reactor_->shutdown();
  for (auto& p : parties_) {
    if (p->coordinator) p->coordinator->stop_lanes();
  }
}

net::Runtime& Federation::runtime_impl() {
  if (sim_) return *sim_;
  if (threaded_) return *threaded_;
  if (tcp_) return *tcp_;
  return *reactor_;
}

net::Clock& Federation::clock() { return runtime_impl().clock(); }

net::Executor& Federation::executor() { return runtime_impl().executor(); }

net::EventScheduler& Federation::scheduler() {
  if (!sim_) throw Error("scheduler(): not running on the sim runtime");
  return sim_->scheduler();
}

net::SimNetwork& Federation::network() {
  if (!sim_) throw Error("network(): not running on the sim runtime");
  return sim_->network();
}

net::ThreadedNetwork& Federation::threaded_network() {
  if (!threaded_) {
    throw Error("threaded_network(): not running on the threaded runtime");
  }
  return threaded_->network();
}

net::TcpRuntime& Federation::tcp_runtime() {
  if (!tcp_) throw Error("tcp_runtime(): not running on the tcp runtime");
  return *tcp_;
}

net::ReactorRuntime& Federation::reactor_runtime() {
  if (!reactor_) {
    throw Error("reactor_runtime(): not running on the reactor runtime");
  }
  return *reactor_;
}

std::vector<PartyId> Federation::party_ids() const {
  std::vector<PartyId> out;
  out.reserve(parties_.size());
  for (const auto& p : parties_) out.push_back(p->id);
  return out;
}

Federation::Party& Federation::find_party(const std::string& name) {
  for (auto& p : parties_) {
    if (p->id.str() == name) return *p;
  }
  throw Error("unknown party: " + name);
}

std::size_t Federation::party_index(const std::string& name) const {
  for (std::size_t i = 0; i < parties_.size(); ++i) {
    if (parties_[i]->id.str() == name) return i;
  }
  throw Error("unknown party: " + name);
}

Coordinator::Config Federation::party_config(std::size_t index) const {
  Coordinator::Config config;
  config.self = parties_[index]->id;
  config.key = shared_keypair(options_.rsa_bits, index);
  config.rng_seed = options_.seed * 1000003 + index;
  config.sponsor_policy = options_.sponsor_policy;
  config.decision_rule = options_.decision_rule;
  if (!options_.journal_root.empty()) {
    config.journal_dir =
        options_.journal_root + "/" + parties_[index]->id.str();
    config.journal_fsync = options_.journal_fsync;
  }
  config.run_probe_interval_micros = options_.run_probe_interval_micros;
  config.max_run_probes = options_.max_run_probes;
  config.lock_mode = options_.lock_mode;
  // Lanes only where real threads exist: the sim dispatches inline on one
  // thread, preserving bit-for-bit determinism.
  config.shard_lanes = options_.shard_lanes && runtime_ != RuntimeKind::kSim;
  // On the reactor runtime, lanes run as strands on the shared executor
  // pool instead of owning a thread each — flat thread count.
  if (reactor_) config.lane_pool = reactor_->pool();
  config.pipeline = options_.pipeline;
  if (options_.pipeline) {
    config.evidence_anchor_interval = options_.evidence_anchor_interval > 0
                                          ? options_.evidence_anchor_interval
                                          : 8;
  }
  return config;
}

void Federation::crash_party(const std::string& name) {
  Party& party = find_party(name);
  if (!party.coordinator) {
    throw Error("crash_party: already crashed: " + name);
  }
  // Order matters. Dead on the fabric FIRST, so frames arriving during
  // the downtime are dropped *un-acked* (the peer keeps retransmitting)
  // rather than acked into a void; then detach the handler synchronously
  // (no dispatch is in flight into the dying coordinator afterwards);
  // then destroy it. The transport object itself survives the crash —
  // it models the reliable channel's persistent dedup/retransmission
  // state (§4.2).
  if (sim_) {
    sim_->network().set_alive(party.id, false);
  } else if (threaded_) {
    threaded_->network().set_alive(party.id, false);
  } else if (tcp_) {
    tcp_->set_alive(party.id, false);
  } else {
    reactor_->set_alive(party.id, false);
  }
  party.transport->set_handler_sync({});
  party.transport->set_delivery_failure_handler({});
  party.coordinator.reset();
}

Coordinator& Federation::recover_party(const std::string& name) {
  const std::size_t index = party_index(name);
  Party& party = *parties_[index];
  if (party.coordinator) {
    throw Error("recover_party: not crashed: " + name);
  }
  if (sim_) {
    sim_->network().set_alive(party.id, true);
  } else if (threaded_) {
    threaded_->network().set_alive(party.id, true);
  } else if (tcp_) {
    tcp_->set_alive(party.id, true);
  } else {
    reactor_->set_alive(party.id, true);
  }
  party.coordinator = std::make_unique<Coordinator>(
      party_config(index), *party.transport, clock(), tss_.get());
  // Re-run the out-of-band PKI exchange for the restarted party: its own
  // certificate directory also comes back via the journal, but the setup
  // keys may predate the first barrier, and the *other* parties' view of
  // this party is refreshed for free.
  for (auto& other : parties_) {
    if (other->id == party.id || !other->coordinator) continue;
    party.coordinator->add_known_party(other->id,
                                       other->coordinator->public_key());
    other->coordinator->add_known_party(party.id,
                                        party.coordinator->public_key());
  }
  return *party.coordinator;
}

const crypto::RsaPrivateKey& Federation::keypair(
    const std::string& name) const {
  for (std::size_t i = 0; i < parties_.size(); ++i) {
    if (parties_[i]->id.str() == name) return shared_keypair(rsa_bits_, i);
  }
  throw Error("unknown party: " + name);
}

Coordinator& Federation::coordinator(const std::string& name) {
  return *find_party(name).coordinator;
}

net::Transport& Federation::transport(const std::string& name) {
  return *find_party(name).transport;
}

net::ReliableEndpoint& Federation::endpoint(const std::string& name) {
  if (!sim_) throw Error("endpoint(): not running on the sim runtime");
  net::ReliableEndpoint* endpoint = sim_->endpoint(find_party(name).id);
  if (endpoint == nullptr) throw Error("unknown party: " + name);
  return *endpoint;
}

Replica& Federation::register_object(const std::string& name,
                                     const ObjectId& object, B2BObject& impl) {
  return coordinator(name).register_object(object, impl);
}

void Federation::bootstrap_object(const ObjectId& object,
                                  const std::vector<std::string>& member_names,
                                  const Bytes& initial_state) {
  std::vector<PartyId> members;
  members.reserve(member_names.size());
  for (const auto& name : member_names) members.emplace_back(name);
  for (const auto& name : member_names) {
    coordinator(name).replica(object).bootstrap(members, initial_state);
  }
}

Controller Federation::make_controller(const std::string& name,
                                       const ObjectId& object,
                                       Controller::Mode mode) {
  return Controller(coordinator(name), executor(), object, mode);
}

bool Federation::run_until_done(const RunHandle& handle) {
  return executor().run_until([&] { return handle->done(); });
}

void Federation::settle() {
  executor().settle();
  if (runtime_ != RuntimeKind::kSim) {
    // Pick up every coordinator's mutex once so the caller's subsequent
    // unlocked reads observe all transport-thread writes.
    for (auto& p : parties_) {
      if (p->coordinator) p->coordinator->synchronize();
    }
  }
}

TerminationTtp& Federation::termination_ttp() {
  if (!termination_ttp_) {
    std::map<PartyId, crypto::RsaPublicKey> keys;
    for (const auto& p : parties_) {
      keys.emplace(p->id, p->coordinator->public_key());
    }
    net::Transport& transport = runtime_impl().add_party(
        PartyId{"termination-ttp"});
    termination_ttp_ = std::make_unique<TerminationTtp>(
        transport, clock(), shared_keypair(rsa_bits_, 998), std::move(keys));
  }
  return *termination_ttp_;
}

void Federation::enable_ttp_termination(const ObjectId& object,
                                        std::uint64_t deadline_micros) {
  TerminationTtp& ttp = termination_ttp();
  for (auto& p : parties_) {
    // Skip crashed parties: a restarted coordinator re-enables TTP
    // termination itself by calling this again after recover_party().
    if (!p->coordinator || !p->coordinator->has_object(object)) continue;
    p->coordinator->enable_ttp_termination(
        object,
        Replica::TtpConfig{ttp.id(), ttp.public_key(), deadline_micros});
  }
}

RunHandle Federation::start_deal(const std::string& name,
                                 DealCoordinator::DealSpec spec) {
  return find_party(name).coordinator->start_deal(std::move(spec));
}

void Federation::enable_deal_escape() {
  TerminationTtp& ttp = termination_ttp();
  for (auto& p : parties_) {
    // Skip crashed parties (recover_party callers re-enable afterwards).
    if (!p->coordinator) continue;
    p->coordinator->deals().enable_ttp_escape(
        DealCoordinator::TtpEscape{ttp.id(), ttp.public_key()});
  }
}

EvidenceVerifier Federation::make_verifier() const {
  std::map<PartyId, crypto::RsaPublicKey> keys;
  for (const auto& p : parties_) {
    keys.emplace(p->id, p->coordinator->public_key());
  }
  return EvidenceVerifier(std::move(keys));
}

}  // namespace b2b::core
