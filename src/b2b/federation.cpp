#include "b2b/federation.hpp"

#include <map>
#include <mutex>

#include "common/error.hpp"

namespace b2b::core {

const crypto::RsaPrivateKey& Federation::shared_keypair(std::size_t bits,
                                                        std::size_t index) {
  static std::mutex mutex;
  static std::map<std::pair<std::size_t, std::size_t>, crypto::RsaPrivateKey>
      cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto key = std::make_pair(bits, index);
  auto it = cache.find(key);
  if (it == cache.end()) {
    crypto::ChaCha20Rng rng(0xfede'0000ULL + bits * 1000 + index);
    it = cache.emplace(key, crypto::generate_rsa_keypair(bits, rng)).first;
  }
  return it->second;
}

Federation::Federation(std::vector<std::string> party_names)
    : Federation(std::move(party_names), Options{}) {}

Federation::Federation(std::vector<std::string> party_names,
                       const Options& options)
    : rsa_bits_(options.rsa_bits) {
  network_ = std::make_unique<net::SimNetwork>(scheduler_, options.seed);
  network_->set_default_faults(options.faults);

  if (options.use_tss) {
    // The TSS gets its own identity (index well away from party keys).
    tss_ = std::make_unique<crypto::TimestampService>(
        shared_keypair(options.rsa_bits, 999),
        [this] { return scheduler_.now(); });
  }

  for (std::size_t i = 0; i < party_names.size(); ++i) {
    auto party = std::make_unique<Party>();
    party->id = PartyId{party_names[i]};
    party->endpoint = std::make_unique<net::ReliableEndpoint>(
        *network_, party->id, options.reliable);
    Coordinator::Config config;
    config.self = party->id;
    config.key = shared_keypair(options.rsa_bits, i);
    config.rng_seed = options.seed * 1000003 + i;
    config.sponsor_policy = options.sponsor_policy;
    config.decision_rule = options.decision_rule;
    party->coordinator = std::make_unique<Coordinator>(
        std::move(config), *party->endpoint, tss_.get());
    parties_.push_back(std::move(party));
  }

  // Shared PKI: every organisation can verify every other's signatures
  // (§4.2: "All parties are assumed to have the means to verify each
  // other's signatures").
  for (auto& a : parties_) {
    for (auto& b : parties_) {
      if (a != b) {
        a->coordinator->add_known_party(b->id,
                                        b->coordinator->public_key());
      }
    }
  }
}

Federation::~Federation() = default;

std::vector<PartyId> Federation::party_ids() const {
  std::vector<PartyId> out;
  out.reserve(parties_.size());
  for (const auto& p : parties_) out.push_back(p->id);
  return out;
}

Federation::Party& Federation::find_party(const std::string& name) {
  for (auto& p : parties_) {
    if (p->id.str() == name) return *p;
  }
  throw Error("unknown party: " + name);
}

const crypto::RsaPrivateKey& Federation::keypair(
    const std::string& name) const {
  for (std::size_t i = 0; i < parties_.size(); ++i) {
    if (parties_[i]->id.str() == name) return shared_keypair(rsa_bits_, i);
  }
  throw Error("unknown party: " + name);
}

Coordinator& Federation::coordinator(const std::string& name) {
  return *find_party(name).coordinator;
}

net::ReliableEndpoint& Federation::endpoint(const std::string& name) {
  return *find_party(name).endpoint;
}

Replica& Federation::register_object(const std::string& name,
                                     const ObjectId& object, B2BObject& impl) {
  return coordinator(name).register_object(object, impl);
}

void Federation::bootstrap_object(const ObjectId& object,
                                  const std::vector<std::string>& member_names,
                                  const Bytes& initial_state) {
  std::vector<PartyId> members;
  members.reserve(member_names.size());
  for (const auto& name : member_names) members.emplace_back(name);
  for (const auto& name : member_names) {
    coordinator(name).replica(object).bootstrap(members, initial_state);
  }
}

Controller Federation::make_controller(const std::string& name,
                                       const ObjectId& object,
                                       Controller::Mode mode) {
  return Controller(coordinator(name), scheduler_, object, mode);
}

bool Federation::run_until_done(const RunHandle& handle) {
  return scheduler_.run_until_condition([&] { return handle->done(); });
}

void Federation::settle() { scheduler_.run(); }

TerminationTtp& Federation::termination_ttp() {
  if (!termination_ttp_) {
    std::map<PartyId, crypto::RsaPublicKey> keys;
    for (const auto& p : parties_) {
      keys.emplace(p->id, p->coordinator->public_key());
    }
    termination_ttp_ = std::make_unique<TerminationTtp>(
        *network_, PartyId{"termination-ttp"}, shared_keypair(rsa_bits_, 998),
        std::move(keys));
  }
  return *termination_ttp_;
}

void Federation::enable_ttp_termination(const ObjectId& object,
                                        std::uint64_t deadline_micros) {
  TerminationTtp& ttp = termination_ttp();
  for (auto& p : parties_) {
    if (!p->coordinator->has_object(object)) continue;
    p->coordinator->enable_ttp_termination(
        object,
        Replica::TtpConfig{ttp.id(), ttp.public_key(), deadline_micros});
  }
}

EvidenceVerifier Federation::make_verifier() const {
  std::map<PartyId, crypto::RsaPublicKey> keys;
  for (const auto& p : parties_) {
    keys.emplace(p->id, p->coordinator->public_key());
  }
  return EvidenceVerifier(std::move(keys));
}

}  // namespace b2b::core
