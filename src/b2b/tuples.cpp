#include "b2b/tuples.hpp"

namespace b2b::core {

void StateTuple::encode_into(wire::Encoder& enc) const {
  enc.u64(sequence)
      .raw(crypto::digest_bytes(rand_hash))
      .raw(crypto::digest_bytes(state_hash));
}

StateTuple StateTuple::decode_from(wire::Decoder& dec) {
  StateTuple t;
  t.sequence = dec.u64();
  t.rand_hash = crypto::digest_from_bytes(dec.raw(32));
  t.state_hash = crypto::digest_from_bytes(dec.raw(32));
  return t;
}

Bytes StateTuple::encode() const {
  wire::Encoder enc;
  encode_into(enc);
  return std::move(enc).take();
}

StateTuple StateTuple::decode(BytesView data) {
  wire::Decoder dec{data};
  StateTuple t = decode_from(dec);
  dec.expect_done();
  return t;
}

std::string StateTuple::label() const {
  // Sequence plus the first 16 bytes of H(r): unique per §4.2 invariant 4.
  return std::to_string(sequence) + ":" +
         to_hex(BytesView(rand_hash.data(), 16));
}

void GroupTuple::encode_into(wire::Encoder& enc) const {
  enc.u64(sequence)
      .raw(crypto::digest_bytes(rand_hash))
      .raw(crypto::digest_bytes(members_hash));
}

GroupTuple GroupTuple::decode_from(wire::Decoder& dec) {
  GroupTuple t;
  t.sequence = dec.u64();
  t.rand_hash = crypto::digest_from_bytes(dec.raw(32));
  t.members_hash = crypto::digest_from_bytes(dec.raw(32));
  return t;
}

Bytes GroupTuple::encode() const {
  wire::Encoder enc;
  encode_into(enc);
  return std::move(enc).take();
}

GroupTuple GroupTuple::decode(BytesView data) {
  wire::Decoder dec{data};
  GroupTuple t = decode_from(dec);
  dec.expect_done();
  return t;
}

std::string GroupTuple::label() const {
  return "g" + std::to_string(sequence) + ":" +
         to_hex(BytesView(rand_hash.data(), 16));
}

crypto::Digest hash_members(const std::vector<PartyId>& members) {
  wire::Encoder enc;
  enc.varint(members.size());
  for (const auto& member : members) enc.str(member.str());
  return crypto::Sha256::hash(enc.bytes());
}

void Decision::encode_into(wire::Encoder& enc) const {
  enc.boolean(accept).str(diagnostic);
}

Decision Decision::decode_from(wire::Decoder& dec) {
  Decision d;
  d.accept = dec.boolean();
  d.diagnostic = dec.str();
  return d;
}

}  // namespace b2b::core
