// CompositeObject: coordinate several application objects as one (§4).
//
// "The discussion is in terms of a single object but applies just as well
// to the use of a composite object to coordinate the states of multiple
// objects." A CompositeObject aggregates named components, each a
// B2BObject in its own right: its state is the ordered list of component
// states, a proposed composite state is valid iff every component's local
// validation accepts its slice, and installation fans out to every
// component. Together with the Controller's scope nesting this gives
// atomic multi-object state transitions.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "b2b/object.hpp"

namespace b2b::core {

class CompositeObject : public B2BObject {
 public:
  CompositeObject() = default;

  /// Register a component. Order matters (it is part of the state
  /// encoding) and must be identical at every party. The caller keeps
  /// ownership; `child` must outlive the composite. Names must be unique.
  /// Throws b2b::Error on duplicates.
  void add_component(std::string name, B2BObject& child);

  std::size_t component_count() const { return components_.size(); }
  /// Component accessor (throws b2b::Error if absent).
  B2BObject& component(const std::string& name);

  // B2BObject:
  Bytes get_state() const override;
  void apply_state(BytesView state) override;
  Decision validate_state(BytesView proposed_state,
                          const ValidationContext& ctx) override;
  Decision validate_connect(const PartyId& subject,
                            const ValidationContext& ctx) override;
  Decision validate_disconnect(const PartyId& subject, bool eviction,
                               const ValidationContext& ctx) override;
  void coord_callback(const CoordEvent& event) override;

 private:
  struct Component {
    std::string name;
    B2BObject* object;
  };
  std::vector<Component> components_;
};

}  // namespace b2b::core
