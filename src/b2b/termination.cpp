#include "b2b/termination.hpp"

#include <set>

#include "b2b/deal_messages.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace b2b::core {

namespace {
constexpr std::uint8_t kTagTerminationRequest = 0x10;
constexpr std::uint8_t kTagTerminationVerdict = 0x11;
}  // namespace

// ---------------------------------------------------------------------------
// TerminationRequest
// ---------------------------------------------------------------------------

namespace {

void encode_request_fields(wire::Encoder& enc, const TerminationRequest& r) {
  enc.str(r.requester.str()).str(r.object.str());
  r.proposed.encode_into(enc);
  enc.boolean(r.propose.has_value());
  if (r.propose.has_value()) enc.blob(r.propose->encode());
  enc.varint(r.responses.size());
  for (const RespondMsg& resp : r.responses) resp.encode_into(enc);
  enc.varint(r.claimed_recipients.size());
  for (const PartyId& p : r.claimed_recipients) enc.str(p.str());
}

}  // namespace

Bytes TerminationRequest::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagTerminationRequest);
  encode_request_fields(enc, *this);
  return std::move(enc).take();
}

Bytes TerminationRequest::encode() const {
  wire::Encoder enc;
  encode_request_fields(enc, *this);
  return std::move(enc).take();
}

Bytes TerminationRequest::encode_with_signature(const Bytes& signature) const {
  wire::Encoder enc;
  encode_request_fields(enc, *this);
  enc.blob(signature);
  return std::move(enc).take();
}

TerminationRequest TerminationRequest::decode_fields(BytesView data,
                                                     Bytes* signature) {
  wire::Decoder dec{data};
  TerminationRequest r;
  r.requester = PartyId{dec.str()};
  r.object = ObjectId{dec.str()};
  r.proposed = StateTuple::decode_from(dec);
  if (dec.boolean()) {
    r.propose = ProposeMsg::decode(dec.blob());
  }
  std::uint64_t n = dec.varint();
  r.responses.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    r.responses.push_back(RespondMsg::decode_from(dec));
  }
  std::uint64_t m = dec.varint();
  r.claimed_recipients.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    r.claimed_recipients.emplace_back(dec.str());
  }
  if (signature != nullptr) *signature = dec.blob();
  dec.expect_done();
  return r;
}

// ---------------------------------------------------------------------------
// TerminationVerdict
// ---------------------------------------------------------------------------

namespace {

void encode_verdict_fields(wire::Encoder& enc, const TerminationVerdict& v) {
  enc.u8(static_cast<std::uint8_t>(v.kind)).str(v.object.str());
  v.proposed.encode_into(enc);
  enc.boolean(v.agreed);
  enc.varint(v.responses.size());
  for (const RespondMsg& resp : v.responses) resp.encode_into(enc);
  enc.u64(v.time_micros);
}

}  // namespace

Bytes TerminationVerdict::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagTerminationVerdict);
  encode_verdict_fields(enc, *this);
  return std::move(enc).take();
}

Bytes TerminationVerdict::encode_with_signature(const Bytes& signature) const {
  wire::Encoder enc;
  encode_verdict_fields(enc, *this);
  enc.blob(signature);
  return std::move(enc).take();
}

TerminationVerdict TerminationVerdict::decode_fields(BytesView data,
                                                     Bytes* signature) {
  wire::Decoder dec{data};
  TerminationVerdict v;
  std::uint8_t kind = dec.u8();
  if (kind != 1 && kind != 2) throw CodecError("verdict: bad kind");
  v.kind = static_cast<Kind>(kind);
  v.object = ObjectId{dec.str()};
  v.proposed = StateTuple::decode_from(dec);
  v.agreed = dec.boolean();
  std::uint64_t n = dec.varint();
  v.responses.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    v.responses.push_back(RespondMsg::decode_from(dec));
  }
  v.time_micros = dec.u64();
  if (signature != nullptr) *signature = dec.blob();
  dec.expect_done();
  return v;
}

// ---------------------------------------------------------------------------
// TerminationTtp
// ---------------------------------------------------------------------------

TerminationTtp::TerminationTtp(
    net::Transport& transport, net::Clock& clock, crypto::RsaPrivateKey key,
    std::map<PartyId, crypto::RsaPublicKey> party_keys)
    : transport_(transport),
      clock_(clock),
      id_(transport.self()),
      key_(std::move(key)),
      party_keys_(std::move(party_keys)) {
  transport_.set_handler([this](const PartyId& from, const Bytes& payload) {
    on_message(from, payload);
  });
}

void TerminationTtp::add_party_key(const PartyId& party,
                                   crypto::RsaPublicKey key) {
  std::lock_guard<std::mutex> lock(mutex_);
  party_keys_[party] = std::move(key);
}

void TerminationTtp::on_message(const PartyId& from, const Bytes& payload) {
  // Locking context (DESIGN.md §9): the TTP sits outside the coordinator's
  // shard structure. On the real-thread runtimes requests for *different*
  // objects arrive concurrently from different parties' shard lanes; one
  // TTP-wide mutex (not per-object) is deliberate — the verdict cache in
  // verdict_for is keyed by run label, and holding the lock across
  // lookup+issue is what makes concurrent duplicate submissions (recovery
  // re-fetches from several recovering parties at once) resolve to a
  // single verdict instead of racing to issue two.
  std::lock_guard<std::mutex> lock(mutex_);
  Envelope envelope;
  try {
    envelope = Envelope::decode(payload);
  } catch (const CodecError& e) {
    B2B_DEBUG("ttp: undecodable envelope from ", from, ": ", e.what());
    return;
  }
  if (envelope.type == MsgType::kDealTerminationRequest) {
    DealTerminationRequest request;
    Bytes signature;
    try {
      request = DealTerminationRequest::decode_fields(envelope.body,
                                                      &signature);
    } catch (const CodecError& e) {
      B2B_DEBUG("ttp: undecodable deal request from ", from, ": ", e.what());
      return;
    }
    if (request.requester != from) return;
    auto key_it = party_keys_.find(from);
    if (key_it == party_keys_.end() ||
        !key_it->second.verify(request.signed_bytes(), signature)) {
      B2B_DEBUG("ttp: badly signed deal request from ", from);
      return;
    }
    Envelope out;
    out.type = MsgType::kDealTerminationVerdict;
    out.object = envelope.object;
    out.body = deal_verdict_for(request);
    transport_.send(from, out.encode());
    return;
  }
  if (envelope.type != MsgType::kTerminationRequest) return;
  TerminationRequest request;
  Bytes signature;
  try {
    request = TerminationRequest::decode_fields(envelope.body, &signature);
  } catch (const CodecError& e) {
    B2B_DEBUG("ttp: undecodable request from ", from, ": ", e.what());
    return;
  }
  if (request.requester != from) return;
  auto key_it = party_keys_.find(from);
  if (key_it == party_keys_.end() ||
      !key_it->second.verify(request.signed_bytes(), signature)) {
    B2B_DEBUG("ttp: badly signed request from ", from);
    return;
  }

  const Bytes& verdict_body = verdict_for(request);
  Envelope out;
  out.type = MsgType::kTerminationVerdict;
  out.object = request.object;
  out.body = verdict_body;
  transport_.send(from, out.encode());
}

const Bytes& TerminationTtp::verdict_for(const TerminationRequest& request) {
  const std::string label = request.proposed.label();
  auto cached = verdicts_.find(label);
  if (cached != verdicts_.end()) return cached->second;

  TerminationVerdict verdict;
  verdict.object = request.object;
  verdict.proposed = request.proposed;
  verdict.time_micros = clock_.now_micros();

  bool agreed = false;
  if (transcript_complete_and_valid(request, &agreed)) {
    verdict.kind = TerminationVerdict::Kind::kDecision;
    verdict.agreed = agreed;
    verdict.responses = request.responses;
    ++decisions_issued_;
  } else {
    verdict.kind = TerminationVerdict::Kind::kAbort;
    ++aborts_issued_;
  }
  Bytes body =
      verdict.encode_with_signature(key_.sign(verdict.signed_bytes()));
  auto [it, inserted] = verdicts_.emplace(label, std::move(body));
  (void)inserted;
  verdict_info_[label] = RunVerdictInfo{verdict.kind, verdict.agreed};
  B2B_INFO("ttp: certified ",
           verdict.kind == TerminationVerdict::Kind::kAbort ? "ABORT"
                                                            : "DECISION",
           " for run ", label);
  return it->second;
}

const Bytes& TerminationTtp::deal_verdict_for(
    const DealTerminationRequest& request) {
  auto cached = deal_verdicts_.find(request.deal_id);
  if (cached != deal_verdicts_.end()) return cached->second;

  // Commit iff every leg presents a complete, valid, unanimously-agreeing
  // transcript — or already carries a cached certified decision with
  // agreement — and no leg has a cached abort. A cached abort means a
  // parked participant escaped first (§7 responder referral): the deal
  // must abort to stay consistent with the answer that participant was
  // already given. Decided and recorded under the one TTP mutex, together
  // with the per-run cache writes below, so every later per-run referral
  // for any leg sees a verdict consistent with the deal outcome.
  bool commit = !request.legs.empty();
  for (const TerminationRequest& leg : request.legs) {
    if (leg.requester != request.requester) {
      commit = false;
      break;
    }
    auto info = verdict_info_.find(leg.proposed.label());
    if (info != verdict_info_.end()) {
      if (info->second.kind != TerminationVerdict::Kind::kDecision ||
          !info->second.agreed) {
        commit = false;
        break;
      }
      continue;
    }
    bool agreed = false;
    if (!transcript_complete_and_valid(leg, &agreed) || !agreed) {
      commit = false;
      break;
    }
  }

  DealTerminationVerdict verdict;
  verdict.deal_id = request.deal_id;
  verdict.verdict = commit ? 1 : 2;
  verdict.time_micros = clock_.now_micros();
  for (const TerminationRequest& leg : request.legs) {
    const std::string label = leg.proposed.label();
    auto it = verdicts_.find(label);
    if (it == verdicts_.end()) {
      TerminationVerdict run;
      run.object = leg.object;
      run.proposed = leg.proposed;
      run.time_micros = verdict.time_micros;
      if (commit) {
        run.kind = TerminationVerdict::Kind::kDecision;
        run.agreed = true;
        run.responses = leg.responses;
        ++decisions_issued_;
      } else {
        run.kind = TerminationVerdict::Kind::kAbort;
        ++aborts_issued_;
      }
      Bytes body = run.encode_with_signature(key_.sign(run.signed_bytes()));
      it = verdicts_.emplace(label, std::move(body)).first;
      verdict_info_[label] = RunVerdictInfo{run.kind, run.agreed};
    }
    verdict.leg_verdicts.push_back(it->second);
  }
  if (commit) {
    ++deal_commits_issued_;
  } else {
    ++deal_aborts_issued_;
  }
  Bytes body =
      verdict.encode_with_signature(key_.sign(verdict.signed_bytes()));
  auto [it, inserted] = deal_verdicts_.emplace(request.deal_id,
                                               std::move(body));
  (void)inserted;
  B2B_INFO("ttp: certified deal ", commit ? "COMMIT" : "ABORT", " for ",
           request.deal_id, " (", request.legs.size(), " legs)");
  return it->second;
}

bool TerminationTtp::transcript_complete_and_valid(
    const TerminationRequest& request, bool* agreed) const {
  if (!request.propose.has_value() || request.claimed_recipients.empty()) {
    return false;
  }
  const Proposal& prop = request.propose->proposal;
  if (prop.proposed != request.proposed || prop.object != request.object) {
    return false;
  }
  auto proposer_key = party_keys_.find(prop.proposer);
  if (proposer_key == party_keys_.end() ||
      !proposer_key->second.verify(prop.signed_bytes(),
                                   request.propose->signature)) {
    return false;
  }
  if (crypto::Sha256::hash(request.propose->payload) != prop.payload_hash) {
    return false;
  }

  std::set<PartyId> responders;
  std::size_t consistent_accepts = 0;
  for (const RespondMsg& resp_msg : request.responses) {
    const Response& resp = resp_msg.response;
    auto key_it = party_keys_.find(resp.responder);
    if (key_it == party_keys_.end() ||
        !key_it->second.verify(resp.signed_bytes(), resp_msg.signature)) {
      return false;
    }
    if (resp.proposed != prop.proposed) return false;
    if (!responders.insert(resp.responder).second) return false;
    if (resp.decision.accept && resp.agreed_view == prop.agreed &&
        resp.current_view == prop.agreed && resp.group_view == prop.group &&
        resp.payload_integrity == prop.payload_hash) {
      ++consistent_accepts;
    }
  }
  for (const PartyId& recipient : request.claimed_recipients) {
    if (!responders.contains(recipient)) return false;  // incomplete
  }
  // The TTP certifies the *unanimous* outcome of the complete set; parties
  // configured with the majority rule recompute from the certified
  // responses themselves.
  *agreed = consistent_accepts == request.claimed_recipients.size();
  return true;
}

}  // namespace b2b::core
