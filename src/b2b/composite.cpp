#include "b2b/composite.hpp"

#include "common/error.hpp"
#include "wire/codec.hpp"

namespace b2b::core {

void CompositeObject::add_component(std::string name, B2BObject& child) {
  for (const Component& existing : components_) {
    if (existing.name == name) {
      throw Error("composite: duplicate component " + name);
    }
  }
  components_.push_back(Component{std::move(name), &child});
}

B2BObject& CompositeObject::component(const std::string& name) {
  for (Component& c : components_) {
    if (c.name == name) return *c.object;
  }
  throw Error("composite: no such component " + name);
}

Bytes CompositeObject::get_state() const {
  wire::Encoder enc;
  enc.varint(components_.size());
  for (const Component& c : components_) {
    enc.str(c.name).blob(c.object->get_state());
  }
  return std::move(enc).take();
}

namespace {

/// Decode a composite state against an expected component list. Returns
/// the per-component slices, or throws CodecError on any mismatch.
std::vector<Bytes> decode_slices(
    BytesView state, const std::vector<std::string>& expected_names) {
  wire::Decoder dec{state};
  std::uint64_t count = dec.varint();
  if (count != expected_names.size()) {
    throw CodecError("composite: component count mismatch");
  }
  std::vector<Bytes> slices;
  slices.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = dec.str();
    if (name != expected_names[i]) {
      throw CodecError("composite: component name mismatch at index " +
                       std::to_string(i) + " (" + name + ")");
    }
    slices.push_back(dec.blob());
  }
  dec.expect_done();
  return slices;
}

}  // namespace

void CompositeObject::apply_state(BytesView state) {
  std::vector<std::string> names;
  names.reserve(components_.size());
  for (const Component& c : components_) names.push_back(c.name);
  std::vector<Bytes> slices = decode_slices(state, names);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i].object->apply_state(slices[i]);
  }
}

Decision CompositeObject::validate_state(BytesView proposed_state,
                                         const ValidationContext& ctx) {
  std::vector<std::string> names;
  names.reserve(components_.size());
  for (const Component& c : components_) names.push_back(c.name);
  std::vector<Bytes> slices;
  try {
    slices = decode_slices(proposed_state, names);
  } catch (const CodecError& e) {
    return Decision::rejected(std::string("composite: ") + e.what());
  }
  for (std::size_t i = 0; i < components_.size(); ++i) {
    Decision d = components_[i].object->validate_state(slices[i], ctx);
    if (!d.accept) {
      return Decision::rejected("component '" + components_[i].name +
                                "': " + d.diagnostic);
    }
  }
  return Decision::accepted();
}

Decision CompositeObject::validate_connect(const PartyId& subject,
                                           const ValidationContext& ctx) {
  for (const Component& c : components_) {
    Decision d = c.object->validate_connect(subject, ctx);
    if (!d.accept) {
      return Decision::rejected("component '" + c.name + "': " + d.diagnostic);
    }
  }
  return Decision::accepted();
}

Decision CompositeObject::validate_disconnect(const PartyId& subject,
                                              bool eviction,
                                              const ValidationContext& ctx) {
  for (const Component& c : components_) {
    Decision d = c.object->validate_disconnect(subject, eviction, ctx);
    if (!d.accept) {
      return Decision::rejected("component '" + c.name + "': " + d.diagnostic);
    }
  }
  return Decision::accepted();
}

void CompositeObject::coord_callback(const CoordEvent& event) {
  for (const Component& c : components_) c.object->coord_callback(event);
}

}  // namespace b2b::core
