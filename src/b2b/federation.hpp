// Federation: a ready-made multi-organisation deployment harness.
//
// Assembles everything a B2BObjects deployment needs — a runtime bundle
// (clock, per-party transports, an executor to drive progress), a trusted
// time-stamping service, one Coordinator per organisation with a shared
// PKI — and provides the out-of-band genesis step that stands in for the
// initial business agreement between organisations. Tests, examples and
// benches all build on this instead of re-plumbing the stack.
//
// Three runtimes are available (Options::runtime):
//  * RuntimeKind::kSim      — the deterministic discrete-event stack
//    (net::SimRuntime). Seeded runs reproduce bit-for-bit; the
//    simulator-only instruments (partitions, Dolev-Yao intruder,
//    virtual-time stepping) are reachable via scheduler()/network()/
//    endpoint().
//  * RuntimeKind::kThreaded — every party's transport runs on real OS
//    threads over an in-process lossy channel (net::ThreadedRuntime); the
//    clock is real time. scheduler()/network()/endpoint() throw here —
//    use transport()/threaded_network() instead.
//  * RuntimeKind::kTcp      — every party's transport speaks real TCP on
//    localhost (net::TcpRuntime): kernel sockets, framing, reconnects.
//    The cross-process deployment (one coordinator per OS process, wired
//    by a PeerDirectory) lives in examples/b2bnode.cpp; the in-process
//    variant here lets the full protocol suites run over real sockets.
//  * RuntimeKind::kReactor  — same TCP wire protocol, but every party is
//    hosted on ONE epoll loop with a timer wheel and a bounded executor
//    pool (net::ReactorRuntime): thread count stays flat no matter how
//    many parties/connections the federation holds (DESIGN.md §10).
//    Coordinator shard lanes run as strands on the shared pool.
//
// The Federation itself never constructs a concrete substrate; all
// protocol-layer plumbing goes through the abstract Runtime seam.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "b2b/controller.hpp"
#include "b2b/termination.hpp"
#include "b2b/coordinator.hpp"
#include "crypto/timestamp.hpp"
#include "net/reactor_runtime.hpp"
#include "net/sim_runtime.hpp"
#include "net/tcp_runtime.hpp"
#include "net/threaded_runtime.hpp"

namespace b2b::core {

/// Which substrate a Federation assembles its parties on.
enum class RuntimeKind { kSim, kThreaded, kTcp, kReactor };

class Federation {
 public:
  struct Options {
    /// RSA modulus size for every party (512 keeps simulations fast;
    /// benches may use 1024/2048).
    std::size_t rsa_bits = 512;
    /// Master seed: all randomness (keys aside) derives from it.
    std::uint64_t seed = 1;
    /// Runtime substrate: deterministic simulator or real threads.
    RuntimeKind runtime = RuntimeKind::kSim;
    /// Default link fault model (sim runtime).
    net::LinkFaults faults{};
    /// Reliable-channel configuration (sim runtime).
    net::ReliableEndpoint::Config reliable{};
    /// Fault model of the in-process channel (threaded runtime).
    net::ThreadedFaults threaded_faults{};
    /// Transport configuration (threaded runtime).
    net::ThreadedTransport::Config threaded_transport{};
    /// Executor configuration (threaded and tcp runtimes).
    net::ThreadedExecutor::Config threaded_executor{};
    /// Fault model injected at the socket layer (tcp runtime).
    net::TcpFaults tcp_faults{};
    /// Transport configuration (tcp runtime).
    net::TcpTransport::Config tcp_transport{};
    /// Party address book (tcp and reactor runtimes). Leave null for a
    /// fresh directory of localhost ephemeral ports; pass one to pin
    /// addresses.
    std::shared_ptr<net::PeerDirectory> tcp_directory;
    /// Wire v3 session authentication (tcp and reactor runtimes): every
    /// transport derives fresh per-connection per-direction MAC keys at
    /// each handshake (wire_auth.hpp), built on the federation's shared
    /// keypair pool — the same PKI the coordinators already sign with.
    /// Parties key by roster index; the termination TTP is covered too.
    bool wire_auth = false;
    /// Fault model injected at the socket layer (reactor runtime).
    net::TcpFaults reactor_faults{};
    /// Transport configuration (reactor runtime).
    net::ReactorTransport::Config reactor_transport{};
    /// Executor pool width (reactor runtime): deliveries, shard-lane
    /// dispatch and clock callbacks all share these workers.
    std::size_t reactor_workers = 4;
    /// Provide a trusted time-stamping service to all parties.
    bool use_tss = true;
    /// Sponsor selection policy applied federation-wide.
    SponsorPolicy sponsor_policy = SponsorPolicy::kRotating;
    /// Group decision rule applied federation-wide.
    DecisionRule decision_rule = DecisionRule::kUnanimous;
    /// Root directory for per-party write-ahead journals (each party
    /// journals into `<journal_root>/<party name>`). Empty disables
    /// journaling — and with it crash_party()/recover_party() recovery.
    std::string journal_root;
    /// Honour journal barriers with a real fsync (bench knob).
    bool journal_fsync = true;
    /// In-flight-run probe cadence (see Coordinator::Config).
    std::uint64_t run_probe_interval_micros = 1'000'000;
    int max_run_probes = 12;
    /// Coordinator shard locking (see Coordinator::LockMode). kCoarse
    /// reproduces the pre-shard single-lock contention profile — the
    /// baseline for the sharding bench and equivalence suite.
    Coordinator::LockMode lock_mode = Coordinator::LockMode::kPerObject;
    /// Per-object dispatch lanes (strands). Applied on the threaded,
    /// tcp and reactor runtimes — the sim stays single-threaded and
    /// inline, so seeded runs reproduce bit-for-bit. On the reactor
    /// runtime the lanes are strands on the shared executor pool (no
    /// lane threads); elsewhere each lane owns a thread. The federation
    /// registers a lane-idle quiescence probe per party with the
    /// runtime, so settle() keeps meaning "nothing left to do anywhere".
    bool shard_lanes = true;
    /// Run pipelining (DESIGN.md §13): enables propagate_batch at every
    /// party, batched decide-signature verification with a verified-
    /// signature cache, and periodic signed evidence-chain anchors.
    bool pipeline = false;
    /// Signed evidence-chain anchor cadence (records per anchor); 0
    /// picks the default (8) when pipeline is on.
    std::uint64_t evidence_anchor_interval = 0;
  };

  /// Create a federation of the named organisations.
  explicit Federation(std::vector<std::string> party_names);
  Federation(std::vector<std::string> party_names, const Options& options);
  ~Federation();

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  // --- infrastructure access ---------------------------------------------------

  RuntimeKind runtime() const { return runtime_; }

  /// The abstract runtime every party shares.
  net::Clock& clock();
  net::Executor& executor();

  /// Simulator-only instruments. Throw b2b::Error on the threaded runtime.
  net::EventScheduler& scheduler();
  net::SimNetwork& network();

  /// Threaded-only fabric (crash/recovery, fault injection). Throws
  /// b2b::Error on the sim runtime.
  net::ThreadedNetwork& threaded_network();

  /// Tcp-only runtime bundle (ports, fault counters, per-party
  /// transports). Throws b2b::Error on the other runtimes.
  net::TcpRuntime& tcp_runtime();

  /// Reactor-only runtime bundle (epoll loop, wheel, executor pool).
  /// Throws b2b::Error on the other runtimes.
  net::ReactorRuntime& reactor_runtime();

  const crypto::TimestampService* tss() const { return tss_.get(); }

  // --- parties --------------------------------------------------------------------

  std::size_t size() const { return parties_.size(); }
  std::vector<PartyId> party_ids() const;
  Coordinator& coordinator(const std::string& name);

  // --- crash / recovery fabric --------------------------------------------------

  /// Kill a party's coordinator as a process crash would: the node is
  /// marked dead on the network fabric (frames sent to it during the
  /// downtime are dropped un-acked and will be retransmitted), the
  /// transport handler is detached synchronously, and the Coordinator is
  /// destroyed. The transport itself — and with it the reliable channel's
  /// dedup/retransmission state, which the paper's model keeps in
  /// persistent storage — survives.
  void crash_party(const std::string& name);

  /// Restart a crashed party: the node rejoins the fabric and a fresh
  /// Coordinator is built from the same per-party configuration. With
  /// Options::journal_root set, its constructor replays the journal;
  /// callers then re-register objects and call resume_recovered_runs().
  Coordinator& recover_party(const std::string& name);

  /// The party's transport, whatever the runtime. Misbehaviour tests that
  /// hijack a party use this (set_handler + send work on both runtimes).
  net::Transport& transport(const std::string& name);

  /// Simulator-only: the raw reliable endpoint under the transport.
  /// Throws b2b::Error on the threaded runtime.
  net::ReliableEndpoint& endpoint(const std::string& name);

  /// Process-wide deterministic keypair pool (keys are expensive; reusing
  /// them across federations keeps tests and benches fast).
  static const crypto::RsaPrivateKey& shared_keypair(std::size_t bits,
                                                     std::size_t index);

  /// The keypair assigned to a party. Intended for misbehaviour tests that
  /// need to *play* a dishonest-but-properly-keyed organisation; a real
  /// deployment never shares private keys.
  const crypto::RsaPrivateKey& keypair(const std::string& name) const;

  // --- object setup ------------------------------------------------------------------

  /// Register `impl` as `name`'s replica implementation of `object`.
  Replica& register_object(const std::string& name, const ObjectId& object,
                           B2BObject& impl);

  /// Genesis: bootstrap `object` at every listed party (join order =
  /// list order) with the given initial state. All listed parties must
  /// have registered the object first.
  void bootstrap_object(const ObjectId& object,
                        const std::vector<std::string>& member_names,
                        const Bytes& initial_state);

  /// Convenience: a Controller for `name`'s view of `object`.
  Controller make_controller(const std::string& name, const ObjectId& object,
                             Controller::Mode mode = Controller::Mode::kSync);

  // --- runtime driving ----------------------------------------------------------

  /// Make progress until `handle` completes; returns false if the
  /// progress budget (event budget / real-time timeout) ran out first
  /// (the run is blocked).
  bool run_until_done(const RunHandle& handle);

  /// Make progress until the deployment is quiescent. On the real-thread
  /// runtimes this additionally synchronises with every coordinator, so
  /// state read afterwards is up to date.
  void settle();

  /// An EvidenceVerifier loaded with every party's public key.
  EvidenceVerifier make_verifier() const;

  // --- TTP-certified termination (§7 extension) -------------------------------

  /// The federation's termination TTP (created on first use, attached to
  /// the runtime under the id "termination-ttp" with every party's key).
  TerminationTtp& termination_ttp();

  /// Enable deadline-based certified termination of `object` at every
  /// party (deadline in microseconds of the federation's clock).
  void enable_ttp_termination(const ObjectId& object,
                              std::uint64_t deadline_micros);

  // --- deals (DESIGN.md §12) ----------------------------------------------------

  /// Start a multi-object deal with `name` as initiator.
  RunHandle start_deal(const std::string& name,
                       DealCoordinator::DealSpec spec);

  /// Route every party's deal commits through atomic TTP registration
  /// (creates the federation TTP on first use). Typically paired with
  /// enable_ttp_termination on the leg objects so parked participants
  /// have their own escape.
  void enable_deal_escape();

 private:
  struct Party {
    PartyId id;
    net::Transport* transport = nullptr;  // owned by the runtime bundle
    std::unique_ptr<Coordinator> coordinator;
  };

  Party& find_party(const std::string& name);
  std::size_t party_index(const std::string& name) const;
  net::Runtime& runtime_impl();
  /// The Coordinator::Config party `index` was (and on recovery, is
  /// again) constructed with.
  Coordinator::Config party_config(std::size_t index) const;

  Options options_;
  std::unique_ptr<crypto::TimestampService> tss_;  // refs the runtime clock
  std::vector<std::unique_ptr<Party>> parties_;
  std::unique_ptr<TerminationTtp> termination_ttp_;
  // Declared last, destroyed first: every runtime thread (transport
  // receivers/retransmitters, clock timer) stops before the coordinators
  // and TTP those threads deliver into die. Exactly one is non-null.
  std::unique_ptr<net::SimRuntime> sim_;
  std::unique_ptr<net::ThreadedRuntime> threaded_;
  std::unique_ptr<net::TcpRuntime> tcp_;
  std::unique_ptr<net::ReactorRuntime> reactor_;

  RuntimeKind runtime_ = RuntimeKind::kSim;
  std::size_t rsa_bits_ = 512;
};

}  // namespace b2b::core
