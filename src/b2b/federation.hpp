// Federation: a ready-made multi-organisation deployment harness.
//
// Assembles everything a B2BObjects deployment needs — virtual-time
// scheduler, simulated network, reliable endpoints, a trusted
// time-stamping service, one Coordinator per organisation with a shared
// PKI — and provides the out-of-band genesis step that stands in for the
// initial business agreement between organisations. Tests, examples and
// benches all build on this instead of re-plumbing the stack.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "b2b/controller.hpp"
#include "b2b/termination.hpp"
#include "b2b/coordinator.hpp"
#include "crypto/timestamp.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "net/scheduler.hpp"

namespace b2b::core {

class Federation {
 public:
  struct Options {
    /// RSA modulus size for every party (512 keeps simulations fast;
    /// benches may use 1024/2048).
    std::size_t rsa_bits = 512;
    /// Master seed: all randomness (keys aside) derives from it.
    std::uint64_t seed = 1;
    /// Default link fault model.
    net::LinkFaults faults{};
    /// Reliable-channel configuration (retransmit interval etc.).
    net::ReliableEndpoint::Config reliable{};
    /// Provide a trusted time-stamping service to all parties.
    bool use_tss = true;
    /// Sponsor selection policy applied federation-wide.
    SponsorPolicy sponsor_policy = SponsorPolicy::kRotating;
    /// Group decision rule applied federation-wide.
    DecisionRule decision_rule = DecisionRule::kUnanimous;
  };

  /// Create a federation of the named organisations.
  explicit Federation(std::vector<std::string> party_names);
  Federation(std::vector<std::string> party_names, const Options& options);
  ~Federation();

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  // --- infrastructure access ---------------------------------------------------

  net::EventScheduler& scheduler() { return scheduler_; }
  net::SimNetwork& network() { return *network_; }
  const crypto::TimestampService* tss() const { return tss_.get(); }

  // --- parties --------------------------------------------------------------------

  std::size_t size() const { return parties_.size(); }
  std::vector<PartyId> party_ids() const;
  Coordinator& coordinator(const std::string& name);
  net::ReliableEndpoint& endpoint(const std::string& name);

  /// Process-wide deterministic keypair pool (keys are expensive; reusing
  /// them across federations keeps tests and benches fast).
  static const crypto::RsaPrivateKey& shared_keypair(std::size_t bits,
                                                     std::size_t index);

  /// The keypair assigned to a party. Intended for misbehaviour tests that
  /// need to *play* a dishonest-but-properly-keyed organisation; a real
  /// deployment never shares private keys.
  const crypto::RsaPrivateKey& keypair(const std::string& name) const;

  // --- object setup ------------------------------------------------------------------

  /// Register `impl` as `name`'s replica implementation of `object`.
  Replica& register_object(const std::string& name, const ObjectId& object,
                           B2BObject& impl);

  /// Genesis: bootstrap `object` at every listed party (join order =
  /// list order) with the given initial state. All listed parties must
  /// have registered the object first.
  void bootstrap_object(const ObjectId& object,
                        const std::vector<std::string>& member_names,
                        const Bytes& initial_state);

  /// Convenience: a Controller for `name`'s view of `object`.
  Controller make_controller(const std::string& name, const ObjectId& object,
                             Controller::Mode mode = Controller::Mode::kSync);

  // --- simulation driving ----------------------------------------------------------

  /// Run until `handle` completes; returns false if the simulation went
  /// idle or the event budget ran out first (the run is blocked).
  bool run_until_done(const RunHandle& handle);

  /// Run until no events remain (the network has gone quiet).
  void settle();

  /// An EvidenceVerifier loaded with every party's public key.
  EvidenceVerifier make_verifier() const;

  // --- TTP-certified termination (§7 extension) -------------------------------

  /// The federation's termination TTP (created on first use, attached to
  /// the network under the id "termination-ttp" with every party's key).
  TerminationTtp& termination_ttp();

  /// Enable deadline-based certified termination of `object` at every
  /// party (deadline in virtual microseconds).
  void enable_ttp_termination(const ObjectId& object,
                              std::uint64_t deadline_micros);

 private:
  struct Party {
    PartyId id;
    std::unique_ptr<net::ReliableEndpoint> endpoint;
    std::unique_ptr<Coordinator> coordinator;
  };

  Party& find_party(const std::string& name);

  net::EventScheduler scheduler_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<crypto::TimestampService> tss_;
  std::unique_ptr<TerminationTtp> termination_ttp_;
  std::vector<std::unique_ptr<Party>> parties_;
  std::size_t rsa_bits_ = 512;
};

}  // namespace b2b::core
