#include "b2b/arbiter.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace b2b::core {

std::optional<RunTranscript> Arbiter::reconstruct(
    const store::MessageStore& messages, const std::string& run_label) {
  RunTranscript transcript;
  bool have_propose = false;
  std::set<PartyId> responders_seen;

  for (const auto& stored : messages.run(run_label)) {
    try {
      if (stored.kind == "propose" && !have_propose) {
        transcript.propose = ProposeMsg::decode(stored.payload);
        have_propose = true;
      } else if (stored.kind == "respond") {
        RespondMsg resp = RespondMsg::decode(stored.payload);
        // Keep the first copy per responder (later equivocations are
        // separate evidence, not part of the canonical transcript).
        if (responders_seen.insert(resp.response.responder).second) {
          transcript.responses.push_back(std::move(resp));
        }
      } else if (stored.kind == "decide" && !transcript.decide.has_value()) {
        transcript.decide = DecideMsg::decode(stored.payload);
      }
    } catch (const CodecError&) {
      // Undecodable stored bytes: skip; the verifier will flag any gap.
    }
  }
  if (!have_propose) return std::nullopt;
  // Prefer the responses aggregated in the decide when the local store
  // lacks direct copies (responders only hold their own response).
  if (transcript.decide.has_value()) {
    for (const RespondMsg& resp : transcript.decide->responses) {
      if (responders_seen.insert(resp.response.responder).second) {
        transcript.responses.push_back(resp);
      }
    }
  }
  return transcript;
}

ArbitrationReport Arbiter::arbitrate(
    const store::MessageStore& messages, const std::string& run_label,
    const std::vector<PartyId>* expected_recipients) const {
  ArbitrationReport report;
  std::optional<RunTranscript> transcript =
      reconstruct(messages, run_label);
  if (!transcript.has_value()) {
    report.ruling = "no proposal on record for run " + run_label +
                    ": nothing to arbitrate";
    return report;
  }
  report.proposal_found = true;
  report.decide_found = transcript->decide.has_value();
  report.verdict =
      verifier_.verify_state_run(*transcript, expected_recipients);

  const Proposal& prop = transcript->propose.proposal;
  std::string who = prop.proposer.str();
  if (report.verdict.agreed) {
    report.ruling = "run " + run_label + ": state proposed by " + who +
                    " was unanimously agreed; evidence intact; the state "
                    "identified by the proposal is VALID";
  } else if (!report.verdict.vetoers.empty() && report.verdict.evidence_intact) {
    std::string vetoers;
    for (const PartyId& v : report.verdict.vetoers) {
      if (!vetoers.empty()) vetoers += ", ";
      vetoers += v.str();
    }
    report.ruling = "run " + run_label + ": state proposed by " + who +
                    " was vetoed by " + vetoers +
                    "; evidence intact; the state is INVALID";
  } else if (!report.decide_found) {
    report.ruling = "run " + run_label + ": proposed by " + who +
                    " but no decision message is on record; the run is "
                    "INCOMPLETE and the state cannot be shown valid";
  } else {
    report.ruling = "run " + run_label + ": evidence is NOT intact (" +
                    std::to_string(report.verdict.violations.size()) +
                    " defect(s)); the state cannot be shown valid";
  }
  return report;
}

Arbiter::DealArbitrationReport Arbiter::arbitrate_deal(
    const store::MessageStore& messages, const std::string& leg_label,
    const std::map<PartyId, crypto::RsaPublicKey>& keys,
    const std::vector<PartyId>* expected_recipients) const {
  DealArbitrationReport report;
  auto blame = [&report](const PartyId& who, std::string what) {
    report.violations.push_back(std::move(what));
    if (std::find(report.blamed.begin(), report.blamed.end(), who) ==
        report.blamed.end()) {
      report.blamed.push_back(who);
    }
  };
  auto key_of = [&keys](const PartyId& party) -> const crypto::RsaPublicKey* {
    auto it = keys.find(party);
    return it == keys.end() ? nullptr : &it->second;
  };

  // Collect the distinct signed deal artifacts stored under the leg.
  std::vector<DealEnlistMsg> enlists;
  std::vector<DealDecisionMsg> decisions;
  for (const auto& stored : messages.run(leg_label)) {
    try {
      if (stored.kind == "deal.enlist") {
        DealEnlistMsg msg = DealEnlistMsg::decode(stored.payload);
        if (std::find(enlists.begin(), enlists.end(), msg) == enlists.end()) {
          enlists.push_back(std::move(msg));
        }
      } else if (stored.kind == "deal.decision") {
        DealDecisionMsg msg = DealDecisionMsg::decode(stored.payload);
        if (std::find(decisions.begin(), decisions.end(), msg) ==
            decisions.end()) {
          decisions.push_back(std::move(msg));
        }
      }
    } catch (const CodecError&) {
      report.violations.push_back("undecodable stored deal message on run " +
                                  leg_label);
    }
  }

  // The enlist: exactly one verified announcement binding this leg.
  std::optional<PartyId> initiator;
  std::string deal_id;
  for (const DealEnlistMsg& msg : enlists) {
    const DealProposal& proposal = msg.proposal;
    const crypto::RsaPublicKey* pub = key_of(proposal.initiator);
    if (pub == nullptr ||
        !pub->verify(proposal.signed_bytes(), msg.signature)) {
      report.violations.push_back("deal enlist with bad signature on run " +
                                  leg_label);
      continue;
    }
    const bool covers_leg = std::any_of(
        proposal.legs.begin(), proposal.legs.end(),
        [&](const DealLeg& leg) { return leg.proposed.label() == leg_label; });
    if (!covers_leg) {
      blame(proposal.initiator,
            "signed deal enlist does not cover run " + leg_label);
      continue;
    }
    if (!report.enlist_found) {
      report.enlist_found = true;
      initiator = proposal.initiator;
      deal_id = proposal.deal_id;
    } else {
      // A second, different, validly signed enlist binding the same run:
      // the initiator showed different deal views to different parties.
      report.equivocation = true;
      blame(proposal.initiator,
            "equivocating deal enlists bind run " + leg_label);
    }
  }

  // The decision(s): exactly one verified verdict per deal id is honest.
  bool first_decision = true;
  for (const DealDecisionMsg& msg : decisions) {
    const DealDecision& decision = msg.decision;
    const crypto::RsaPublicKey* pub = key_of(decision.initiator);
    if (pub == nullptr ||
        !pub->verify(decision.signed_bytes(), msg.signature)) {
      report.violations.push_back("deal decision with bad signature on run " +
                                  leg_label);
      continue;
    }
    if (initiator.has_value() && decision.initiator != *initiator) {
      blame(decision.initiator,
            "deal decision signed by a party other than the initiator");
      continue;
    }
    if (!deal_id.empty() && decision.deal_id != deal_id) {
      blame(decision.initiator, "deal decision for a different deal id");
      continue;
    }
    if (first_decision) {
      first_decision = false;
      report.decision_found = true;
      report.committed =
          decision.verdict == DealDecision::Verdict::kCommit;
    } else {
      // Two validly signed, different verdicts for one deal id:
      // non-repudiable equivocation, blamable on the initiator alone.
      report.equivocation = true;
      blame(decision.initiator,
            "equivocating deal decisions for deal " + decision.deal_id);
    }
  }

  // Cross-check deal-level artifacts against the per-run transcript.
  report.leg = arbitrate(messages, leg_label, expected_recipients);
  if (initiator.has_value() && !report.equivocation) {
    if (report.decision_found && report.committed &&
        report.leg.decide_found && !report.leg.verdict.agreed) {
      blame(*initiator,
            "commit decision but the leg transcript does not show unanimous "
            "agreement");
    }
    if (report.decision_found && !report.committed &&
        report.leg.verdict.agreed) {
      blame(*initiator,
            "leg installed by its decide despite a signed deal abort");
    }
    if (!report.decision_found && report.leg.decide_found) {
      blame(*initiator,
            "leg decided without any deal decision on record");
    }
  }

  if (!report.enlist_found) {
    report.ruling = "run " + leg_label +
                    ": no verifiable deal enlist on record; arbitrate the "
                    "run itself";
  } else if (report.equivocation) {
    report.ruling = "deal " + deal_id + ", run " + leg_label +
                    ": EQUIVOCATION by the initiator is proven by the "
                    "conflicting signed artifacts";
  } else if (!report.blamed.empty()) {
    report.ruling = "deal " + deal_id + ", run " + leg_label + ": " +
                    std::to_string(report.violations.size()) +
                    " defect(s); blame is provable";
  } else if (report.decision_found) {
    report.ruling = "deal " + deal_id + ", run " + leg_label + ": " +
                    (report.committed ? "COMMITTED" : "ABORTED") +
                    " consistently with the leg transcript; evidence intact";
  } else {
    report.ruling = "deal " + deal_id + ", run " + leg_label +
                    ": enlisted but undecided on this party's record; the "
                    "deal is INCOMPLETE here";
  }
  return report;
}

Arbiter::AnchorReport Arbiter::verify_anchored_spans(
    const store::EvidenceLog& log, const crypto::RsaPublicKey& signer) {
  AnchorReport report;
  report.chain_intact = log.verify_chain();
  if (!report.chain_intact) {
    report.problems.push_back("evidence hash chain is broken");
  }
  for (const store::EvidenceRecord& record : log.records()) {
    if (record.kind != evidence_kind::kEvidenceAnchor) continue;
    ++report.anchors_seen;
    EvidenceAnchor anchor;
    try {
      // Evidence payloads are framed {blob payload, blob optional stamp};
      // anchors always carry an empty stamp.
      wire::Decoder dec{record.payload};
      Bytes body = dec.blob();
      dec.blob();  // stamp (ignored)
      dec.expect_done();
      anchor = EvidenceAnchor::decode(body);
    } catch (const CodecError&) {
      report.problems.push_back("anchor at record " +
                                std::to_string(record.index) +
                                " does not decode");
      continue;
    }
    bool ok = true;
    if (anchor.index >= record.index) {
      // An anchor vouches only for records strictly before itself.
      report.problems.push_back("anchor at record " +
                                std::to_string(record.index) +
                                " claims to cover a later index");
      ok = false;
    } else if (log.at(anchor.index).record_hash != anchor.head_hash) {
      report.problems.push_back(
          "anchor at record " + std::to_string(record.index) +
          " does not match the chain hash of record " +
          std::to_string(anchor.index) + " (spliced or tampered span)");
      ok = false;
    }
    if (ok && !signer.verify(anchor.signed_bytes(), anchor.signature)) {
      report.problems.push_back("anchor at record " +
                                std::to_string(record.index) +
                                " carries a bad signature");
      ok = false;
    }
    if (ok) {
      ++report.anchors_valid;
      if (!report.highest_anchored_index.has_value() ||
          anchor.index > *report.highest_anchored_index) {
        report.highest_anchored_index = anchor.index;
      }
    }
  }
  report.all_anchors_valid =
      report.chain_intact && report.anchors_valid == report.anchors_seen;
  return report;
}

}  // namespace b2b::core
