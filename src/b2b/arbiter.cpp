#include "b2b/arbiter.hpp"

#include <set>

#include "common/error.hpp"

namespace b2b::core {

std::optional<RunTranscript> Arbiter::reconstruct(
    const store::MessageStore& messages, const std::string& run_label) {
  RunTranscript transcript;
  bool have_propose = false;
  std::set<PartyId> responders_seen;

  for (const auto& stored : messages.run(run_label)) {
    try {
      if (stored.kind == "propose" && !have_propose) {
        transcript.propose = ProposeMsg::decode(stored.payload);
        have_propose = true;
      } else if (stored.kind == "respond") {
        RespondMsg resp = RespondMsg::decode(stored.payload);
        // Keep the first copy per responder (later equivocations are
        // separate evidence, not part of the canonical transcript).
        if (responders_seen.insert(resp.response.responder).second) {
          transcript.responses.push_back(std::move(resp));
        }
      } else if (stored.kind == "decide" && !transcript.decide.has_value()) {
        transcript.decide = DecideMsg::decode(stored.payload);
      }
    } catch (const CodecError&) {
      // Undecodable stored bytes: skip; the verifier will flag any gap.
    }
  }
  if (!have_propose) return std::nullopt;
  // Prefer the responses aggregated in the decide when the local store
  // lacks direct copies (responders only hold their own response).
  if (transcript.decide.has_value()) {
    for (const RespondMsg& resp : transcript.decide->responses) {
      if (responders_seen.insert(resp.response.responder).second) {
        transcript.responses.push_back(resp);
      }
    }
  }
  return transcript;
}

ArbitrationReport Arbiter::arbitrate(
    const store::MessageStore& messages, const std::string& run_label,
    const std::vector<PartyId>* expected_recipients) const {
  ArbitrationReport report;
  std::optional<RunTranscript> transcript =
      reconstruct(messages, run_label);
  if (!transcript.has_value()) {
    report.ruling = "no proposal on record for run " + run_label +
                    ": nothing to arbitrate";
    return report;
  }
  report.proposal_found = true;
  report.decide_found = transcript->decide.has_value();
  report.verdict =
      verifier_.verify_state_run(*transcript, expected_recipients);

  const Proposal& prop = transcript->propose.proposal;
  std::string who = prop.proposer.str();
  if (report.verdict.agreed) {
    report.ruling = "run " + run_label + ": state proposed by " + who +
                    " was unanimously agreed; evidence intact; the state "
                    "identified by the proposal is VALID";
  } else if (!report.verdict.vetoers.empty() && report.verdict.evidence_intact) {
    std::string vetoers;
    for (const PartyId& v : report.verdict.vetoers) {
      if (!vetoers.empty()) vetoers += ", ";
      vetoers += v.str();
    }
    report.ruling = "run " + run_label + ": state proposed by " + who +
                    " was vetoed by " + vetoers +
                    "; evidence intact; the state is INVALID";
  } else if (!report.decide_found) {
    report.ruling = "run " + run_label + ": proposed by " + who +
                    " but no decision message is on record; the run is "
                    "INCOMPLETE and the state cannot be shown valid";
  } else {
    report.ruling = "run " + run_label + ": evidence is NOT intact (" +
                    std::to_string(report.verdict.violations.size()) +
                    " defect(s)); the state cannot be shown valid";
  }
  return report;
}

}  // namespace b2b::core
