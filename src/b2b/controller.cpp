#include "b2b/controller.hpp"

#include "common/error.hpp"

namespace b2b::core {

Controller::Controller(Coordinator& coordinator, net::Executor& executor,
                       ObjectId object, Mode mode)
    : coordinator_(coordinator),
      executor_(executor),
      object_(std::move(object)),
      mode_(mode) {}

void Controller::enter() { ++depth_; }

void Controller::examine() {
  if (depth_ == 0) throw Error("examine() outside enter()/leave() scope");
  if (access_ == Access::kNone) access_ = Access::kExamine;
}

void Controller::update() {
  if (depth_ == 0) throw Error("update() outside enter()/leave() scope");
  if (access_ != Access::kOverwrite) access_ = Access::kUpdate;
}

void Controller::overwrite() {
  if (depth_ == 0) throw Error("overwrite() outside enter()/leave() scope");
  access_ = Access::kOverwrite;
}

void Controller::leave() {
  if (depth_ == 0) throw Error("leave() without matching enter()");
  if (--depth_ > 0) return;
  Access access = access_;
  access_ = Access::kNone;
  if (access == Access::kOverwrite || access == Access::kUpdate) {
    Replica& replica = coordinator_.replica(object_);
    B2BObject& impl = replica.impl();
    if (access == Access::kOverwrite) {
      Bytes new_state = impl.get_state();
      if (crypto::Sha256::hash(new_state) ==
          replica.agreed_tuple().state_hash) {
        return;  // nothing changed: no coordination event
      }
      last_handle_ = coordinator_.propagate_new_state(object_, std::move(new_state));
    } else {
      Bytes update = impl.get_update();
      Bytes new_state = impl.get_state();
      last_handle_ = coordinator_.propagate_update(object_, std::move(update),
                                                   std::move(new_state));
    }
    if (mode_ == Mode::kSync) await(last_handle_, "state coordination");
  }
}

void Controller::connect(const PartyId& via) {
  last_handle_ = coordinator_.propagate_connect(object_, via);
  if (mode_ == Mode::kSync) await(last_handle_, "connection");
}

void Controller::disconnect() {
  last_handle_ = coordinator_.propagate_disconnect(object_);
  if (mode_ == Mode::kSync) await(last_handle_, "disconnection");
}

void Controller::evict(std::vector<PartyId> subjects) {
  last_handle_ = coordinator_.propagate_eviction(object_, std::move(subjects));
  if (mode_ == Mode::kSync) await(last_handle_, "eviction");
}

RunHandle Controller::coord_commit() {
  if (!last_handle_) throw Error("coord_commit: no coordination in progress");
  await(last_handle_, "coordination");
  return last_handle_;
}

void Controller::await(const RunHandle& handle, const std::string& what) {
  executor_.run_until([&] { return handle->done(); });
  switch (handle->outcome.load()) {
    case RunResult::Outcome::kAgreed:
      return;
    case RunResult::Outcome::kVetoed:
      throw ValidationError(what + " vetoed: " + handle->diagnostic);
    case RunResult::Outcome::kAborted:
      throw ValidationError(what + " aborted: " + handle->diagnostic);
    case RunResult::Outcome::kPending:
      throw ProtocolError(what +
                          " blocked: no progress possible (evidence of the "
                          "active run is held; resolve out of band)");
  }
}

}  // namespace b2b::core
