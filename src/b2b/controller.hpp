// Controller: the B2BObjectController of §5.
//
// The application wraps each state-accessing operation of its object in
//   controller.enter();
//   controller.overwrite();        // or examine() / update()
//   ... mutate the object ...
//   controller.leave();
// enter/leave may nest; coordination is initiated at the final leave() if
// overwrite() or update() was indicated anywhere in the scope ("rolling up"
// a series of changes into a single coordination event).
//
// Communication modes (§5):
//  * kSync          — leave()/connect()/disconnect() block (drive the
//                     runtime's Executor) until coordination completes and
//                     throw ValidationError if it was vetoed.
//  * kDeferredSync  — they return immediately; coord_commit() blocks.
//  * kAsync         — they return immediately; completion is signalled via
//                     the object's coord_callback and the RunResult's
//                     on_complete hook.
//
// Blocking goes through the abstract Executor (net/runtime.hpp): on the
// simulator that pumps the event queue; on the threaded runtime it just
// waits while transport threads make progress.
#pragma once

#include <cstdint>
#include <string>

#include "b2b/coordinator.hpp"
#include "net/runtime.hpp"

namespace b2b::core {

class Controller {
 public:
  enum class Mode { kSync, kDeferredSync, kAsync };

  Controller(Coordinator& coordinator, net::Executor& executor,
             ObjectId object, Mode mode = Mode::kSync);

  Mode mode() const { return mode_; }
  void set_mode(Mode mode) { mode_ = mode; }

  // --- state-access scoping (§5) --------------------------------------------

  /// Begin a state-access scope. May be nested.
  void enter();

  /// Indicate the access type for the current scope. overwrite/update are
  /// sticky for the whole outermost scope; update takes precedence over
  /// examine, overwrite over update.
  void examine();
  void overwrite();
  void update();

  /// End the scope. At the outermost leave(), if overwrite() or update()
  /// was indicated, state coordination is initiated (and, in sync mode,
  /// awaited). Throws b2b::Error if not inside a scope.
  void leave();

  // --- connection management --------------------------------------------------

  /// Join the group coordinating this object, contacting `via`.
  void connect(const PartyId& via);

  /// Voluntarily leave the group.
  void disconnect();

  /// Propose eviction of other members.
  void evict(std::vector<PartyId> subjects);

  // --- completion ----------------------------------------------------------------

  /// Deferred-sync: wait for the most recent coordination to complete.
  /// Returns its handle; throws ValidationError if it was vetoed.
  RunHandle coord_commit();

  /// Most recent coordination handle (may be pending in async mode).
  RunHandle last_handle() const { return last_handle_; }

 private:
  enum class Access : std::uint8_t { kNone, kExamine, kUpdate, kOverwrite };

  void initiate_coordination();
  void await(const RunHandle& handle, const std::string& what);

  Coordinator& coordinator_;
  net::Executor& executor_;
  ObjectId object_;
  Mode mode_;
  int depth_ = 0;
  Access access_ = Access::kNone;
  RunHandle last_handle_;
};

}  // namespace b2b::core
