// Protocol messages for state coordination (§4.3) and membership (§4.5).
//
// Every message that carries an assertion is split into a *signed core*
// (the canonical encoding returned by signed_bytes()) and the enclosing
// message. Verifiers always recompute the signed core from the decoded
// fields, so any inconsistency between "signed and unsigned parts" —
// the tampering §4.4 analyses — is detected by signature verification.
//
// The final decide messages carry no signature: they are authenticated by
// revealing the random number r whose hash the (signed) proposal committed
// to, exactly as the paper prescribes ("requires no signature since only
// P_i can produce the authenticator").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "b2b/tuples.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace b2b::core {

/// Discriminates the payload of a wire envelope.
enum class MsgType : std::uint8_t {
  kPropose = 1,
  kRespond = 2,
  kDecide = 3,
  // Pipelined runs (DESIGN.md §13): one signed proposal opens a hash-
  // chained batch of K state changes; one decide closes all of them.
  kBatchPropose = 4,
  kBatchDecide = 5,
  kConnectRequest = 10,
  kMembershipPropose = 11,
  kMembershipRespond = 12,
  kMembershipDecide = 13,
  kConnectWelcome = 14,
  kConnectReject = 15,
  kDisconnectRequest = 16,
  kDisconnectConfirm = 17,
  kTerminationRequest = 20,  // party -> termination TTP (§7 extension)
  kTerminationVerdict = 21,  // termination TTP -> party
  // Deal subsystem (multi-object atomic coordination, DESIGN.md §12).
  kDealEnlist = 30,              // initiator -> leg recipients (with propose)
  kDealDecision = 31,            // initiator -> participants (signed verdict)
  kDealTerminationRequest = 32,  // initiator -> TTP (atomic registration)
  kDealTerminationVerdict = 33,  // TTP -> initiator
};

/// Outermost wire frame: which object, which message kind, body.
struct Envelope {
  MsgType type{};
  ObjectId object;
  Bytes body;

  Bytes encode() const;
  static Envelope decode(BytesView data);
};

// ---------------------------------------------------------------------------
// State coordination (§4.3, update variant §4.3.1)
// ---------------------------------------------------------------------------

/// The signed core of a state-change proposal:
///   prop = { P_i, G_Pi, T_agreed, T_prop, payload kind, H(payload) }
/// For an overwrite, payload is the full new state and H(payload) equals
/// T_prop.state_hash; for an update, payload is the delta and
/// T_prop.state_hash is the hash of the state *after* applying it.
struct Proposal {
  PartyId proposer;
  ObjectId object;
  GroupTuple group;      // proposer's view of the group
  StateTuple agreed;     // T_agreed as viewed by the proposer
  StateTuple proposed;   // T_prop
  bool is_update = false;
  crypto::Digest payload_hash{};  // H(payload bytes in the ProposeMsg)

  Bytes signed_bytes() const;
  void encode_into(wire::Encoder& enc) const;
  static Proposal decode_from(wire::Decoder& dec);

  friend bool operator==(const Proposal&, const Proposal&) = default;
};

/// Protocol message 1: propose. Carries the payload (state or update) and
/// the proposer's signature over the proposal core.
struct ProposeMsg {
  Proposal proposal;
  Bytes payload;
  Bytes signature;

  Bytes encode() const;
  static ProposeMsg decode(BytesView data);

  friend bool operator==(const ProposeMsg&, const ProposeMsg&) = default;
};

/// The signed core of a response: receipt for the proposal plus the
/// responder's decision and its own view of agreed/current state and group
/// (the consistency-check material of §4.3).
struct Response {
  PartyId responder;
  ObjectId object;
  StateTuple proposed;            // echo of T_prop (the receipt)
  StateTuple agreed_view;         // T_agreed as viewed by the responder
  StateTuple current_view;        // T_current as viewed by the responder
  GroupTuple group_view;          // responder's view of the group
  crypto::Digest payload_integrity{};  // H(payload as actually received)
  Decision decision;

  Bytes signed_bytes() const;
  void encode_into(wire::Encoder& enc) const;
  static Response decode_from(wire::Decoder& dec);

  friend bool operator==(const Response&, const Response&) = default;
};

/// Protocol message 2: respond (one per recipient, sent to the proposer).
struct RespondMsg {
  Response response;
  Bytes signature;

  Bytes encode() const;
  static RespondMsg decode(BytesView data);
  void encode_into(wire::Encoder& enc) const;
  static RespondMsg decode_from(wire::Decoder& dec);

  friend bool operator==(const RespondMsg&, const RespondMsg&) = default;
};

/// Protocol message 3: decide. Aggregates every signed response and reveals
/// the authenticator r (preimage of T_prop.rand_hash). Unsigned by design.
struct DecideMsg {
  PartyId proposer;
  ObjectId object;
  StateTuple proposed;  // identifies the run
  std::vector<RespondMsg> responses;
  Bytes authenticator;  // r

  Bytes encode() const;
  static DecideMsg decode(BytesView data);

  friend bool operator==(const DecideMsg&, const DecideMsg&) = default;
};

// ---------------------------------------------------------------------------
// Pipelined runs (DESIGN.md §13): K state changes, one signature round
// ---------------------------------------------------------------------------

/// One member of a pipelined batch: a sub-proposal in the hash chain.
/// `proposed` is the sub-tuple this item installs — sequence numbers are
/// consecutive across the batch, and each rand_hash commits to its own
/// authenticator, so installed tuples are bit-identical to the tuples K
/// sequential runs would have produced.
struct BatchItem {
  bool is_update = false;
  Bytes payload;        // full state (overwrite) or delta (update)
  StateTuple proposed;  // sub-tuple installed by this item

  void encode_into(wire::Encoder& enc) const;
  static BatchItem decode_from(wire::Decoder& dec);
  Bytes encode() const;

  friend bool operator==(const BatchItem&, const BatchItem&) = default;
};

/// The batch hash chain. Its genesis binds the object and the agreed
/// tuple the batch departs from; each item extends the head with the hash
/// of its full encoding. The proposer signs ONE proposal core whose
/// payload_hash is the final head — that single signature therefore
/// attests to every item, in order, and to nothing else.
crypto::Digest batch_chain_genesis(const ObjectId& object,
                                   const StateTuple& agreed);
crypto::Digest batch_chain_extend(const crypto::Digest& head,
                                  const BatchItem& item);
crypto::Digest batch_chain_head(const ObjectId& object,
                                const StateTuple& agreed,
                                const std::vector<BatchItem>& items);

/// The signed core of a batch proposal is a regular Proposal — with
/// `proposed` = the FINAL item's sub-tuple (which labels the run) and
/// `payload_hash` = the batch chain head — but signed under its own
/// domain tag so a batch signature can never be replayed as a plain
/// single-run proposal or vice versa.
Bytes batch_proposal_signed_bytes(const Proposal& proposal);

/// Pipelined protocol message 1: one signed proposal carrying the whole
/// batch. Responders validate the items in order against scratch state,
/// recompute the chain head, and answer with a single standard RespondMsg
/// whose payload_integrity echoes the head they computed.
struct BatchProposeMsg {
  Proposal proposal;             // proposed = final sub-tuple
  std::vector<BatchItem> items;  // in application order
  Bytes signature;               // over batch_proposal_signed_bytes()

  Bytes encode() const;
  static BatchProposeMsg decode(BytesView data);

  friend bool operator==(const BatchProposeMsg&,
                         const BatchProposeMsg&) = default;
};

/// Pipelined protocol message 3: closes the whole batch. Reveals EVERY
/// item's authenticator (auth[i] is the preimage of item i's rand_hash;
/// the final one is the preimage of the signed proposal's commitment), so
/// a responder installs each sub-tuple only against its own revealed
/// preimage — no sub-state can be forged by replaying a prefix.
struct BatchDecideMsg {
  PartyId proposer;
  ObjectId object;
  StateTuple proposed;  // final sub-tuple; identifies the run
  std::vector<RespondMsg> responses;
  std::vector<Bytes> authenticators;  // one per item, in order

  Bytes encode() const;
  static BatchDecideMsg decode(BytesView data);

  friend bool operator==(const BatchDecideMsg&,
                         const BatchDecideMsg&) = default;
};

// ---------------------------------------------------------------------------
// Membership (§4.5): connection, eviction, voluntary disconnection
// ---------------------------------------------------------------------------

enum class MembershipKind : std::uint8_t {
  kConnect = 1,
  kEvict = 2,
  kVoluntaryDisconnect = 3,
};

/// Initial request from the subject (connect / voluntary disconnect) or
/// from the eviction proposer to the sponsor. Signed by its sender.
struct MembershipRequest {
  MembershipKind kind{};
  PartyId sender;               // subject, or eviction proposer
  ObjectId object;
  std::vector<PartyId> subjects;  // who joins/leaves (evict may list several)
  Bytes subject_public_key;       // connect only: encoded RsaPublicKey
  Bytes request_nonce;            // r_new: uniquely labels the request

  Bytes signed_bytes() const;
  void encode_into(wire::Encoder& enc) const;
  static MembershipRequest decode_from(wire::Decoder& dec);
  Bytes encode() const;
  static MembershipRequest decode(BytesView data);

  friend bool operator==(const MembershipRequest&,
                         const MembershipRequest&) = default;
};

/// Sponsor's proposal of a membership change to the recipient set.
/// new_group is the group tuple that will identify the changed membership.
struct MembershipProposal {
  PartyId sponsor;
  ObjectId object;
  MembershipRequest request;      // echo of the (signed) request
  Bytes request_signature;        // signature from the request sender
  GroupTuple current_group;       // sponsor's view before the change
  GroupTuple new_group;           // tuple identifying the proposed group
  StateTuple agreed;              // sponsor's view of agreed object state
  std::vector<PartyId> new_members;  // the proposed ordered member list

  Bytes signed_bytes() const;
  friend bool operator==(const MembershipProposal&,
                         const MembershipProposal&) = default;
};

/// Message: sponsor -> recipients (everyone but the sponsor and, for
/// connect/evict, the subject).
struct MembershipProposeMsg {
  MembershipProposal proposal;
  Bytes signature;  // sponsor's

  Bytes encode() const;
  static MembershipProposeMsg decode(BytesView data);

  friend bool operator==(const MembershipProposeMsg&,
                         const MembershipProposeMsg&) = default;
};

/// A recipient's signed response to a membership proposal. For voluntary
/// disconnection the decision must be accept (no veto, §4.5.4).
struct MembershipResponse {
  PartyId responder;
  ObjectId object;
  GroupTuple new_group;     // echo (receipt)
  GroupTuple group_view;    // responder's current view
  StateTuple agreed_view;   // responder's view of agreed object state
  Decision decision;

  Bytes signed_bytes() const;
  void encode_into(wire::Encoder& enc) const;
  static MembershipResponse decode_from(wire::Decoder& dec);

  friend bool operator==(const MembershipResponse&,
                         const MembershipResponse&) = default;
};

struct MembershipRespondMsg {
  MembershipResponse response;
  Bytes signature;

  Bytes encode() const;
  static MembershipRespondMsg decode(BytesView data);
  void encode_into(wire::Encoder& enc) const;
  static MembershipRespondMsg decode_from(wire::Decoder& dec);

  friend bool operator==(const MembershipRespondMsg&,
                         const MembershipRespondMsg&) = default;
};

/// Sponsor -> recipients: aggregated responses + revealed authenticator.
struct MembershipDecideMsg {
  PartyId sponsor;
  ObjectId object;
  GroupTuple new_group;  // identifies the run
  std::vector<MembershipRespondMsg> responses;
  Bytes authenticator;  // preimage of new_group.rand_hash

  Bytes encode() const;
  static MembershipDecideMsg decode(BytesView data);

  friend bool operator==(const MembershipDecideMsg&,
                         const MembershipDecideMsg&) = default;
};

/// Sponsor -> new member after an agreed connect: everything the subject
/// needs to install a verified replica (§4.5.3): the member list with
/// public keys, the agreed state with per-member signed agreed tuples
/// (inside the aggregated responses), and the authenticator.
struct ConnectWelcomeMsg {
  PartyId sponsor;
  ObjectId object;
  GroupTuple new_group;
  std::vector<PartyId> members;          // ordered by join time, incl. subject
  std::vector<Bytes> member_public_keys;  // parallel to `members`
  StateTuple agreed;                      // sponsor's signed view
  Bytes agreed_state;                     // S_agreed bytes
  std::vector<MembershipRespondMsg> responses;
  Bytes authenticator;
  Bytes sponsor_signature;  // over {new_group, members, agreed}

  Bytes signed_bytes() const;
  Bytes encode() const;
  static ConnectWelcomeMsg decode(BytesView data);
};

/// Sponsor -> subject: rejection. Deliberately identical in shape whether
/// the sponsor rejected immediately or a member vetoed (§4.5.3: the subject
/// learns nothing more either way).
struct ConnectRejectMsg {
  PartyId sponsor;
  ObjectId object;
  Bytes request_nonce;  // echoes the request this rejects
  Bytes signature;      // sponsor's, over {“reject”, object, nonce}

  Bytes signed_bytes() const;
  Bytes encode() const;
  static ConnectRejectMsg decode(BytesView data);
};

/// Sponsor -> voluntarily departing subject: confirmation carrying the
/// evidence that the remaining group saw the disconnection.
struct DisconnectConfirmMsg {
  PartyId sponsor;
  ObjectId object;
  GroupTuple new_group;
  std::vector<MembershipRespondMsg> responses;
  Bytes authenticator;

  Bytes encode() const;
  static DisconnectConfirmMsg decode(BytesView data);
};

}  // namespace b2b::core
