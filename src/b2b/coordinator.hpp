// Coordinator: the per-organisation B2BCoordinator (Figure 4).
//
// One Coordinator runs at each organisation. It owns the party's replicas
// (one per shared object), the certificate directory (party -> public key),
// the non-repudiation log (with trusted time-stamps), the checkpoint store
// and the protocol message store, and it connects the replicas to the
// reliable transport. Its propagate_* methods are the paper's
// B2BCoordinatorLocal propagation interface: they insulate the application
// (the Controller) from protocol-specific detail.
//
// Concurrency architecture (DESIGN.md §9): the coordinator is sharded by
// ObjectId. Each registered object lives in an ObjectShard that owns the
// replica, a per-shard mutex serialising everything that touches that
// replica (message dispatch, propagate_*, timers), and — when lanes are
// enabled on the real-thread runtimes — a dedicated dispatch thread
// (strand), so a slow or stalled run on one object never delays another
// object's runs. A thin router (a shared_mutex-guarded map) dispatches
// inbound protocol messages to the owning shard; read-only lookups on
// distinct objects never contend. A small global section remains for
// membership-wide state: the certificate directory and suspect set
// (global_mutex_), the hash-chained evidence log (evidence_mutex_, which
// also fixes the journal-append order of evidence records), protocol
// stats (stats_mutex_) and the single append-only journal stream
// (journal_mutex_). Lock order: shard -> {global | evidence | stats |
// store} -> journal; no path takes a shard mutex while holding any of the
// narrower ones.
//
// Runtime seam: the coordinator depends only on the abstract Transport /
// Clock / Rng interfaces (net/runtime.hpp), never on the simulator. On the
// deterministic runtime every call arrives on one thread, lanes are off,
// and every mutex is uncontended, so seeded runs reproduce the pre-shard
// behaviour bit-for-bit (the sharding equivalence suite pins this).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "b2b/deal.hpp"
#include "b2b/replica.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/timestamp.hpp"
#include "net/reactor.hpp"  // TaskPool / Strand (pool-backed shard lanes)
#include "net/runtime.hpp"
#include "store/evidence_log.hpp"
#include "store/journal.hpp"
#include "wire/codec.hpp"

namespace b2b::core {

class Coordinator {
 public:
  /// How shard state is locked. kPerObject is the production mode: one
  /// mutex per object, independent objects coordinate in parallel.
  /// kCoarse points every shard at one shared mutex (and disables lanes),
  /// reproducing the pre-shard single-lock contention profile — the
  /// baseline the sharding bench and equivalence suite compare against.
  enum class LockMode { kPerObject, kCoarse };

  struct Config {
    PartyId self;
    crypto::RsaPrivateKey key;
    /// Seed for the default DeterministicRng. Ignored if `rng` is set.
    std::uint64_t rng_seed = 0;
    /// Optional injected randomness source (the Rng seam); defaults to a
    /// DeterministicRng derived from `rng_seed` and `self`. Shared across
    /// shards behind an internal lock, so the draw order on the sim
    /// runtime is unchanged from the pre-shard coordinator.
    std::shared_ptr<net::Rng> rng;
    /// Sponsor selection for membership protocols; must match federation-
    /// wide (§4.5.1 and its footnote 2).
    SponsorPolicy sponsor_policy = SponsorPolicy::kRotating;
    /// Group decision rule (§7 majority-resolution extension); must match
    /// federation-wide.
    DecisionRule decision_rule = DecisionRule::kUnanimous;
    /// Directory of the write-ahead journal. Empty disables journaling
    /// entirely (the protocol then behaves exactly as without this
    /// feature: no durability, no idempotent duplicate handling, no run
    /// probes). Non-empty: the journal is opened (replaying any previous
    /// incarnation's records) and every protocol message, evidence entry
    /// and checkpoint is journaled before the action it precedes.
    std::string journal_dir;
    /// Honour journal barriers with a real fsync (bench knob).
    bool journal_fsync = true;
    /// Journal-gated liveness probe cadence for in-flight runs (see
    /// Replica::set_run_probe).
    std::uint64_t run_probe_interval_micros = 1'000'000;
    int max_run_probes = 12;
    /// Shard locking mode (see LockMode).
    LockMode lock_mode = LockMode::kPerObject;
    /// Give each shard its own dispatch thread (strand): inbound messages
    /// and timer callbacks are posted to the owning shard's lane instead
    /// of running on the transport/clock thread, so a replica blocked in
    /// validation cannot stall deliveries to other objects. Only
    /// meaningful with kPerObject; keep false on the deterministic
    /// simulator (inline dispatch preserves bit-for-bit event order).
    bool shard_lanes = false;
    /// When set (reactor runtime), shard lanes run as FIFO strands on
    /// this bounded pool instead of spawning one thread per shard:
    /// thread count stays flat in the number of objects. Dispatch
    /// semantics (FIFO per shard, discard-on-stop) are identical.
    /// Shared ownership: a queued drain task survives the coordinator.
    std::shared_ptr<net::TaskPool> lane_pool;
    /// Run pipelining (DESIGN.md §13): enables propagate_batch, routes
    /// batch-decide signature checks through batch verification with a
    /// verified-signature cache, and (with evidence_anchor_interval > 0)
    /// anchors the evidence chain with periodic signed chain heads. Must
    /// match federation-wide, like the decision rule.
    bool pipeline = false;
    /// Append a signed evidence-chain anchor every N evidence records
    /// (0 disables anchoring). Only meaningful with pipeline.
    std::uint64_t evidence_anchor_interval = 0;
    /// Capacity of the verified-signature cache (pipeline mode).
    std::size_t signature_cache_capacity = 1024;
  };

  /// Per-message-type send counters (protocol-level, before transport
  /// retransmission), used by the message-complexity benches (E6).
  struct ProtocolStats {
    std::map<MsgType, std::uint64_t> sent_by_type;
    std::uint64_t envelopes_sent = 0;
    std::uint64_t envelope_bytes_sent = 0;
  };

  /// Router-level counters (Transport::Stats-style): how object lookups
  /// and message dispatch hit the shard map. Concurrent read-only lookups
  /// take the map's shared lock only; map_exclusive_locks counts shard
  /// creation (register_object), the only writer.
  struct RouterStats {
    std::uint64_t lookups = 0;
    std::uint64_t map_exclusive_locks = 0;
    std::uint64_t messages_routed = 0;
    std::uint64_t lane_posts = 0;
  };

  /// Per-shard dispatch counters.
  struct ShardStats {
    std::uint64_t messages_dispatched = 0;
    std::uint64_t timer_fires = 0;
    std::uint64_t lane_posts = 0;
  };

  /// `tss` may be null (evidence is then logged without trusted stamps).
  /// `transport` and `clock` must outlive the coordinator.
  Coordinator(Config config, net::Transport& transport, net::Clock& clock,
              const crypto::TimestampService* tss);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  const PartyId& self() const { return self_; }
  const crypto::RsaPublicKey& public_key() const {
    return key_.public_key();
  }

  // --- certificate management ------------------------------------------------

  void add_known_party(const PartyId& party, crypto::RsaPublicKey key);
  const crypto::RsaPublicKey* key_of(const PartyId& party) const;
  /// Snapshot of the directory (for building an EvidenceVerifier).
  std::map<PartyId, crypto::RsaPublicKey> key_directory() const;

  // --- objects ------------------------------------------------------------------

  /// Create (and own) the replica for `object`, wrapping `impl`. The
  /// caller keeps ownership of `impl` and must outlive the coordinator.
  Replica& register_object(const ObjectId& object, B2BObject& impl);
  Replica& replica(const ObjectId& object);
  const Replica& replica(const ObjectId& object) const;
  bool has_object(const ObjectId& object) const;

  /// Enable TTP-certified termination (§7 extension) for one object.
  void enable_ttp_termination(const ObjectId& object,
                              Replica::TtpConfig config);

  // --- deals (DESIGN.md §12) ------------------------------------------------------

  /// Start an atomic multi-object deal as initiator. The handle completes
  /// once every leg has been driven to the all-or-nothing outcome.
  RunHandle start_deal(DealCoordinator::DealSpec spec) {
    return deals_->start_deal(std::move(spec));
  }
  /// The deal layer (TTP escape configuration, stats, verification).
  DealCoordinator& deals() { return *deals_; }
  const DealCoordinator& deals() const { return *deals_; }

  // --- B2BCoordinatorLocal propagation interface (§5) -------------------------

  RunHandle propagate_new_state(const ObjectId& object, Bytes new_state);
  RunHandle propagate_update(const ObjectId& object, Bytes update,
                             Bytes new_state);
  /// Pipeline a hash-chained batch of state changes through ONE
  /// propose/respond/decide round (DESIGN.md §13). Requires
  /// Config::pipeline; aborts otherwise.
  RunHandle propagate_batch(const ObjectId& object,
                            std::vector<Replica::BatchOp> ops);
  RunHandle propagate_connect(const ObjectId& object, const PartyId& via);
  RunHandle propagate_disconnect(const ObjectId& object);
  RunHandle propagate_eviction(const ObjectId& object,
                               std::vector<PartyId> subjects);

  // --- stores & evidence ---------------------------------------------------------

  /// On the real-thread runtimes, read these only at quiescence (the lock
  /// acquisition orders prior handler-side writes before the read).
  const store::EvidenceLog& evidence() const {
    std::lock_guard<std::mutex> lock(evidence_mutex_);
    return evidence_;
  }
  store::CheckpointStore& checkpoints() { return checkpoints_; }
  const store::MessageStore& messages() const { return messages_; }

  /// Evidence payloads are framed as {original payload, optional TSS
  /// stamp}; this unpacks one.
  struct EvidencePayload {
    Bytes payload;
    std::optional<crypto::Timestamp> timestamp;
  };
  static EvidencePayload decode_evidence_payload(BytesView framed);

  // --- observation -----------------------------------------------------------------

  /// Observer invoked for every CoordEvent from any replica. The observer
  /// runs under the owning shard's mutex plus the observer lock (events
  /// from different shards are serialised with each other); it must not
  /// call back into the coordinator's blocking APIs.
  void set_observer(std::function<void(const CoordEvent&)> observer) {
    std::lock_guard<std::mutex> lock(observer_mutex_);
    observer_ = std::move(observer);
  }

  ProtocolStats protocol_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return protocol_stats_;
  }
  void reset_protocol_stats() {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    protocol_stats_ = ProtocolStats{};
  }

  RouterStats router_stats() const;
  /// Dispatch counters of one shard (throws for unknown objects).
  ShardStats shard_stats(const ObjectId& object) const;

  /// Total violations detected across all replicas.
  std::uint64_t violations_detected() const;

  /// Memory-barrier helper for external observers on the real-thread
  /// runtimes: drains every shard lane, then acquires and releases each
  /// shard's mutex (and the global/evidence/stats locks), so every prior
  /// handler-side write is ordered before the caller's subsequent reads.
  void synchronize() const;

  /// True when every shard lane has an empty queue and no task running
  /// (vacuously true without lanes). Quiescence probes on the real-thread
  /// runtimes poll this: a message acked by the transport may still be
  /// queued on a lane.
  bool lanes_idle() const;

  /// Teardown barrier: join every shard lane, discarding queued tasks
  /// (idempotent; the destructor calls it too). Harnesses that are about
  /// to destroy the transport this coordinator sends on call this first —
  /// after stopping the runtime threads that feed the lanes — so no lane
  /// task can touch a dying transport.
  void stop_lanes();

  // --- crash recovery & fault injection ----------------------------------------

  /// The write-ahead journal, or nullptr when journaling is disabled.
  const store::Journal* journal() const { return journal_.get(); }

  /// True when the journal replay at construction found records from a
  /// previous incarnation (i.e. this coordinator is a restart).
  bool recovered() const {
    std::lock_guard<std::mutex> lock(global_mutex_);
    return recovered_any_;
  }

  /// Redo-and-resend phase of recovery: call once after every object has
  /// been re-registered. Returns handles of runs resumed in flight.
  std::vector<RunHandle> resume_recovered_runs();

  /// Arm a named crash point (see the names in replica.cpp): the next
  /// time protocol processing passes it, a SimulatedCrash unwinds to the
  /// coordinator entry point and the coordinator goes permanently inert
  /// (as if the process had been killed). Empty disarms.
  void arm_crash_point(std::string point) {
    std::lock_guard<std::mutex> lock(global_mutex_);
    armed_crash_point_ = std::move(point);
  }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Peers the transport reported as unreachable (max_retransmits
  /// exhausted on some frame). Evidence-logged as "peer.suspect".
  std::set<PartyId> suspected_peers() const {
    std::lock_guard<std::mutex> lock(global_mutex_);
    return suspects_;
  }

 private:
  /// The deal layer drives legs through shard entry points and journals
  /// coordinator-scoped records; it is part of the coordinator's
  /// implementation, split into its own class (deal.hpp).
  friend class DealCoordinator;

  /// Shared anchor for callbacks that can outlive the coordinator
  /// (clock timers, the transport's delivery-failure handler). The
  /// callback locks the anchor, null-checks, and only then touches the
  /// coordinator; ~Coordinator nulls the pointer under the anchor mutex,
  /// which blocks until any in-flight callback has finished.
  struct TimerAnchor {
    std::mutex mutex;
    Coordinator* coordinator = nullptr;
  };

  /// A shard's dispatch strand. Two backings with identical semantics
  /// (FIFO, one task at a time, stop discards the queue): a dedicated
  /// worker thread (threaded/tcp runtimes), or a net::Strand multiplexed
  /// onto a shared bounded TaskPool (reactor runtime) so lane count is
  /// decoupled from thread count.
  class ShardLane {
   public:
    ShardLane();
    explicit ShardLane(std::shared_ptr<net::TaskPool> pool);
    ~ShardLane();
    void post(std::function<void()> task);
    bool idle() const;
    void wait_idle() const;
    void stop();

   private:
    void worker_loop();

    std::unique_ptr<net::Strand> strand_;  // pool mode; else own thread:
    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool running_ = false;
    bool stopping_ = false;
    std::thread worker_;
  };

  /// Everything one object needs to coordinate independently: the
  /// replica, the mutex serialising it, the optional lane, and dispatch
  /// counters. Shards are created by register_object and never erased, so
  /// raw ObjectShard pointers stay valid for the coordinator's lifetime
  /// (lane tasks and timers hold them across map growth).
  struct ObjectShard {
    ObjectId id;
    /// Points at own_mutex (kPerObject) or the coordinator's shared
    /// coarse_mutex_ (kCoarse). Recursive for parity with the pre-shard
    /// lock: replica callbacks may re-enter coordinator methods while a
    /// dispatch holds it.
    std::recursive_mutex* mutex = nullptr;
    std::recursive_mutex own_mutex;
    std::unique_ptr<Replica> replica;
    std::unique_ptr<ShardLane> lane;
    std::atomic<std::uint64_t> messages_dispatched{0};
    std::atomic<std::uint64_t> timer_fires{0};
    std::atomic<std::uint64_t> lane_posts{0};
  };

  /// Serialises a shared Rng across shards without changing the stream.
  class LockedRng final : public net::Rng {
   public:
    explicit LockedRng(net::Rng& inner) : inner_(inner) {}
    void fill(std::uint8_t* out, std::size_t len) override {
      std::lock_guard<std::mutex> lock(mutex_);
      inner_.fill(out, len);
    }

   private:
    std::mutex mutex_;
    net::Rng& inner_;
  };

  /// Router lookup: shared lock on the shard map only. Returns nullptr
  /// for unknown objects.
  ObjectShard* find_shard(const ObjectId& object) const;
  ObjectShard& find_shard_or_throw(const ObjectId& object) const;

  /// Run `fn` on the shard: post to its lane when one exists, else
  /// inline. Either way `fn` executes under the shard mutex with the
  /// crashed check and SimulatedCrash containment of the pre-shard entry
  /// points.
  void run_on_shard(ObjectShard& shard, std::function<void()> fn);
  void exec_on_shard(ObjectShard& shard, const std::function<void()>& fn);
  /// Propagation entry: lock the shard, check crashed, call `fn` (which
  /// returns the run handle), containing SimulatedCrash as an abort.
  RunHandle propagate_on_shard(const ObjectId& object,
                               const std::function<RunHandle(Replica&)>& fn);

  void replay_journal();
  void replay_object_record(std::uint8_t type, const ObjectId& object,
                            Replica::RecoveredObjectState& rec,
                            wire::Decoder& dec);
  void handle_delivery_failure(const PartyId& to);
  static RunHandle aborted_handle(std::string diagnostic);
  void on_message(const PartyId& from, const Bytes& payload);
  void record_evidence(const std::string& kind, const Bytes& payload);
  void send(const PartyId& to, const Envelope& envelope);
  /// Pipeline mode: verify a batch of signature jobs via crypto::
  /// batch_verify (screening + verified-signature cache). Unknown
  /// signers come back false.
  std::vector<bool> verify_many(const std::vector<VerifyJob>& jobs);

  PartyId self_;
  crypto::RsaPrivateKey key_;
  std::shared_ptr<net::Rng> rng_;
  std::unique_ptr<LockedRng> locked_rng_;  // wraps *rng_ for all shards
  net::Transport& transport_;
  net::Clock& clock_;
  const crypto::TimestampService* tss_;

  LockMode lock_mode_;
  bool shard_lanes_ = false;
  /// Pipeline mode (DESIGN.md §13): batch proposals, batched signature
  /// verification with a cache, and evidence-chain anchoring.
  bool pipeline_ = false;
  std::uint64_t evidence_anchor_interval_ = 0;
  /// Verified-signature cache plus the screening rng, shared by every
  /// shard's verify_many behind one lock (batch verification is already
  /// a bulk operation; contention is per batch, not per signature).
  std::unique_ptr<crypto::SignatureCache> signature_cache_;
  std::unique_ptr<crypto::ChaCha20Rng> screen_rng_;
  std::mutex batch_verify_mutex_;
  /// Backing pool for strand-mode lanes (null = thread-mode lanes).
  std::shared_ptr<net::TaskPool> lane_pool_;
  SponsorPolicy sponsor_policy_;
  DecisionRule decision_rule_;

  /// The router: object -> shard. Shared lock for lookups and dispatch,
  /// exclusive only while register_object inserts.
  mutable std::shared_mutex shard_map_mutex_;
  std::unordered_map<ObjectId, std::unique_ptr<ObjectShard>> shards_;
  /// The single lock every shard shares in LockMode::kCoarse.
  std::recursive_mutex coarse_mutex_;

  /// Membership-wide state: certificate directory, suspect set, armed
  /// crash point.
  mutable std::mutex global_mutex_;
  std::map<PartyId, crypto::RsaPublicKey> known_keys_;
  std::set<PartyId> suspects_;
  std::string armed_crash_point_;
  bool recovered_any_ = false;

  /// The hash-chained evidence log. Held across the journal append of
  /// each kEvidence record AND the in-memory append, so the journaled
  /// order equals the chain order (recovery rebuilds the identical
  /// chain).
  mutable std::mutex evidence_mutex_;
  store::EvidenceLog evidence_;

  /// Serialises every append/sync on the single journal stream
  /// (DESIGN.md §9: a dedicated lock rather than per-shard buffers, so
  /// the journal-then-act discipline keeps its "journaled before sent"
  /// meaning across shards).
  mutable std::mutex journal_mutex_;
  std::unique_ptr<store::Journal> journal_;

  mutable std::mutex stats_mutex_;
  ProtocolStats protocol_stats_;

  mutable std::mutex observer_mutex_;
  std::function<void(const CoordEvent&)> observer_;

  // Internally locked; shared by every shard's replica.
  store::CheckpointStore checkpoints_;
  store::MessageStore messages_;

  // --- router stats -------------------------------------------------------------
  mutable std::atomic<std::uint64_t> stat_lookups_{0};
  mutable std::atomic<std::uint64_t> stat_map_exclusive_{0};
  mutable std::atomic<std::uint64_t> stat_messages_routed_{0};
  mutable std::atomic<std::uint64_t> stat_lane_posts_{0};

  // --- deals --------------------------------------------------------------------
  /// Initiator-side deal driver (constructed after journal replay).
  std::unique_ptr<DealCoordinator> deals_;
  /// Deal-layer journal state from replay, consumed by the deal resume in
  /// resume_recovered_runs.
  RecoveredDealState recovered_deals_;

  // --- crash recovery & fault injection ----------------------------------------
  std::shared_ptr<TimerAnchor> anchor_;
  /// Per-object state reconstructed by the journal replay, consumed by
  /// register_object (single-threaded: constructor, then under the
  /// exclusive shard-map lock).
  std::unordered_map<ObjectId, Replica::RecoveredObjectState> recovered_;
  std::atomic<bool> crashed_{false};
  std::uint64_t run_probe_interval_micros_;
  int max_run_probes_;
};

}  // namespace b2b::core
