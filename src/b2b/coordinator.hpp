// Coordinator: the per-organisation B2BCoordinator (Figure 4).
//
// One Coordinator runs at each organisation. It owns the party's replicas
// (one per shared object), the certificate directory (party -> public key),
// the non-repudiation log (with trusted time-stamps), the checkpoint store
// and the protocol message store, and it connects the replicas to the
// reliable transport. Its propagate_* methods are the paper's
// B2BCoordinatorLocal propagation interface: they insulate the application
// (the Controller) from protocol-specific detail.
//
// Runtime seam: the coordinator depends only on the abstract Transport /
// Clock / Rng interfaces (net/runtime.hpp), never on the simulator. On the
// deterministic runtime every call arrives on one thread and the internal
// mutex is uncontended; on the threaded runtime transport handlers and
// clock timers arrive on worker threads, and the mutex serialises them:
// every public entry point (message dispatch, propagate_*, accessors) and
// every scheduled timer runs under it, so replica state, the evidence log
// and the protocol stats are updated atomically per message.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "b2b/replica.hpp"
#include "crypto/timestamp.hpp"
#include "net/runtime.hpp"
#include "store/evidence_log.hpp"
#include "store/journal.hpp"
#include "wire/codec.hpp"

namespace b2b::core {

class Coordinator {
 public:
  struct Config {
    PartyId self;
    crypto::RsaPrivateKey key;
    /// Seed for the default DeterministicRng. Ignored if `rng` is set.
    std::uint64_t rng_seed = 0;
    /// Optional injected randomness source (the Rng seam); defaults to a
    /// DeterministicRng derived from `rng_seed` and `self`.
    std::shared_ptr<net::Rng> rng;
    /// Sponsor selection for membership protocols; must match federation-
    /// wide (§4.5.1 and its footnote 2).
    SponsorPolicy sponsor_policy = SponsorPolicy::kRotating;
    /// Group decision rule (§7 majority-resolution extension); must match
    /// federation-wide.
    DecisionRule decision_rule = DecisionRule::kUnanimous;
    /// Directory of the write-ahead journal. Empty disables journaling
    /// entirely (the protocol then behaves exactly as without this
    /// feature: no durability, no idempotent duplicate handling, no run
    /// probes). Non-empty: the journal is opened (replaying any previous
    /// incarnation's records) and every protocol message, evidence entry
    /// and checkpoint is journaled before the action it precedes.
    std::string journal_dir;
    /// Honour journal barriers with a real fsync (bench knob).
    bool journal_fsync = true;
    /// Journal-gated liveness probe cadence for in-flight runs (see
    /// Replica::set_run_probe).
    std::uint64_t run_probe_interval_micros = 1'000'000;
    int max_run_probes = 12;
  };

  /// Per-message-type send counters (protocol-level, before transport
  /// retransmission), used by the message-complexity benches (E6).
  struct ProtocolStats {
    std::map<MsgType, std::uint64_t> sent_by_type;
    std::uint64_t envelopes_sent = 0;
    std::uint64_t envelope_bytes_sent = 0;
  };

  /// `tss` may be null (evidence is then logged without trusted stamps).
  /// `transport` and `clock` must outlive the coordinator.
  Coordinator(Config config, net::Transport& transport, net::Clock& clock,
              const crypto::TimestampService* tss);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  const PartyId& self() const { return self_; }
  const crypto::RsaPublicKey& public_key() const {
    return key_.public_key();
  }

  // --- certificate management ------------------------------------------------

  void add_known_party(const PartyId& party, crypto::RsaPublicKey key);
  const crypto::RsaPublicKey* key_of(const PartyId& party) const;
  /// Snapshot of the directory (for building an EvidenceVerifier).
  std::map<PartyId, crypto::RsaPublicKey> key_directory() const;

  // --- objects ------------------------------------------------------------------

  /// Create (and own) the replica for `object`, wrapping `impl`. The
  /// caller keeps ownership of `impl` and must outlive the coordinator.
  Replica& register_object(const ObjectId& object, B2BObject& impl);
  Replica& replica(const ObjectId& object);
  const Replica& replica(const ObjectId& object) const;
  bool has_object(const ObjectId& object) const;

  /// Enable TTP-certified termination (§7 extension) for one object.
  void enable_ttp_termination(const ObjectId& object,
                              Replica::TtpConfig config);

  // --- B2BCoordinatorLocal propagation interface (§5) -------------------------

  RunHandle propagate_new_state(const ObjectId& object, Bytes new_state);
  RunHandle propagate_update(const ObjectId& object, Bytes update,
                             Bytes new_state);
  RunHandle propagate_connect(const ObjectId& object, const PartyId& via);
  RunHandle propagate_disconnect(const ObjectId& object);
  RunHandle propagate_eviction(const ObjectId& object,
                               std::vector<PartyId> subjects);

  // --- stores & evidence ---------------------------------------------------------

  /// On the threaded runtime, read these only at quiescence (the lock
  /// acquisition orders prior handler-side writes before the read).
  const store::EvidenceLog& evidence() const {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    return evidence_;
  }
  store::CheckpointStore& checkpoints() {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    return checkpoints_;
  }
  const store::MessageStore& messages() const {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    return messages_;
  }

  /// Evidence payloads are framed as {original payload, optional TSS
  /// stamp}; this unpacks one.
  struct EvidencePayload {
    Bytes payload;
    std::optional<crypto::Timestamp> timestamp;
  };
  static EvidencePayload decode_evidence_payload(BytesView framed);

  // --- observation -----------------------------------------------------------------

  /// Observer invoked for every CoordEvent from any replica. The observer
  /// runs under the coordinator mutex (on whichever thread delivered the
  /// message); it must not call back into the coordinator's blocking APIs.
  void set_observer(std::function<void(const CoordEvent&)> observer) {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    observer_ = std::move(observer);
  }

  ProtocolStats protocol_stats() const {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    return protocol_stats_;
  }
  void reset_protocol_stats() {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    protocol_stats_ = ProtocolStats{};
  }

  /// Total violations detected across all replicas.
  std::uint64_t violations_detected() const;

  /// Memory-barrier helper for external observers on the threaded
  /// runtime: acquiring and releasing the coordinator mutex orders every
  /// prior handler-side write before the caller's subsequent reads.
  void synchronize() const { std::lock_guard<std::recursive_mutex> lock(mutex_); }

  // --- crash recovery & fault injection ----------------------------------------

  /// The write-ahead journal, or nullptr when journaling is disabled.
  const store::Journal* journal() const { return journal_.get(); }

  /// True when the journal replay at construction found records from a
  /// previous incarnation (i.e. this coordinator is a restart).
  bool recovered() const {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    return recovered_any_;
  }

  /// Redo-and-resend phase of recovery: call once after every object has
  /// been re-registered. Returns handles of runs resumed in flight.
  std::vector<RunHandle> resume_recovered_runs();

  /// Arm a named crash point (see the names in replica.cpp): the next
  /// time protocol processing passes it, a SimulatedCrash unwinds to the
  /// coordinator entry point and the coordinator goes permanently inert
  /// (as if the process had been killed). Empty disarms.
  void arm_crash_point(std::string point) {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    armed_crash_point_ = std::move(point);
  }
  bool crashed() const {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    return crashed_;
  }

  /// Peers the transport reported as unreachable (max_retransmits
  /// exhausted on some frame). Evidence-logged as "peer.suspect".
  std::set<PartyId> suspected_peers() const {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    return suspects_;
  }

 private:
  /// Shared anchor for callbacks that can outlive the coordinator
  /// (clock timers, the transport's delivery-failure handler). The
  /// callback locks the anchor, null-checks, and only then touches the
  /// coordinator; ~Coordinator nulls the pointer under the anchor mutex,
  /// which blocks until any in-flight callback has finished.
  struct TimerAnchor {
    std::mutex mutex;
    Coordinator* coordinator = nullptr;
  };

  void replay_journal();
  void replay_object_record(std::uint8_t type,
                            Replica::RecoveredObjectState& rec,
                            wire::Decoder& dec);
  void handle_delivery_failure(const PartyId& to);
  static RunHandle aborted_handle(std::string diagnostic);
  void on_message(const PartyId& from, const Bytes& payload);
  void record_evidence(const std::string& kind, const Bytes& payload);
  void send(const PartyId& to, const Envelope& envelope);

  PartyId self_;
  crypto::RsaPrivateKey key_;
  std::shared_ptr<net::Rng> rng_;
  net::Transport& transport_;
  net::Clock& clock_;
  const crypto::TimestampService* tss_;

  /// Serialises message dispatch, local propagation, timers and external
  /// accessors. Recursive because replica callbacks (key learning,
  /// evidence, sends) re-enter coordinator methods while handling a
  /// message under the lock.
  mutable std::recursive_mutex mutex_;

  SponsorPolicy sponsor_policy_;
  DecisionRule decision_rule_;
  std::map<PartyId, crypto::RsaPublicKey> known_keys_;
  std::unordered_map<ObjectId, std::unique_ptr<Replica>> replicas_;

  store::EvidenceLog evidence_;
  store::CheckpointStore checkpoints_;
  store::MessageStore messages_;
  std::function<void(const CoordEvent&)> observer_;
  ProtocolStats protocol_stats_;

  // --- crash recovery & fault injection ----------------------------------------
  std::unique_ptr<store::Journal> journal_;
  std::shared_ptr<TimerAnchor> anchor_;
  /// Per-object state reconstructed by the journal replay, consumed by
  /// register_object.
  std::unordered_map<ObjectId, Replica::RecoveredObjectState> recovered_;
  bool recovered_any_ = false;
  bool crashed_ = false;
  std::string armed_crash_point_;
  std::set<PartyId> suspects_;
  std::uint64_t run_probe_interval_micros_;
  int max_run_probes_;
};

}  // namespace b2b::core
