// Coordinator: the per-organisation B2BCoordinator (Figure 4).
//
// One Coordinator runs at each organisation. It owns the party's replicas
// (one per shared object), the certificate directory (party -> public key),
// the non-repudiation log (with trusted time-stamps), the checkpoint store
// and the protocol message store, and it connects the replicas to the
// reliable transport. Its propagate_* methods are the paper's
// B2BCoordinatorLocal propagation interface: they insulate the application
// (the Controller) from protocol-specific detail.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "b2b/replica.hpp"
#include "crypto/timestamp.hpp"
#include "net/reliable.hpp"
#include "store/evidence_log.hpp"

namespace b2b::core {

class Coordinator {
 public:
  struct Config {
    PartyId self;
    crypto::RsaPrivateKey key;
    std::uint64_t rng_seed = 0;
    /// Sponsor selection for membership protocols; must match federation-
    /// wide (§4.5.1 and its footnote 2).
    SponsorPolicy sponsor_policy = SponsorPolicy::kRotating;
    /// Group decision rule (§7 majority-resolution extension); must match
    /// federation-wide.
    DecisionRule decision_rule = DecisionRule::kUnanimous;
  };

  /// Per-message-type send counters (protocol-level, before transport
  /// retransmission), used by the message-complexity benches (E6).
  struct ProtocolStats {
    std::map<MsgType, std::uint64_t> sent_by_type;
    std::uint64_t envelopes_sent = 0;
    std::uint64_t envelope_bytes_sent = 0;
  };

  /// `tss` may be null (evidence is then logged without trusted stamps).
  Coordinator(Config config, net::ReliableEndpoint& endpoint,
              const crypto::TimestampService* tss);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  const PartyId& self() const { return self_; }
  const crypto::RsaPublicKey& public_key() const {
    return key_.public_key();
  }

  // --- certificate management ------------------------------------------------

  void add_known_party(const PartyId& party, crypto::RsaPublicKey key);
  const crypto::RsaPublicKey* key_of(const PartyId& party) const;
  /// Snapshot of the directory (for building an EvidenceVerifier).
  std::map<PartyId, crypto::RsaPublicKey> key_directory() const;

  // --- objects ------------------------------------------------------------------

  /// Create (and own) the replica for `object`, wrapping `impl`. The
  /// caller keeps ownership of `impl` and must outlive the coordinator.
  Replica& register_object(const ObjectId& object, B2BObject& impl);
  Replica& replica(const ObjectId& object);
  const Replica& replica(const ObjectId& object) const;
  bool has_object(const ObjectId& object) const;

  /// Enable TTP-certified termination (§7 extension) for one object.
  void enable_ttp_termination(const ObjectId& object,
                              Replica::TtpConfig config);

  // --- B2BCoordinatorLocal propagation interface (§5) -------------------------

  RunHandle propagate_new_state(const ObjectId& object, Bytes new_state);
  RunHandle propagate_update(const ObjectId& object, Bytes update,
                             Bytes new_state);
  RunHandle propagate_connect(const ObjectId& object, const PartyId& via);
  RunHandle propagate_disconnect(const ObjectId& object);
  RunHandle propagate_eviction(const ObjectId& object,
                               std::vector<PartyId> subjects);

  // --- stores & evidence ---------------------------------------------------------

  const store::EvidenceLog& evidence() const { return evidence_; }
  store::CheckpointStore& checkpoints() { return checkpoints_; }
  const store::MessageStore& messages() const { return messages_; }

  /// Evidence payloads are framed as {original payload, optional TSS
  /// stamp}; this unpacks one.
  struct EvidencePayload {
    Bytes payload;
    std::optional<crypto::Timestamp> timestamp;
  };
  static EvidencePayload decode_evidence_payload(BytesView framed);

  // --- observation -----------------------------------------------------------------

  /// Observer invoked for every CoordEvent from any replica.
  void set_observer(std::function<void(const CoordEvent&)> observer) {
    observer_ = std::move(observer);
  }

  const ProtocolStats& protocol_stats() const { return protocol_stats_; }
  void reset_protocol_stats() { protocol_stats_ = ProtocolStats{}; }

  /// Total violations detected across all replicas.
  std::uint64_t violations_detected() const;

 private:
  void on_message(const PartyId& from, const Bytes& payload);
  void record_evidence(const std::string& kind, const Bytes& payload);
  void send(const PartyId& to, const Envelope& envelope);

  PartyId self_;
  crypto::RsaPrivateKey key_;
  crypto::ChaCha20Rng rng_;
  net::ReliableEndpoint& endpoint_;
  const crypto::TimestampService* tss_;

  SponsorPolicy sponsor_policy_;
  DecisionRule decision_rule_;
  std::map<PartyId, crypto::RsaPublicKey> known_keys_;
  std::unordered_map<ObjectId, std::unique_ptr<Replica>> replicas_;

  store::EvidenceLog evidence_;
  store::CheckpointStore checkpoints_;
  store::MessageStore messages_;
  std::function<void(const CoordEvent&)> observer_;
  ProtocolStats protocol_stats_;
};

}  // namespace b2b::core
