// Connection and disconnection protocols (§4.5): sponsor-coordinated
// membership changes with rotating sponsor selection, eviction (including
// sponsor-initiated eviction without a request step) and non-vetoable
// voluntary disconnection.
#include <algorithm>

#include "b2b/recovery.hpp"
#include "b2b/replica.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace b2b::core {

namespace {

/// Body of kConnectRequest / kDisconnectRequest envelopes: the signed
/// membership request plus the sender's signature.
Bytes encode_request_with_signature(const MembershipRequest& request,
                                    const Bytes& signature) {
  wire::Encoder enc;
  request.encode_into(enc);
  enc.blob(signature);
  return std::move(enc).take();
}

std::pair<MembershipRequest, Bytes> decode_request_with_signature(
    BytesView body) {
  wire::Decoder dec{body};
  MembershipRequest request = MembershipRequest::decode_from(dec);
  Bytes signature = dec.blob();
  dec.expect_done();
  return {std::move(request), std::move(signature)};
}

bool contains(const std::vector<PartyId>& list, const PartyId& party) {
  return std::find(list.begin(), list.end(), party) != list.end();
}

/// Legitimate sponsor for disconnection of a subject *set*: under the
/// rotating policy the most recently joined member not itself being
/// removed (§4.5.1); under the fixed policy the oldest such member
/// (footnote 2).
std::optional<PartyId> sponsor_for_removal(const std::vector<PartyId>& members,
                                           const std::vector<PartyId>& subjects,
                                           SponsorPolicy policy) {
  if (policy == SponsorPolicy::kRotating) {
    for (auto it = members.rbegin(); it != members.rend(); ++it) {
      if (!contains(subjects, *it)) return *it;
    }
    return std::nullopt;
  }
  for (const PartyId& member : members) {
    if (!contains(subjects, member)) return member;
  }
  return std::nullopt;
}

/// The member list that would result from the request.
std::optional<std::vector<PartyId>> resulting_members(
    const std::vector<PartyId>& members, const MembershipRequest& request) {
  std::vector<PartyId> out;
  switch (request.kind) {
    case MembershipKind::kConnect: {
      if (request.subjects.size() != 1) return std::nullopt;
      if (contains(members, request.subjects[0])) return std::nullopt;
      out = members;
      out.push_back(request.subjects[0]);  // joins as most recent member
      return out;
    }
    case MembershipKind::kEvict:
    case MembershipKind::kVoluntaryDisconnect: {
      if (request.subjects.empty()) return std::nullopt;
      for (const PartyId& subject : request.subjects) {
        if (!contains(members, subject)) return std::nullopt;
      }
      for (const PartyId& member : members) {
        if (!contains(request.subjects, member)) out.push_back(member);
      }
      if (out.empty()) return std::nullopt;  // cannot empty the group
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace

// ---------------------------------------------------------------------------
// Subject-side API
// ---------------------------------------------------------------------------

RunHandle Replica::request_connect(const PartyId& via) {
  auto handle = std::make_shared<RunResult>();
  if (connected_) {
    complete(handle, RunResult::Outcome::kAborted, "already connected", {}, 0,
             "");
    return handle;
  }
  if (subject_request_.has_value()) {
    complete(handle, RunResult::Outcome::kAborted,
             "a connect/disconnect request is already pending", {}, 0, "");
    return handle;
  }
  MembershipRequest request;
  request.kind = MembershipKind::kConnect;
  request.sender = self_;
  request.object = object_;
  request.subjects = {self_};
  request.subject_public_key = key_.public_key().encode();
  request.request_nonce = fresh_random();
  Bytes signature = key_.sign(request.signed_bytes());

  callbacks_.record_evidence(evidence_kind::kMembershipRequest,
                             request.encode());
  journal_subject_request(request, signature, via,
                          /*relayed_eviction=*/false);
  hit_crash_point("m-request.journaled");
  send_envelope(via, MsgType::kConnectRequest,
                encode_request_with_signature(request, signature));
  arm_subject_probe(to_hex(request.request_nonce), 1);
  subject_request_ = SubjectRequest{std::move(request), handle};
  return handle;
}

RunHandle Replica::request_disconnect() {
  auto handle = std::make_shared<RunResult>();
  if (!connected_) {
    complete(handle, RunResult::Outcome::kAborted, "not connected", {}, 0, "");
    return handle;
  }
  if (subject_request_.has_value()) {
    complete(handle, RunResult::Outcome::kAborted,
             "a connect/disconnect request is already pending", {}, 0, "");
    return handle;
  }
  if (busy()) {
    complete(handle, RunResult::Outcome::kAborted,
             "busy: another coordination run is active", {}, 0, "");
    return handle;
  }
  if (members_.size() == 1) {
    // Sole member: nothing to coordinate.
    connected_ = false;
    abort_runs_on_departure();
    journal_snapshot();
    complete(handle, RunResult::Outcome::kAgreed, "", {}, last_seen_seq_, "");
    return handle;
  }
  MembershipRequest request;
  request.kind = MembershipKind::kVoluntaryDisconnect;
  request.sender = self_;
  request.object = object_;
  request.subjects = {self_};
  request.request_nonce = fresh_random();
  Bytes signature = key_.sign(request.signed_bytes());

  callbacks_.record_evidence(evidence_kind::kMembershipRequest,
                             request.encode());
  const PartyId sponsor = disconnect_sponsor(self_);
  journal_subject_request(request, signature, sponsor,
                          /*relayed_eviction=*/false);
  hit_crash_point("m-request.journaled");
  send_envelope(sponsor, MsgType::kDisconnectRequest,
                encode_request_with_signature(request, signature));
  arm_subject_probe(to_hex(request.request_nonce), 1);
  subject_request_ = SubjectRequest{std::move(request), handle};
  return handle;
}

RunHandle Replica::propose_eviction(std::vector<PartyId> subjects) {
  auto handle = std::make_shared<RunResult>();
  if (!connected_) {
    complete(handle, RunResult::Outcome::kAborted, "not connected", {}, 0, "");
    return handle;
  }
  if (subjects.empty() || contains(subjects, self_)) {
    complete(handle, RunResult::Outcome::kAborted,
             "invalid eviction subject set (use request_disconnect to leave)",
             {}, 0, "");
    return handle;
  }
  for (const PartyId& subject : subjects) {
    if (!is_member(subject)) {
      complete(handle, RunResult::Outcome::kAborted,
               "eviction subject " + subject.str() + " is not a member", {},
               0, "");
      return handle;
    }
  }
  MembershipRequest request;
  request.kind = MembershipKind::kEvict;
  request.sender = self_;
  request.object = object_;
  request.subjects = std::move(subjects);
  request.request_nonce = fresh_random();
  Bytes signature = key_.sign(request.signed_bytes());
  callbacks_.record_evidence(evidence_kind::kMembershipRequest,
                             request.encode());

  std::optional<PartyId> sponsor =
      sponsor_for_removal(members_, request.subjects, sponsor_policy_);
  if (!sponsor.has_value()) {
    complete(handle, RunResult::Outcome::kAborted,
             "no eligible sponsor for this eviction", {}, 0, "");
    return handle;
  }
  if (*sponsor == self_) {
    // §4.5.4: when the sponsor proposes the eviction the request step is
    // omitted; the sponsor coordinates directly.
    return start_membership_run(std::move(request), std::move(signature),
                                handle);
  }
  if (relayed_eviction_result_.has_value()) {
    complete(handle, RunResult::Outcome::kAborted,
             "an eviction request is already pending", {}, 0, "");
    return handle;
  }
  journal_subject_request(request, signature, *sponsor,
                          /*relayed_eviction=*/true);
  hit_crash_point("m-request.journaled");
  send_envelope(*sponsor, MsgType::kConnectRequest,
                encode_request_with_signature(request, signature));
  arm_subject_probe(to_hex(request.request_nonce), 1);
  relayed_eviction_nonce_ = to_hex(request.request_nonce);
  relayed_eviction_result_ = handle;
  return handle;
}

// ---------------------------------------------------------------------------
// Sponsor side
// ---------------------------------------------------------------------------

void Replica::forward_membership_request(const MembershipRequest& request,
                                         const Bytes& signature,
                                         const PartyId& exclude) {
  // Bounded best-effort forwarding: a request that reaches a departed
  // party is handed to another member of its last known view. The bound
  // prevents forwarding cycles among parties with stale views.
  std::string nonce_key = to_hex(request.request_nonce);
  if (++forward_counts_[nonce_key] > 3) return;
  for (const PartyId& member : members_) {
    if (member == self_ || member == exclude) continue;
    send_envelope(member,
                  request.kind == MembershipKind::kVoluntaryDisconnect
                      ? MsgType::kDisconnectRequest
                      : MsgType::kConnectRequest,
                  encode_request_with_signature(request, signature));
    return;
  }
}

void Replica::handle_connect_request(const PartyId& from, const Bytes& body) {
  auto [request, signature] = decode_request_with_signature(body);
  if (!connected_) {
    forward_membership_request(request, signature, from);
    return;
  }

  if (request.object != object_) {
    record_violation("membership request for wrong object", from);
    return;
  }

  if (request.kind == MembershipKind::kConnect) {
    if (request.subjects.size() != 1 || request.sender != request.subjects[0]) {
      record_violation("malformed connect request", from);
      return;
    }
    crypto::RsaPublicKey subject_key;
    try {
      subject_key = crypto::RsaPublicKey::decode(request.subject_public_key);
    } catch (const CodecError&) {
      record_violation("connect request with undecodable key", from);
      return;
    }
    if (!subject_key.verify(request.signed_bytes(), signature)) {
      record_violation("bad signature on connect request", from);
      return;
    }
    callbacks_.record_evidence(evidence_kind::kMembershipRequest,
                               request.encode());
    process_membership_request(std::move(request), std::move(signature));
    return;
  }

  if (request.kind == MembershipKind::kEvict) {
    // `from` may be a relaying member, not the proposer: authenticate by
    // the proposer's signature.
    if (!is_member(request.sender)) {
      record_violation("eviction request from non-member", from);
      return;
    }
    const crypto::RsaPublicKey* pub = callbacks_.key_of(request.sender);
    if (pub == nullptr || !pub->verify(request.signed_bytes(), signature)) {
      record_violation("bad signature on eviction request", from);
      return;
    }
    if (contains(request.subjects, request.sender)) {
      record_violation("party requested its own eviction", from);
      return;
    }
    callbacks_.record_evidence(evidence_kind::kMembershipRequest,
                               request.encode());
    process_membership_request(std::move(request), std::move(signature));
    return;
  }

  record_violation("unexpected membership request kind", from);
}

void Replica::handle_disconnect_request(const PartyId& from,
                                        const Bytes& body) {
  auto [request, signature] = decode_request_with_signature(body);
  if (!connected_) {
    forward_membership_request(request, signature, from);
    return;
  }
  if (request.kind != MembershipKind::kVoluntaryDisconnect ||
      request.subjects.size() != 1 || request.sender != request.subjects[0]) {
    record_violation("malformed disconnect request", from);
    return;
  }
  // `from` may be a relaying member; the subject's signature is what
  // authenticates the request.
  if (request.object != object_ || !is_member(request.sender)) {
    record_violation("disconnect request from non-member", from);
    return;
  }
  const crypto::RsaPublicKey* pub = callbacks_.key_of(request.sender);
  if (pub == nullptr || !pub->verify(request.signed_bytes(), signature)) {
    record_violation("bad signature on disconnect request", from);
    return;
  }
  callbacks_.record_evidence(evidence_kind::kMembershipRequest,
                             request.encode());
  process_membership_request(std::move(request), std::move(signature));
}

void Replica::process_membership_request(MembershipRequest request,
                                         Bytes signature) {
  B2B_DEBUG(self_, " processing membership request kind=",
            static_cast<int>(request.kind), " from ", request.sender,
            " busy=", busy(), " connected=", connected_);
  if (!connected_) {
    // We departed while this request waited: hand it to another member of
    // our last known view (best effort) so the requester is not stranded.
    forward_membership_request(request, signature, self_);
    return;
  }
  const PartyId& subject = request.subjects.empty() ? request.sender
                                                    : request.subjects[0];

  // Re-resolve the legitimate sponsor at processing time (membership may
  // have changed while the request waited): relay if it is not us.
  if (request.kind == MembershipKind::kConnect) {
    if (connect_sponsor() != self_) {
      send_envelope(connect_sponsor(), MsgType::kConnectRequest,
                    encode_request_with_signature(request, signature));
      return;
    }
  } else {
    std::optional<PartyId> sponsor =
        sponsor_for_removal(members_, request.subjects, sponsor_policy_);
    if (!sponsor.has_value()) return;  // request no longer applicable
    if (*sponsor != self_) {
      send_envelope(*sponsor,
                    request.kind == MembershipKind::kVoluntaryDisconnect
                        ? MsgType::kDisconnectRequest
                        : MsgType::kConnectRequest,
                    encode_request_with_signature(request, signature));
      return;
    }
  }

  // §4.5.1: "The sponsor is also responsible for blocking new coordination
  // requests pending decision on any active request" — defer, don't drop.
  if (busy()) {
    if (deferred_membership_.size() >= kMaxDeferredMembership) {
      record_anomaly("deferred-membership queue full; request dropped",
                     request.sender);
      return;
    }
    deferred_membership_.emplace_back(std::move(request),
                                      std::move(signature));
    return;
  }

  // Act on each distinct request once, however many relayed or deferred
  // copies reach us (the nonce uniquely labels the request). A duplicate
  // from a crashed-and-recovered subject re-probing under its original
  // nonce is re-answered from the stored answer (journal-gated).
  std::string nonce_key = to_hex(request.request_nonce);
  if (!sponsor_nonces_.insert(nonce_key)) {
    maybe_reanswer_membership_request(nonce_key, subject);
    return;
  }

  switch (request.kind) {
    case MembershipKind::kConnect: {
      auto reject_subject = [&] {
        ConnectRejectMsg reject;
        reject.sponsor = self_;
        reject.object = object_;
        reject.request_nonce = request.request_nonce;
        reject.signature = key_.sign(reject.signed_bytes());
        Bytes encoded = reject.encode();
        remember_subject_answer(nonce_key, subject, MsgType::kConnectReject,
                                encoded);
        send_envelope(subject, MsgType::kConnectReject, std::move(encoded));
      };
      if (is_member(subject)) {
        reject_subject();
        return;
      }
      // The sponsor's own local policy can reject immediately (§4.5.3).
      ValidationContext ctx{self_, subject, object_, next_sequence()};
      if (!impl_.validate_connect(subject, ctx).accept) {
        reject_subject();
        return;
      }
      start_membership_run(std::move(request), std::move(signature), nullptr);
      return;
    }
    case MembershipKind::kEvict: {
      if (!is_member(request.sender)) return;  // proposer departed meanwhile
      ValidationContext ctx{self_, request.sender, object_, next_sequence()};
      for (const PartyId& evictee : request.subjects) {
        if (!is_member(evictee)) return;  // stale request
        if (!impl_.validate_disconnect(evictee, /*eviction=*/true, ctx)
                 .accept) {
          return;  // sponsor locally rejects; proposer remains pending
        }
      }
      start_membership_run(std::move(request), std::move(signature), nullptr);
      return;
    }
    case MembershipKind::kVoluntaryDisconnect: {
      if (!is_member(subject)) return;  // already gone
      // Voluntary disconnection cannot be vetoed (§4.5.4) — no upcall gate.
      start_membership_run(std::move(request), std::move(signature), nullptr);
      return;
    }
  }
}

void Replica::drain_deferred_membership() {
  while (!deferred_membership_.empty() && (!busy() || !connected_)) {
    auto [request, signature] = std::move(deferred_membership_.front());
    deferred_membership_.pop_front();
    process_membership_request(std::move(request), std::move(signature));
  }
}

RunHandle Replica::start_membership_run(MembershipRequest request,
                                        Bytes request_signature,
                                        RunHandle handle) {
  if (!handle) handle = std::make_shared<RunResult>();
  std::optional<std::vector<PartyId>> new_members =
      resulting_members(members_, request);
  if (!new_members.has_value()) {
    complete(handle, RunResult::Outcome::kAborted,
             "membership request does not apply to the current group", {}, 0,
             "");
    return handle;
  }

  B2B_DEBUG(self_, " sponsoring membership run kind=",
            static_cast<int>(request.kind), " subject=",
            request.subjects.empty() ? request.sender : request.subjects[0]);
  SponsorRun run;
  run.authenticator = fresh_random();
  run.result = handle;

  MembershipProposal& prop = run.propose.proposal;
  prop.sponsor = self_;
  prop.object = object_;
  prop.request = std::move(request);
  prop.request_signature = std::move(request_signature);
  prop.current_group = group_tuple_;
  prop.new_group = GroupTuple{next_sequence(),
                              crypto::Sha256::hash(run.authenticator),
                              hash_members(*new_members)};
  prop.agreed = agreed_tuple_;
  prop.new_members = std::move(*new_members);
  run.propose.signature = key_.sign(prop.signed_bytes());

  note_sequence(prop.new_group.sequence);
  const std::string label = prop.new_group.label();
  seen_run_labels_.insert(label);

  // Recipient set: current members minus the sponsor minus any subject
  // being removed (connect subjects are not yet members).
  for (const PartyId& member : members_) {
    if (member == self_) continue;
    if (prop.request.kind != MembershipKind::kConnect &&
        contains(prop.request.subjects, member)) {
      continue;
    }
    run.recipients.push_back(member);
  }

  Bytes encoded = run.propose.encode();
  hit_crash_point("m-propose.pre-journal");
  if (journaling()) {
    SponsorRunRecord record{run.propose, run.authenticator, run.recipients};
    wire::Encoder enc;
    enc.blob(record.encode());
    journal_record(walrec::kSponsorRun, std::move(enc).take());
  }
  callbacks_.record_evidence(evidence_kind::kMembershipPropose, encoded);
  journal_barrier();
  hit_crash_point("m-propose.journaled");
  for (const PartyId& recipient : run.recipients) {
    messages_.add(label, {"sent", "m.propose", recipient.str(), encoded});
    send_envelope(recipient, MsgType::kMembershipPropose, encoded);
  }

  sponsor_run_ = std::move(run);
  arm_membership_probe(label, /*as_sponsor=*/true, 1);
  hit_crash_point("m-propose.sent");
  if (sponsor_run_->recipients.empty()) {
    finish_membership_run_as_sponsor();
  }
  return handle;
}

void Replica::handle_membership_respond(const PartyId& from,
                                        const Bytes& body) {
  MembershipRespondMsg msg = MembershipRespondMsg::decode(body);
  const MembershipResponse& resp = msg.response;

  if (resp.responder != from) {
    record_violation("membership response sender mismatch", from);
    return;
  }
  if (!sponsor_run_.has_value() ||
      sponsor_run_->propose.proposal.new_group != resp.new_group) {
    const std::string stray = resp.new_group.label();
    if (journaling() && seen_run_labels_.contains(stray)) {
      // A recipient re-probing a membership run we already closed (it may
      // have lost our decide in its crash window): re-send the stored
      // decide so it can conclude.
      if (maybe_resend_membership_decide(stray, from)) return;
      record_anomaly("membership response for closed run " + stray, from);
      return;
    }
    record_violation("membership response for no active run", from);
    return;
  }
  SponsorRun& run = *sponsor_run_;
  if (!contains(run.recipients, from)) {
    record_violation("membership response from non-recipient", from);
    return;
  }
  const crypto::RsaPublicKey* pub = callbacks_.key_of(from);
  if (pub == nullptr || !pub->verify(resp.signed_bytes(), msg.signature)) {
    record_violation("bad signature on membership response", from);
    return;
  }
  auto existing = run.responses.find(from);
  if (existing != run.responses.end()) {
    if (!(existing->second == msg)) {
      callbacks_.record_evidence(evidence_kind::kMembershipRespond,
                                 msg.encode());
      record_violation("equivocating membership responses", from);
    }
    return;
  }
  const std::string label = resp.new_group.label();
  if (journaling()) {
    wire::Encoder enc;
    enc.blob(msg.encode());
    journal_record(walrec::kMembershipResponse, std::move(enc).take());
  }
  messages_.add(label, {"received", "m.respond", from.str(), body});
  callbacks_.record_evidence(evidence_kind::kMembershipRespond, msg.encode());
  journal_barrier();
  hit_crash_point("m-response.journaled");
  run.responses.emplace(from, std::move(msg));

  if (run.responses.size() == run.recipients.size()) {
    finish_membership_run_as_sponsor();
  }
}

void Replica::finish_membership_run_as_sponsor() {
  SponsorRun run = std::move(*sponsor_run_);
  sponsor_run_.reset();
  const MembershipProposal& prop = run.propose.proposal;
  const std::string label = prop.new_group.label();

  MembershipDecideMsg decide;
  decide.sponsor = self_;
  decide.object = object_;
  decide.new_group = prop.new_group;
  decide.authenticator = run.authenticator;

  std::vector<PartyId> vetoers;
  std::string first_diagnostic;
  bool views_consistent = true;
  for (const PartyId& recipient : run.recipients) {
    const MembershipRespondMsg& resp = run.responses.at(recipient);
    decide.responses.push_back(resp);
    const MembershipResponse& r = resp.response;
    if (!r.decision.accept) {
      vetoers.push_back(recipient);
      if (first_diagnostic.empty()) first_diagnostic = r.decision.diagnostic;
    } else if (r.group_view != prop.current_group ||
               r.agreed_view != prop.agreed) {
      record_violation("inconsistent accept in membership response",
                       recipient);
      views_consistent = false;
      vetoers.push_back(recipient);
    }
  }
  bool agreed = vetoers.empty() && views_consistent;

  B2B_DEBUG(self_, " membership run ", label, " agreed=", agreed);
  Bytes encoded = decide.encode();
  hit_crash_point("m-decide.pre-journal");
  if (journaling()) {
    wire::Encoder enc;
    enc.blob(encoded);
    journal_record(walrec::kMembershipDecideSent, std::move(enc).take());
  }
  callbacks_.record_evidence(evidence_kind::kMembershipDecide, encoded);
  journal_barrier();
  hit_crash_point("m-decide.journaled");
  bool first_send = true;
  for (const PartyId& recipient : run.recipients) {
    messages_.add(label, {"sent", "m.decide", recipient.str(), encoded});
    send_envelope(recipient, MsgType::kMembershipDecide, encoded);
    if (first_send) {
      first_send = false;
      hit_crash_point("m-decide.mid-send");
    }
  }
  hit_crash_point("m-decide.sent");

  const std::string nonce_key = to_hex(prop.request.request_nonce);
  if (agreed) {
    apply_membership_change(prop);
    if (prop.request.kind == MembershipKind::kConnect) {
      // Deliver the agreed state and the full member/key directory to the
      // new member (§4.5.3).
      ConnectWelcomeMsg welcome;
      welcome.sponsor = self_;
      welcome.object = object_;
      welcome.new_group = prop.new_group;
      welcome.members = prop.new_members;
      for (const PartyId& member : prop.new_members) {
        if (member == prop.request.sender) {
          welcome.member_public_keys.push_back(prop.request.subject_public_key);
        } else {
          const crypto::RsaPublicKey* pub = callbacks_.key_of(member);
          welcome.member_public_keys.push_back(pub != nullptr ? pub->encode()
                                                              : Bytes{});
        }
      }
      welcome.agreed = agreed_tuple_;
      welcome.agreed_state = agreed_state_;
      welcome.responses = decide.responses;
      welcome.authenticator = run.authenticator;
      welcome.sponsor_signature = key_.sign(welcome.signed_bytes());
      Bytes welcome_encoded = welcome.encode();
      remember_subject_answer(nonce_key, prop.request.sender,
                              MsgType::kConnectWelcome, welcome_encoded);
      send_envelope(prop.request.sender, MsgType::kConnectWelcome,
                    std::move(welcome_encoded));
    } else if (prop.request.kind == MembershipKind::kVoluntaryDisconnect) {
      DisconnectConfirmMsg confirm;
      confirm.sponsor = self_;
      confirm.object = object_;
      confirm.new_group = prop.new_group;
      confirm.responses = decide.responses;
      confirm.authenticator = run.authenticator;
      Bytes confirm_encoded = confirm.encode();
      remember_subject_answer(nonce_key, prop.request.subjects[0],
                              MsgType::kDisconnectConfirm, confirm_encoded);
      send_envelope(prop.request.subjects[0], MsgType::kDisconnectConfirm,
                    std::move(confirm_encoded));
    }
    complete(run.result, RunResult::Outcome::kAgreed, "", {},
             prop.new_group.sequence, label);
  } else {
    if (prop.request.kind == MembershipKind::kConnect) {
      // §4.5.3: a vetoed subject receives exactly the same rejection shape
      // as an immediately rejected one.
      ConnectRejectMsg reject;
      reject.sponsor = self_;
      reject.object = object_;
      reject.request_nonce = prop.request.request_nonce;
      reject.signature = key_.sign(reject.signed_bytes());
      Bytes reject_encoded = reject.encode();
      remember_subject_answer(nonce_key, prop.request.sender,
                              MsgType::kConnectReject, reject_encoded);
      send_envelope(prop.request.sender, MsgType::kConnectReject,
                    std::move(reject_encoded));
    } else if (prop.request.kind == MembershipKind::kVoluntaryDisconnect) {
      // The departure itself cannot be refused (§4.5.4); a veto here only
      // means a recipient's view was transiently inconsistent or busy
      // (e.g. a racing state run). Retry with backoff — an immediate
      // retry would keep colliding with a steady stream of state runs —
      // up to a bound.
      int attempt = ++voluntary_retry_counts_[nonce_key];
      if (attempt <= kMaxVoluntaryRetries) {
        sponsor_nonces_.erase(nonce_key);
        if (callbacks_.schedule) {
          std::uint64_t backoff =
              50'000ull * static_cast<std::uint64_t>(attempt);
          callbacks_.schedule(
              backoff, [this, request = prop.request,
                        signature = prop.request_signature]() mutable {
                process_membership_request(std::move(request),
                                           std::move(signature));
              });
        } else {
          deferred_membership_.emplace_back(prop.request,
                                            prop.request_signature);
        }
      }
    }
    complete(run.result, RunResult::Outcome::kVetoed, first_diagnostic,
             std::move(vetoers), prop.new_group.sequence, label);
  }
  // A relayed eviction whose sponsorship rotated to the requester itself:
  // we are both requester and sponsor, so no decide message ever comes
  // back to settle the relayed handle (that normally happens on decide
  // receipt) — settle it here.
  if (relayed_eviction_result_.has_value() &&
      prop.request.kind == MembershipKind::kEvict &&
      prop.request.sender == self_ &&
      to_hex(prop.request.request_nonce) == relayed_eviction_nonce_) {
    RunHandle relayed = *relayed_eviction_result_;
    relayed_eviction_result_.reset();
    close_subject_request(to_hex(prop.request.request_nonce));
    complete(relayed,
             agreed ? RunResult::Outcome::kAgreed : RunResult::Outcome::kVetoed,
             agreed ? "" : first_diagnostic, {}, prop.new_group.sequence,
             label);
  }
  journal_run_closed(walrec::kSponsorClosed, label);
  hit_crash_point("m-decide.installed");
  drain_deferred_membership();
}

// ---------------------------------------------------------------------------
// Recipient side
// ---------------------------------------------------------------------------

void Replica::handle_membership_propose(const PartyId& from,
                                        const Bytes& body) {
  MembershipProposeMsg msg = MembershipProposeMsg::decode(body);
  const MembershipProposal& prop = msg.proposal;

  if (prop.sponsor != from) {
    record_violation("membership proposal from wrong party", from);
    return;
  }
  const crypto::RsaPublicKey* pub = callbacks_.key_of(from);
  if (pub == nullptr || !pub->verify(prop.signed_bytes(), msg.signature)) {
    record_violation("bad signature on membership proposal", from);
    return;
  }
  if (!connected_ || !is_member(from)) {
    // We have departed (or the sponsor is outside our group view): send a
    // signed reject so the sponsor's run terminates instead of blocking.
    if (connected_ && !is_member(from)) {
      record_anomaly("membership proposal from non-member", from);
    }
    MembershipResponse stale;
    stale.responder = self_;
    stale.object = object_;
    stale.new_group = prop.new_group;
    stale.group_view = group_tuple_;
    stale.agreed_view = agreed_tuple_;
    stale.decision = Decision::rejected(
        connected_ ? "inconsistent group view"
                   : "recipient has disconnected from this group");
    MembershipRespondMsg out;
    out.response = stale;
    out.signature = key_.sign(stale.signed_bytes());
    callbacks_.record_evidence(evidence_kind::kMembershipRespond,
                               out.encode());
    send_envelope(from, MsgType::kMembershipRespond, out.encode());
    return;
  }
  if (prop.object != object_) {
    record_violation("membership proposal for wrong object", from);
    return;
  }
  const std::string label = prop.new_group.label();
  if (seen_run_labels_.contains(label)) {
    if (journaling()) {
      // A crashed-and-recovered sponsor re-driving its run: if we still
      // hold an open responder run for this label, re-send our journaled
      // response; if we already concluded it, note the duplicate without
      // blame (the sponsor lost our response in its crash window).
      auto open = membership_responder_runs_.find(label);
      if (open != membership_responder_runs_.end() &&
          open->second.propose.proposal.sponsor == from) {
        record_anomaly("re-sent membership response for run " + label, from);
        send_envelope(from, MsgType::kMembershipRespond,
                      open->second.my_response.encode());
        return;
      }
      record_anomaly("duplicate membership proposal " + label, from);
      return;
    }
    record_violation("replayed membership proposal " + label, from);
    return;
  }
  seen_run_labels_.insert(label);
  note_sequence(prop.new_group.sequence);
  callbacks_.record_evidence(evidence_kind::kMembershipPropose, msg.encode());
  messages_.add(label, {"received", "m.propose", from.str(), body});

  Decision decision = evaluate_membership_proposal(msg);

  MembershipResponse resp;
  resp.responder = self_;
  resp.object = object_;
  resp.new_group = prop.new_group;
  resp.group_view = group_tuple_;
  resp.agreed_view = agreed_tuple_;
  resp.decision = decision;

  MembershipRespondMsg out;
  out.response = resp;
  out.signature = key_.sign(resp.signed_bytes());

  MembershipResponderRun run;
  run.propose = msg;
  run.my_response = out;
  run.members_at_response = members_;

  Bytes encoded = out.encode();
  if (journaling()) {
    MembershipResponderRunRecord record{run.propose, run.my_response,
                                        run.members_at_response};
    wire::Encoder enc;
    enc.blob(record.encode());
    journal_record(walrec::kMembershipResponderRun, std::move(enc).take());
  }
  membership_responder_runs_.emplace(label, std::move(run));
  callbacks_.record_evidence(evidence_kind::kMembershipRespond, encoded);
  messages_.add(label, {"sent", "m.respond", from.str(), encoded});
  journal_barrier();
  hit_crash_point("m-respond.journaled");
  send_envelope(from, MsgType::kMembershipRespond, encoded);
  arm_membership_probe(label, /*as_sponsor=*/false, 1);
  hit_crash_point("m-respond.sent");
}

Decision Replica::evaluate_membership_proposal(
    const MembershipProposeMsg& msg) {
  const MembershipProposal& prop = msg.proposal;
  const MembershipRequest& request = prop.request;

  if (prop.current_group != group_tuple_) {
    return Decision::rejected("inconsistent group view");
  }
  if (prop.agreed != agreed_tuple_) {
    return Decision::rejected("inconsistent agreed-state view");
  }
  if (prop.new_group.sequence <= group_tuple_.sequence) {
    return Decision::rejected("sequence number did not advance");
  }
  if (hash_members(prop.new_members) != prop.new_group.members_hash) {
    record_violation("member list does not hash to group tuple",
                     prop.sponsor);
    return Decision::rejected("proposal internally inconsistent");
  }

  // The embedded request must be properly signed by its sender.
  bool sponsor_initiated_evict = request.kind == MembershipKind::kEvict &&
                                 request.sender == prop.sponsor;
  if (request.kind == MembershipKind::kConnect) {
    crypto::RsaPublicKey subject_key;
    try {
      subject_key = crypto::RsaPublicKey::decode(request.subject_public_key);
    } catch (const CodecError&) {
      record_violation("connect proposal with undecodable subject key",
                       prop.sponsor);
      return Decision::rejected("undecodable subject key");
    }
    if (!subject_key.verify(request.signed_bytes(), prop.request_signature)) {
      record_violation("connect proposal with forged request", prop.sponsor);
      return Decision::rejected("request signature invalid");
    }
  } else if (!sponsor_initiated_evict) {
    const crypto::RsaPublicKey* sender_key = callbacks_.key_of(request.sender);
    if (sender_key == nullptr ||
        !sender_key->verify(request.signed_bytes(), prop.request_signature)) {
      record_violation("membership proposal with forged request",
                       prop.sponsor);
      return Decision::rejected("request signature invalid");
    }
  }

  // Sponsor legitimacy (§4.5.1): verifiable by every member.
  if (request.kind == MembershipKind::kConnect) {
    if (prop.sponsor != connect_sponsor()) {
      record_violation("illegitimate connection sponsor", prop.sponsor);
      return Decision::rejected("illegitimate sponsor");
    }
  } else {
    std::optional<PartyId> expected =
        sponsor_for_removal(members_, request.subjects, sponsor_policy_);
    if (!expected.has_value() || prop.sponsor != *expected) {
      record_violation("illegitimate disconnection sponsor", prop.sponsor);
      return Decision::rejected("illegitimate sponsor");
    }
    if (contains(request.subjects, self_)) {
      // The subject of an eviction must not be in the recipient set.
      record_violation("received proposal for own eviction", prop.sponsor);
      return Decision::rejected("subject must not validate own removal");
    }
  }

  // The proposed member list must be exactly the current list with the
  // requested change applied.
  std::optional<std::vector<PartyId>> expected_members =
      resulting_members(members_, request);
  if (!expected_members.has_value() ||
      *expected_members != prop.new_members) {
    record_violation("membership delta does not match request", prop.sponsor);
    return Decision::rejected("membership delta does not match request");
  }

  if (busy()) {
    return Decision::rejected("busy: concurrent coordination in progress");
  }

  ValidationContext ctx{self_, request.sender, object_,
                        prop.new_group.sequence};
  switch (request.kind) {
    case MembershipKind::kConnect:
      return impl_.validate_connect(request.subjects[0], ctx);
    case MembershipKind::kEvict:
      for (const PartyId& subject : request.subjects) {
        Decision d = impl_.validate_disconnect(subject, /*eviction=*/true, ctx);
        if (!d.accept) return d;
      }
      return Decision::accepted();
    case MembershipKind::kVoluntaryDisconnect: {
      // Voluntary disconnection cannot be vetoed by *policy* (§4.5.4);
      // the upcall result is recorded but overridden. Protocol-level
      // rejects above (stale views, busy) stand — they mean the run
      // cannot proceed consistently and the sponsor must retry.
      Decision d = impl_.validate_disconnect(request.subjects[0],
                                             /*eviction=*/false, ctx);
      if (!d.accept) return Decision{true, "noted: " + d.diagnostic};
      return Decision::accepted();
    }
  }
  return Decision::rejected("unknown membership kind");
}

void Replica::handle_membership_decide(const PartyId& from,
                                       const Bytes& body) {
  if (!connected_) {
    B2B_DEBUG(self_, " dropping membership decide on ", object_,
              " (not connected)");
    return;
  }
  MembershipDecideMsg msg = MembershipDecideMsg::decode(body);
  const std::string label = msg.new_group.label();

  auto it = membership_responder_runs_.find(label);
  if (it == membership_responder_runs_.end()) {
    record_anomaly("membership decide for unknown run " + label, from);
    return;
  }
  {
    const MembershipProposal& prop = it->second.propose.proposal;
    if (msg.sponsor != prop.sponsor || from != prop.sponsor) {
      record_violation("membership decide not from the sponsor", from);
      return;
    }
    if (crypto::Sha256::hash(msg.authenticator) != prop.new_group.rand_hash) {
      record_violation("membership decide authenticator mismatch (forgery)",
                       from);
      return;
    }
  }
  hit_crash_point("m-decide-recv.pre-journal");
  if (journaling()) {
    wire::Encoder enc;
    enc.blob(msg.encode());
    journal_record(walrec::kMembershipDecideDelivered, std::move(enc).take());
  }
  callbacks_.record_evidence(evidence_kind::kMembershipDecide, msg.encode());
  messages_.add(label, {"received", "m.decide", from.str(), body});
  journal_barrier();
  hit_crash_point("m-decide-recv.journaled");
  MembershipResponderRun run = std::move(it->second);
  membership_responder_runs_.erase(it);
  conclude_membership_responder_run(label, std::move(run), msg);
}

/// The post-durability half of decide handling: verify the aggregated
/// responses, apply the change if agreed, and close the run. Reached both
/// from live delivery (after the decide is journaled) and from recovery
/// replay of a journaled-but-unapplied decide.
void Replica::conclude_membership_responder_run(const std::string& label,
                                                MembershipResponderRun run,
                                                const MembershipDecideMsg& msg) {
  const MembershipProposal& prop = run.propose.proposal;
  const PartyId& from = prop.sponsor;

  bool intact = true;
  bool all_accept = true;
  std::set<PartyId> responders;
  for (const MembershipRespondMsg& resp_msg : msg.responses) {
    const MembershipResponse& resp = resp_msg.response;
    const crypto::RsaPublicKey* pub = callbacks_.key_of(resp.responder);
    if (pub == nullptr ||
        !pub->verify(resp.signed_bytes(), resp_msg.signature)) {
      record_violation("membership decide aggregates badly signed response",
                       from);
      intact = false;
      continue;
    }
    if (resp.new_group != prop.new_group) {
      record_violation("membership decide aggregates foreign response", from);
      intact = false;
      continue;
    }
    responders.insert(resp.responder);
    if (!resp.decision.accept) all_accept = false;
    if (resp.responder == self_ && !(resp_msg == run.my_response)) {
      record_violation("own membership response misrepresented", from);
      intact = false;
    }
  }
  // Coverage: every member that should have been asked (per the
  // membership as of our response) must be present. A shortfall on a run
  // that already contains a veto is explainable by concurrent membership
  // changes; only an all-accept decide with missing responses
  // misrepresents the outcome.
  for (const PartyId& member : run.members_at_response) {
    if (member == prop.sponsor) continue;
    if (prop.request.kind != MembershipKind::kConnect &&
        contains(prop.request.subjects, member)) {
      continue;
    }
    if (!responders.contains(member)) {
      if (all_accept) {
        record_violation(
            "membership decide omits response from " + member.str(), from);
      } else {
        record_anomaly(
            "membership decide lacks response from " + member.str(), from);
      }
      intact = false;
    }
  }

  bool agreed = intact && all_accept;

  if (agreed) {
    apply_membership_change(prop);
  }

  // A non-sponsor eviction proposer learns the outcome here.
  if (relayed_eviction_result_.has_value() &&
      prop.request.kind == MembershipKind::kEvict &&
      prop.request.sender == self_ &&
      to_hex(prop.request.request_nonce) == relayed_eviction_nonce_) {
    RunHandle handle = *relayed_eviction_result_;
    relayed_eviction_result_.reset();
    close_subject_request(to_hex(prop.request.request_nonce));
    std::vector<PartyId> vetoers;
    for (const MembershipRespondMsg& r : msg.responses) {
      if (!r.response.decision.accept) vetoers.push_back(r.response.responder);
    }
    complete(handle,
             agreed ? RunResult::Outcome::kAgreed : RunResult::Outcome::kVetoed,
             agreed ? "" : "eviction vetoed", std::move(vetoers),
             prop.new_group.sequence, label);
  }
  journal_run_closed(walrec::kMembershipResponderClosed, label);
  hit_crash_point("m-decide-recv.installed");
  drain_deferred_membership();
}

void Replica::apply_membership_change(const MembershipProposal& proposal) {
  if (group_tuple_ == proposal.new_group) {
    return;  // recovery redo of a decide whose effect already reached disk
  }
  members_ = proposal.new_members;
  group_tuple_ = proposal.new_group;
  note_sequence(proposal.new_group.sequence);

  CoordEvent event;
  event.object = object_;
  event.sequence = proposal.new_group.sequence;
  if (proposal.request.kind == MembershipKind::kConnect) {
    const PartyId& subject = proposal.request.subjects[0];
    try {
      callbacks_.learn_key(
          subject,
          crypto::RsaPublicKey::decode(proposal.request.subject_public_key));
    } catch (const CodecError&) {
      // Unreachable for an agreed run: the key decoded during validation.
    }
    event.kind = CoordEvent::Kind::kMemberConnected;
    event.party = subject;
  } else {
    event.kind = CoordEvent::Kind::kMemberDisconnected;
    event.party = proposal.request.subjects[0];
    event.detail = proposal.request.kind == MembershipKind::kEvict
                       ? "evicted"
                       : "voluntary";
  }
  callbacks_.record_evidence(evidence_kind::kMembershipApplied,
                             proposal.new_group.encode());
  journal_snapshot();
  impl_.coord_callback(event);
  if (callbacks_.notify) callbacks_.notify(event);
}

// ---------------------------------------------------------------------------
// Subject side: welcome / reject / confirm
// ---------------------------------------------------------------------------

void Replica::handle_connect_welcome(const PartyId& from, const Bytes& body) {
  if (!subject_request_.has_value() ||
      subject_request_->request.kind != MembershipKind::kConnect) {
    if (journaling()) {
      // A sponsor re-answering our crash-window probe after the welcome
      // already arrived: tolerate the duplicate rather than blame it.
      ConnectWelcomeMsg dup = ConnectWelcomeMsg::decode(body);
      if (connected_ && dup.new_group == group_tuple_) {
        record_anomaly("duplicate connect welcome", from);
        return;
      }
    }
    record_violation("unsolicited connect welcome", from);
    return;
  }
  ConnectWelcomeMsg msg = ConnectWelcomeMsg::decode(body);
  SubjectRequest pending = std::move(*subject_request_);
  subject_request_.reset();

  auto fail = [&](const std::string& why) {
    record_violation("invalid connect welcome: " + why, from);
    complete(pending.result, RunResult::Outcome::kAborted,
             "invalid welcome: " + why, {}, 0, "");
  };

  if (msg.object != object_ || msg.sponsor != from) {
    fail("wrong object or sender");
    return;
  }
  if (msg.members.empty() || msg.members.back() != self_) {
    fail("subject is not the most recent member");
    return;
  }
  if (msg.member_public_keys.size() != msg.members.size()) {
    fail("key list does not match member list");
    return;
  }
  if (hash_members(msg.members) != msg.new_group.members_hash) {
    fail("member list does not hash to group tuple");
    return;
  }
  if (crypto::Sha256::hash(msg.authenticator) != msg.new_group.rand_hash) {
    fail("authenticator mismatch");
    return;
  }
  if (crypto::Sha256::hash(msg.agreed_state) != msg.agreed.state_hash) {
    fail("agreed state does not match agreed tuple");
    return;
  }

  // Decode the member key directory; cross-check any keys already known.
  std::map<PartyId, crypto::RsaPublicKey> directory;
  for (std::size_t i = 0; i < msg.members.size(); ++i) {
    crypto::RsaPublicKey pub;
    try {
      pub = crypto::RsaPublicKey::decode(msg.member_public_keys[i]);
    } catch (const CodecError&) {
      fail("undecodable member key for " + msg.members[i].str());
      return;
    }
    const crypto::RsaPublicKey* known = callbacks_.key_of(msg.members[i]);
    if (known != nullptr && !(*known == pub)) {
      fail("key directory contradicts known key for " + msg.members[i].str());
      return;
    }
    directory.emplace(msg.members[i], std::move(pub));
  }

  // Sponsor's signature over the authoritative fields.
  if (!directory.at(msg.sponsor).verify(msg.signed_bytes(),
                                        msg.sponsor_signature)) {
    fail("bad sponsor signature");
    return;
  }

  // Each aggregated response vouches for the agreed state and new group.
  std::set<PartyId> responders;
  for (const MembershipRespondMsg& resp_msg : msg.responses) {
    const MembershipResponse& resp = resp_msg.response;
    auto key_it = directory.find(resp.responder);
    if (key_it == directory.end() ||
        !key_it->second.verify(resp.signed_bytes(), resp_msg.signature)) {
      fail("badly signed response from " + resp.responder.str());
      return;
    }
    if (resp.new_group != msg.new_group) {
      fail("response for a different run");
      return;
    }
    if (!resp.decision.accept) {
      fail("welcome contains a veto");
      return;
    }
    if (resp.agreed_view != msg.agreed) {
      fail("response vouches for different agreed state");
      return;
    }
    responders.insert(resp.responder);
  }
  for (const PartyId& member : msg.members) {
    if (member == msg.sponsor || member == self_) continue;
    if (!responders.contains(member)) {
      fail("missing response from " + member.str());
      return;
    }
  }

  // Install the verified replica.
  for (auto& [member, pub] : directory) {
    if (member != self_) callbacks_.learn_key(member, pub);
  }
  members_ = msg.members;
  group_tuple_ = msg.new_group;
  agreed_tuple_ = msg.agreed;
  agreed_state_ = msg.agreed_state;
  impl_.apply_state(agreed_state_);
  note_sequence(msg.new_group.sequence);
  note_sequence(msg.agreed.sequence);
  connected_ = true;
  checkpoints_.put(object_,
                   store::Checkpoint{agreed_tuple_.sequence,
                                     agreed_tuple_.encode(), agreed_state_,
                                     callbacks_.now()});
  callbacks_.record_evidence(evidence_kind::kMembershipApplied,
                             msg.new_group.encode());
  journal_snapshot();
  close_subject_request(to_hex(pending.request.request_nonce));

  CoordEvent event;
  event.kind = CoordEvent::Kind::kMemberConnected;
  event.object = object_;
  event.party = self_;
  event.sequence = msg.new_group.sequence;
  impl_.coord_callback(event);
  if (callbacks_.notify) callbacks_.notify(event);

  complete(pending.result, RunResult::Outcome::kAgreed, "", {},
           msg.new_group.sequence, msg.new_group.label());
  drain_deferred_membership();
}

void Replica::handle_connect_reject(const PartyId& from, const Bytes& body) {
  if (!subject_request_.has_value() ||
      subject_request_->request.kind != MembershipKind::kConnect) {
    if (journaling()) {
      record_anomaly("duplicate connect reject", from);
      return;
    }
    record_violation("unsolicited connect reject", from);
    return;
  }
  ConnectRejectMsg msg = ConnectRejectMsg::decode(body);
  if (msg.request_nonce != subject_request_->request.request_nonce) {
    record_violation("connect reject for a different request", from);
    return;
  }
  // Verify the sponsor's signature when its key is known; a subject outside
  // the group may not know it, in which case the rejection is advisory
  // (either way the subject learns nothing more, §4.5.3).
  const crypto::RsaPublicKey* pub = callbacks_.key_of(from);
  if (pub != nullptr && !pub->verify(msg.signed_bytes(), msg.signature)) {
    record_violation("bad signature on connect reject", from);
    return;
  }
  SubjectRequest pending = std::move(*subject_request_);
  subject_request_.reset();
  close_subject_request(to_hex(pending.request.request_nonce));
  complete(pending.result, RunResult::Outcome::kVetoed,
           "connection request rejected", {PartyId{from}}, 0, "");
  drain_deferred_membership();
}

void Replica::handle_disconnect_confirm(const PartyId& from,
                                        const Bytes& body) {
  if (!subject_request_.has_value() ||
      subject_request_->request.kind != MembershipKind::kVoluntaryDisconnect) {
    if (journaling()) {
      record_anomaly("duplicate disconnect confirm", from);
      return;
    }
    record_violation("unsolicited disconnect confirm", from);
    return;
  }
  DisconnectConfirmMsg msg = DisconnectConfirmMsg::decode(body);
  if (crypto::Sha256::hash(msg.authenticator) != msg.new_group.rand_hash) {
    record_violation("disconnect confirm authenticator mismatch", from);
    return;
  }
  callbacks_.record_evidence(evidence_kind::kMembershipDecide, msg.encode());
  SubjectRequest pending = std::move(*subject_request_);
  subject_request_.reset();
  connected_ = false;
  abort_runs_on_departure();
  journal_snapshot();
  close_subject_request(to_hex(pending.request.request_nonce));
  complete(pending.result, RunResult::Outcome::kAgreed, "", {},
           msg.new_group.sequence, msg.new_group.label());
  // Any requests we were still sponsoring must find a new sponsor.
  drain_deferred_membership();
}

void Replica::abort_runs_on_departure() {
  // Departure aborts our participation in any run still in flight: once
  // we are out of the group the decide for a run we responded to before
  // leaving can never reach us (members do not send to non-members,
  // §4.5), so a retained responder run — and its accept lock — would
  // hold this replica busy() forever, wedging every membership request
  // it is later asked to sponsor or relay after reconnecting.
  for (const auto& [label, run] : responder_runs_) {
    wire::Encoder note;
    note.str(label).str(self_.str());
    callbacks_.record_evidence("run.abandoned", std::move(note).take());
    journal_run_closed(walrec::kResponderClosed, label);
  }
  responder_runs_.clear();
  accept_lock_.reset();
  for (const auto& [label, run] : membership_responder_runs_) {
    wire::Encoder note;
    note.str(label).str(self_.str());
    callbacks_.record_evidence("run.abandoned", std::move(note).take());
    journal_run_closed(walrec::kMembershipResponderClosed, label);
  }
  membership_responder_runs_.clear();
}

// ---------------------------------------------------------------------------
// Membership journaling & recovery helpers
// ---------------------------------------------------------------------------

bool Replica::maybe_resend_membership_decide(const std::string& label,
                                             const PartyId& to) {
  if (!journaling()) return false;
  for (const auto& stored : messages_.run(label)) {
    if (stored.direction == "sent" && stored.kind == "m.decide") {
      record_anomaly("re-sent membership decide of closed run " + label, to);
      send_envelope(to, MsgType::kMembershipDecide, stored.payload);
      return true;
    }
  }
  return false;
}

bool Replica::maybe_reanswer_membership_request(const std::string& nonce_key,
                                                const PartyId& subject) {
  if (!journaling()) return false;
  const auto& stored = messages_.run("m.subject." + nonce_key);
  if (stored.empty()) return false;  // run still in progress: stay silent
  const auto& answer = stored.back();
  MsgType type = MsgType::kConnectReject;
  if (answer.kind == "m.welcome") {
    type = MsgType::kConnectWelcome;
  } else if (answer.kind == "m.confirm") {
    type = MsgType::kDisconnectConfirm;
  }
  record_anomaly("re-answered duplicate membership request", subject);
  send_envelope(subject, type, answer.payload);
  return true;
}

void Replica::remember_subject_answer(const std::string& nonce_key,
                                      const PartyId& subject, MsgType type,
                                      const Bytes& payload) {
  if (!journaling()) return;
  std::string kind = "m.reject";
  if (type == MsgType::kConnectWelcome) {
    kind = "m.welcome";
  } else if (type == MsgType::kDisconnectConfirm) {
    kind = "m.confirm";
  }
  messages_.add("m.subject." + nonce_key,
                {"sent", kind, subject.str(), payload});
}

void Replica::journal_subject_request(const MembershipRequest& request,
                                      const Bytes& signature,
                                      const PartyId& sent_to,
                                      bool relayed_eviction) {
  pending_subject_record_ =
      SubjectRequestRecord{request, signature, sent_to, relayed_eviction};
  if (!journaling()) return;
  wire::Encoder enc;
  enc.blob(pending_subject_record_->encode());
  journal_record(walrec::kSubjectRequest, std::move(enc).take());
  journal_barrier();
}

void Replica::close_subject_request(const std::string& nonce_key) {
  if (pending_subject_record_.has_value() &&
      to_hex(pending_subject_record_->request.request_nonce) == nonce_key) {
    pending_subject_record_.reset();
  }
  if (!journaling()) return;
  wire::Encoder enc;
  enc.str(nonce_key);
  journal_record(walrec::kSubjectClosed, std::move(enc).take());
  journal_barrier();
}

void Replica::arm_membership_probe(const std::string& label, bool as_sponsor,
                                   int attempt) {
  if (!journaling() || !callbacks_.schedule ||
      run_probe_interval_micros_ == 0 || attempt > max_run_probes_) {
    return;
  }
  callbacks_.schedule(
      run_probe_interval_micros_, [this, label, as_sponsor, attempt] {
        if (as_sponsor) {
          if (!sponsor_run_.has_value() ||
              sponsor_run_->propose.proposal.new_group.label() != label) {
            return;  // run concluded; probe dies
          }
          // Re-drive recipients whose responses are still missing: either
          // our propose or their response was acked-then-lost in a crash
          // window, and retransmission alone cannot recover an acked frame.
          Bytes encoded = sponsor_run_->propose.encode();
          for (const PartyId& recipient : sponsor_run_->recipients) {
            if (!sponsor_run_->responses.contains(recipient)) {
              send_envelope(recipient, MsgType::kMembershipPropose, encoded);
            }
          }
        } else {
          auto it = membership_responder_runs_.find(label);
          if (it == membership_responder_runs_.end()) return;
          send_envelope(it->second.propose.proposal.sponsor,
                        MsgType::kMembershipRespond,
                        it->second.my_response.encode());
        }
        arm_membership_probe(label, as_sponsor, attempt + 1);
      });
}

void Replica::arm_subject_probe(std::string nonce_key, int attempt) {
  if (!journaling() || !callbacks_.schedule ||
      run_probe_interval_micros_ == 0 || attempt > max_run_probes_) {
    return;
  }
  callbacks_.schedule(
      run_probe_interval_micros_,
      [this, nonce_key = std::move(nonce_key), attempt]() mutable {
        if (!pending_subject_record_.has_value() ||
            to_hex(pending_subject_record_->request.request_nonce) !=
                nonce_key) {
          return;  // answered; probe dies
        }
        resend_subject_request();
        arm_subject_probe(std::move(nonce_key), attempt + 1);
      });
}

void Replica::resend_subject_request() {
  if (!pending_subject_record_.has_value()) return;
  // Copy: the moot-eviction branch below closes the record mid-function.
  const SubjectRequestRecord rec = *pending_subject_record_;
  const std::string nonce_key = to_hex(rec.request.request_nonce);
  // Re-resolve the legitimate sponsor against our CURRENT view before
  // re-driving: the sponsor the request first went to may itself have
  // departed or been evicted while the request waited, and a non-member
  // silently drops our traffic as an anomaly (§4.5) — re-probing a ghost
  // would hang this run forever. A connecting outsider has no group view
  // of its own to re-resolve against, so connect requests keep the
  // recorded target.
  PartyId target = rec.sent_to;
  if (rec.request.kind == MembershipKind::kVoluntaryDisconnect) {
    if (connected_ && members_.size() > 1) {
      target = disconnect_sponsor(self_);
    }
  } else if (rec.request.kind == MembershipKind::kEvict) {
    bool any_subject_member = false;
    for (const PartyId& subject : rec.request.subjects) {
      if (is_member(subject)) any_subject_member = true;
    }
    if (!any_subject_member) {
      // Every subject already left the group through a concurrent
      // membership run; a sponsor drops an inapplicable eviction without
      // answering, so conclude the run locally instead of probing forever.
      if (relayed_eviction_result_.has_value() &&
          nonce_key == relayed_eviction_nonce_) {
        RunHandle handle = *relayed_eviction_result_;
        relayed_eviction_result_.reset();
        complete(handle, RunResult::Outcome::kAborted,
                 "eviction subjects already left the group", {},
                 group_tuple_.sequence, "");
      }
      close_subject_request(nonce_key);
      return;
    }
    std::optional<PartyId> sponsor =
        sponsor_for_removal(members_, rec.request.subjects, sponsor_policy_);
    if (sponsor.has_value()) {
      if (*sponsor == self_) {
        // Sponsorship rotated to us while the request waited: act on our
        // own request as sponsor (§4.5.4). finish_membership_run_as_sponsor
        // settles the relayed handle.
        process_membership_request(rec.request, rec.signature);
        return;
      }
      target = *sponsor;
    }
  }
  MsgType type = rec.request.kind == MembershipKind::kVoluntaryDisconnect
                     ? MsgType::kDisconnectRequest
                     : MsgType::kConnectRequest;
  send_envelope(target, type,
                encode_request_with_signature(rec.request, rec.signature));
}

void Replica::restore_recovered_membership(
    const RecoveredObjectState& recovered) {
  for (const std::string& nonce : recovered.processed_nonces) {
    sponsor_nonces_.insert(nonce);
  }
  if (recovered.sponsor_run.has_value()) {
    SponsorRun run;
    run.propose = recovered.sponsor_run->propose;
    run.authenticator = recovered.sponsor_run->authenticator;
    run.recipients = recovered.sponsor_run->recipients;
    run.result = std::make_shared<RunResult>();
    for (const MembershipRespondMsg& resp : recovered.sponsor_responses) {
      run.responses.emplace(resp.response.responder, resp);
    }
    sponsor_run_ = std::move(run);
  }
  recovered_membership_decide_ = recovered.sponsor_decide;
  for (const auto& [label, record] : recovered.membership_responder_runs) {
    MembershipResponderRun run;
    run.propose = record.propose;
    run.my_response = record.my_response;
    run.members_at_response = record.members_at_response;
    membership_responder_runs_.insert_or_assign(label, std::move(run));
  }
  pending_redo_membership_decides_ = recovered.membership_decides;
  if (recovered.subject_request.has_value()) {
    pending_subject_record_ = recovered.subject_request;
    if (recovered.subject_request->relayed_eviction) {
      relayed_eviction_nonce_ =
          to_hex(recovered.subject_request->request.request_nonce);
      relayed_eviction_result_ = std::make_shared<RunResult>();
    } else {
      subject_request_ = SubjectRequest{recovered.subject_request->request,
                                        std::make_shared<RunResult>()};
    }
  }
  recovered_termination_submissions_ = recovered.termination_submissions;
  pending_redo_verdicts_ = recovered.verdicts;
}

void Replica::resume_recovered_membership(std::vector<RunHandle>& handles) {
  // Delivered-but-possibly-unapplied membership decides: conclude again.
  // apply_membership_change is idempotent against the snapshot having
  // already captured the new group.
  auto redo_decides = std::move(pending_redo_membership_decides_);
  pending_redo_membership_decides_.clear();
  for (auto& [label, decide] : redo_decides) {
    auto it = membership_responder_runs_.find(label);
    if (it == membership_responder_runs_.end()) continue;
    MembershipResponderRun run = std::move(it->second);
    membership_responder_runs_.erase(it);
    conclude_membership_responder_run(label, std::move(run), decide);
  }

  // Sponsor side: re-drive the in-flight run.
  if (sponsor_run_.has_value()) {
    handles.push_back(sponsor_run_->result);
    const std::string label = sponsor_run_->propose.proposal.new_group.label();
    if (recovered_membership_decide_.has_value()) {
      // The decide was journaled: the outcome is fixed. Rebuild the
      // response set from the decide itself and redo the decide phase
      // (re-send, re-apply, re-answer the subject, close the run).
      MembershipDecideMsg decide = std::move(*recovered_membership_decide_);
      recovered_membership_decide_.reset();
      sponsor_run_->responses.clear();
      for (const MembershipRespondMsg& resp : decide.responses) {
        sponsor_run_->responses.emplace(resp.response.responder, resp);
      }
      finish_membership_run_as_sponsor();
    } else if (sponsor_run_->responses.size() ==
               sponsor_run_->recipients.size()) {
      finish_membership_run_as_sponsor();
    } else {
      Bytes encoded = sponsor_run_->propose.encode();
      for (const PartyId& recipient : sponsor_run_->recipients) {
        if (!sponsor_run_->responses.contains(recipient)) {
          send_envelope(recipient, MsgType::kMembershipPropose, encoded);
        }
      }
      arm_membership_probe(label, /*as_sponsor=*/true, 1);
    }
  } else {
    recovered_membership_decide_.reset();
  }

  // Responder side: re-send our journaled response so the sponsor's run
  // can conclude, and probe until the decide arrives.
  for (const auto& [label, run] : membership_responder_runs_) {
    send_envelope(run.propose.proposal.sponsor, MsgType::kMembershipRespond,
                  run.my_response.encode());
    arm_membership_probe(label, /*as_sponsor=*/false, 1);
  }

  // Subject side: re-probe the sponsor under the ORIGINAL nonce; the
  // answer (welcome/reject/confirm or the relayed decide) concludes it.
  if (pending_subject_record_.has_value()) {
    if (pending_subject_record_->relayed_eviction) {
      if (relayed_eviction_result_.has_value()) {
        handles.push_back(*relayed_eviction_result_);
      }
    } else if (subject_request_.has_value()) {
      handles.push_back(subject_request_->result);
    }
    resend_subject_request();
    arm_subject_probe(to_hex(pending_subject_record_->request.request_nonce),
                      1);
  }
}

}  // namespace b2b::core
