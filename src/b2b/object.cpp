#include "b2b/object.hpp"

#include "common/error.hpp"

namespace b2b::core {

Bytes B2BObject::get_update() const {
  throw Error("B2BObject: update mode not supported by this object");
}

void B2BObject::apply_update(BytesView) {
  throw Error("B2BObject: update mode not supported by this object");
}

Decision B2BObject::validate_update(BytesView, BytesView resulting_state,
                                    const ValidationContext& ctx) {
  return validate_state(resulting_state, ctx);
}

Decision B2BObject::validate_connect(const PartyId&,
                                     const ValidationContext&) {
  return Decision::accepted();
}

Decision B2BObject::validate_disconnect(const PartyId&, bool,
                                        const ValidationContext&) {
  return Decision::accepted();
}

void B2BObject::coord_callback(const CoordEvent&) {}

}  // namespace b2b::core
