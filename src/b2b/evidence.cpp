#include "b2b/evidence.hpp"

#include <algorithm>
#include <set>

namespace b2b::core {

Bytes EvidenceAnchor::signed_bytes() const {
  wire::Encoder enc;
  enc.str("b2b.evidence.anchor")
      .u64(index)
      .raw(crypto::digest_bytes(head_hash));
  return std::move(enc).take();
}

Bytes EvidenceAnchor::encode() const {
  wire::Encoder enc;
  enc.u64(index).raw(crypto::digest_bytes(head_hash)).blob(signature);
  return std::move(enc).take();
}

EvidenceAnchor EvidenceAnchor::decode(BytesView data) {
  wire::Decoder dec{data};
  EvidenceAnchor anchor;
  anchor.index = dec.u64();
  anchor.head_hash = crypto::digest_from_bytes(dec.raw(32));
  anchor.signature = dec.blob();
  dec.expect_done();
  return anchor;
}

EvidenceVerifier::EvidenceVerifier(
    std::map<PartyId, crypto::RsaPublicKey> keys)
    : keys_(std::move(keys)) {}

bool EvidenceVerifier::check_signature(const PartyId& signer,
                                       BytesView message, BytesView signature,
                                       std::vector<std::string>* out,
                                       const std::string& what) const {
  auto it = keys_.find(signer);
  if (it == keys_.end()) {
    out->push_back(what + ": unknown signer " + signer.str());
    return false;
  }
  if (!it->second.verify(message, signature)) {
    out->push_back(what + ": bad signature from " + signer.str());
    return false;
  }
  return true;
}

bool EvidenceVerifier::unanimous(const std::vector<RespondMsg>& responses) {
  return std::all_of(responses.begin(), responses.end(),
                     [](const RespondMsg& r) {
                       return r.response.decision.accept;
                     });
}

VerifiedRun EvidenceVerifier::verify_state_run(
    const RunTranscript& transcript,
    const std::vector<PartyId>* expected_recipients) const {
  VerifiedRun out;
  const Proposal& prop = transcript.propose.proposal;

  // 1. Proposer's signature binds the proposal.
  bool ok = check_signature(prop.proposer, prop.signed_bytes(),
                            transcript.propose.signature, &out.violations,
                            "propose");

  // 2. The payload must match the hash the proposer signed.
  if (crypto::Sha256::hash(transcript.propose.payload) != prop.payload_hash) {
    out.violations.push_back("propose: payload does not match signed hash");
    ok = false;
  }
  // For an overwrite, the payload *is* the new state, so the tuple's state
  // hash must match too.
  if (!prop.is_update && prop.proposed.state_hash != prop.payload_hash) {
    out.violations.push_back(
        "propose: overwrite state hash differs from payload hash");
    ok = false;
  }

  // 3. Null state transitions are rejectable on sight (§4.4).
  if (!prop.is_update && prop.proposed.state_hash == prop.agreed.state_hash) {
    out.violations.push_back("propose: null state transition");
    ok = false;
  }

  // 4. Sequence must advance (§4.2 invariant 3).
  if (prop.proposed.sequence <= prop.agreed.sequence) {
    out.violations.push_back("propose: sequence did not advance");
    ok = false;
  }

  // 5. Each response: signature, receipt echo, view consistency.
  std::set<PartyId> responders;
  for (const RespondMsg& resp_msg : transcript.responses) {
    const Response& resp = resp_msg.response;
    std::string who = resp.responder.str();
    if (!check_signature(resp.responder, resp.signed_bytes(),
                         resp_msg.signature, &out.violations,
                         "respond(" + who + ")")) {
      ok = false;
      continue;
    }
    if (!responders.insert(resp.responder).second) {
      out.violations.push_back("respond(" + who + "): duplicate responder");
      ok = false;
    }
    if (resp.object != prop.object) {
      out.violations.push_back("respond(" + who + "): wrong object");
      ok = false;
    }
    if (resp.proposed != prop.proposed) {
      out.violations.push_back("respond(" + who +
                               "): receipt does not echo the proposal");
      ok = false;
    }
    if (resp.decision.accept) {
      // An accept asserts the invariants held at the responder: its views
      // must agree with the proposer's (§4.2 invariant 1) and it must have
      // seen the payload intact.
      if (resp.agreed_view != prop.agreed ||
          resp.current_view != prop.agreed) {
        out.violations.push_back(
            "respond(" + who + "): accepted despite inconsistent state view");
        ok = false;
      }
      if (resp.group_view != prop.group) {
        out.violations.push_back(
            "respond(" + who + "): accepted despite inconsistent group view");
        ok = false;
      }
      if (resp.payload_integrity != prop.payload_hash) {
        out.violations.push_back(
            "respond(" + who + "): accepted despite payload mismatch");
        ok = false;
      }
    } else {
      out.vetoers.push_back(resp.responder);
    }
  }

  // 6. Completeness of the response set.
  if (expected_recipients != nullptr) {
    for (const PartyId& expected : *expected_recipients) {
      if (!responders.contains(expected)) {
        out.violations.push_back("missing response from " + expected.str());
        ok = false;
      }
    }
  }

  // 7. The decide message: the revealed authenticator must be the preimage
  //    of the committed hash, and its aggregated responses must match.
  bool decide_ok = false;
  if (transcript.decide.has_value()) {
    const DecideMsg& dec = *transcript.decide;
    decide_ok = true;
    if (dec.proposed != prop.proposed || dec.object != prop.object ||
        dec.proposer != prop.proposer) {
      out.violations.push_back("decide: does not match the proposal");
      decide_ok = false;
    }
    if (crypto::Sha256::hash(dec.authenticator) != prop.proposed.rand_hash) {
      out.violations.push_back(
          "decide: authenticator is not the preimage of the commitment");
      decide_ok = false;
    }
    // The decide must aggregate exactly the responses we verified.
    for (const RespondMsg& resp_msg : dec.responses) {
      const Response& resp = resp_msg.response;
      if (!check_signature(resp.responder, resp.signed_bytes(),
                           resp_msg.signature, &out.violations,
                           "decide.respond(" + resp.responder.str() + ")")) {
        decide_ok = false;
      }
      if (resp.proposed != prop.proposed) {
        out.violations.push_back("decide: aggregated response from " +
                                 resp.responder.str() +
                                 " belongs to a different run");
        decide_ok = false;
      }
    }
    if (expected_recipients != nullptr) {
      std::set<PartyId> in_decide;
      for (const RespondMsg& r : dec.responses) {
        in_decide.insert(r.response.responder);
      }
      for (const PartyId& expected : *expected_recipients) {
        if (!in_decide.contains(expected)) {
          out.violations.push_back("decide: missing response from " +
                                   expected.str());
          decide_ok = false;
        }
      }
    }
  }

  out.evidence_intact = ok && decide_ok;
  // The state is valid only if the evidence is intact AND every aggregated
  // signed decision is accept — computed, never trusted.
  out.agreed = out.evidence_intact && transcript.decide.has_value() &&
               unanimous(transcript.decide->responses) &&
               !transcript.decide->responses.empty();
  return out;
}

VerifiedRun EvidenceVerifier::verify_membership_run(
    const MembershipProposeMsg& propose,
    const std::vector<MembershipRespondMsg>& responses,
    const Bytes* authenticator,
    const std::vector<PartyId>* expected_recipients) const {
  VerifiedRun out;
  const MembershipProposal& prop = propose.proposal;

  bool ok = check_signature(prop.sponsor, prop.signed_bytes(),
                            propose.signature, &out.violations,
                            "membership.propose");

  // The embedded request must carry a valid signature from its sender
  // (except that evictions initiated by the sponsor embed no request
  // signature when the request step is skipped, §4.5.4).
  bool sponsor_initiated_evict =
      prop.request.kind == MembershipKind::kEvict &&
      prop.request.sender == prop.sponsor;
  if (!sponsor_initiated_evict || !prop.request_signature.empty()) {
    if (!check_signature(prop.request.sender, prop.request.signed_bytes(),
                         prop.request_signature, &out.violations,
                         "membership.request")) {
      ok = false;
    }
  }

  // The proposed member list must hash to the new group tuple.
  if (hash_members(prop.new_members) != prop.new_group.members_hash) {
    out.violations.push_back(
        "membership.propose: member list does not hash to new group tuple");
    ok = false;
  }
  if (prop.new_group.sequence <= prop.current_group.sequence) {
    out.violations.push_back("membership.propose: sequence did not advance");
    ok = false;
  }

  std::set<PartyId> responders;
  for (const MembershipRespondMsg& resp_msg : responses) {
    const MembershipResponse& resp = resp_msg.response;
    std::string who = resp.responder.str();
    if (!check_signature(resp.responder, resp.signed_bytes(),
                         resp_msg.signature, &out.violations,
                         "membership.respond(" + who + ")")) {
      ok = false;
      continue;
    }
    if (!responders.insert(resp.responder).second) {
      out.violations.push_back("membership.respond(" + who +
                               "): duplicate responder");
      ok = false;
    }
    if (resp.new_group != prop.new_group || resp.object != prop.object) {
      out.violations.push_back("membership.respond(" + who +
                               "): receipt does not echo the proposal");
      ok = false;
    }
    if (resp.decision.accept) {
      if (resp.group_view != prop.current_group) {
        out.violations.push_back(
            "membership.respond(" + who +
            "): accepted despite inconsistent group view");
        ok = false;
      }
      if (resp.agreed_view != prop.agreed) {
        out.violations.push_back(
            "membership.respond(" + who +
            "): accepted despite inconsistent agreed-state view");
        ok = false;
      }
    } else {
      out.vetoers.push_back(resp.responder);
    }
  }

  if (expected_recipients != nullptr) {
    for (const PartyId& expected : *expected_recipients) {
      if (!responders.contains(expected)) {
        out.violations.push_back("membership: missing response from " +
                                 expected.str());
        ok = false;
      }
    }
  }

  bool auth_ok = false;
  if (authenticator != nullptr) {
    auth_ok =
        crypto::Sha256::hash(*authenticator) == prop.new_group.rand_hash;
    if (!auth_ok) {
      out.violations.push_back(
          "membership.decide: authenticator mismatch");
    }
  }

  out.evidence_intact = ok && auth_ok;
  bool all_accept = std::all_of(
      responses.begin(), responses.end(), [](const MembershipRespondMsg& r) {
        return r.response.decision.accept;
      });
  out.agreed = out.evidence_intact && all_accept;
  return out;
}

}  // namespace b2b::core
