#include "b2b/coordinator.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"
#include "wire/codec.hpp"

namespace b2b::core {

Coordinator::Coordinator(Config config, net::Transport& transport,
                         net::Clock& clock,
                         const crypto::TimestampService* tss)
    : self_(std::move(config.self)),
      key_(std::move(config.key)),
      rng_(config.rng ? std::move(config.rng)
                      : std::make_shared<net::DeterministicRng>(
                            config.rng_seed ^
                            std::hash<std::string>{}(self_.str()))),
      transport_(transport),
      clock_(clock),
      tss_(tss),
      sponsor_policy_(config.sponsor_policy),
      decision_rule_(config.decision_rule) {
  known_keys_.emplace(self_, key_.public_key());
  transport_.set_handler([this](const PartyId& from, const Bytes& payload) {
    on_message(from, payload);
  });
}

void Coordinator::add_known_party(const PartyId& party,
                                  crypto::RsaPublicKey key) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  known_keys_[party] = std::move(key);
}

const crypto::RsaPublicKey* Coordinator::key_of(const PartyId& party) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = known_keys_.find(party);
  return it == known_keys_.end() ? nullptr : &it->second;
}

std::map<PartyId, crypto::RsaPublicKey> Coordinator::key_directory() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return known_keys_;
}

Replica& Coordinator::register_object(const ObjectId& object,
                                      B2BObject& impl) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (replicas_.contains(object)) {
    throw Error("register_object: object already registered: " + object.str());
  }
  Replica::Callbacks callbacks;
  callbacks.send = [this](const PartyId& to, const Envelope& envelope) {
    send(to, envelope);
  };
  callbacks.now = [this] { return clock_.now_micros(); };
  callbacks.record_evidence = [this](const std::string& kind,
                                     const Bytes& payload) {
    record_evidence(kind, payload);
  };
  callbacks.key_of = [this](const PartyId& party) { return key_of(party); };
  callbacks.learn_key = [this](const PartyId& party,
                               const crypto::RsaPublicKey& key) {
    add_known_party(party, key);
  };
  callbacks.notify = [this](const CoordEvent& event) {
    if (observer_) observer_(event);
  };
  callbacks.schedule = [this](std::uint64_t delay, std::function<void()> fn) {
    // Timers fire on the clock's thread: re-take the coordinator lock so
    // deadline handlers are serialised with message dispatch.
    clock_.schedule_after(delay, [this, fn = std::move(fn)] {
      std::lock_guard<std::recursive_mutex> lock(mutex_);
      fn();
    });
  };
  auto replica = std::make_unique<Replica>(self_, object, impl, key_, *rng_,
                                           std::move(callbacks), checkpoints_,
                                           messages_);
  replica->set_sponsor_policy(sponsor_policy_);
  replica->set_decision_rule(decision_rule_);
  Replica& ref = *replica;
  replicas_.emplace(object, std::move(replica));
  return ref;
}

Replica& Coordinator::replica(const ObjectId& object) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = replicas_.find(object);
  if (it == replicas_.end()) {
    throw Error("unknown object: " + object.str());
  }
  return *it->second;
}

const Replica& Coordinator::replica(const ObjectId& object) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = replicas_.find(object);
  if (it == replicas_.end()) {
    throw Error("unknown object: " + object.str());
  }
  return *it->second;
}

bool Coordinator::has_object(const ObjectId& object) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return replicas_.contains(object);
}

void Coordinator::enable_ttp_termination(const ObjectId& object,
                                         Replica::TtpConfig config) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  replica(object).enable_ttp_termination(std::move(config));
}

RunHandle Coordinator::propagate_new_state(const ObjectId& object,
                                           Bytes new_state) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return replica(object).propose_state(std::move(new_state));
}

RunHandle Coordinator::propagate_update(const ObjectId& object, Bytes update,
                                        Bytes new_state) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return replica(object).propose_update(std::move(update),
                                        std::move(new_state));
}

RunHandle Coordinator::propagate_connect(const ObjectId& object,
                                         const PartyId& via) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return replica(object).request_connect(via);
}

RunHandle Coordinator::propagate_disconnect(const ObjectId& object) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return replica(object).request_disconnect();
}

RunHandle Coordinator::propagate_eviction(const ObjectId& object,
                                          std::vector<PartyId> subjects) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return replica(object).propose_eviction(std::move(subjects));
}

void Coordinator::on_message(const PartyId& from, const Bytes& payload) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  Envelope envelope;
  try {
    envelope = Envelope::decode(payload);
  } catch (const CodecError& e) {
    B2B_DEBUG(self_, ": undecodable envelope from ", from, ": ", e.what());
    record_evidence(evidence_kind::kViolation,
                    bytes_of("undecodable envelope from " + from.str()));
    return;
  }
  auto it = replicas_.find(envelope.object);
  if (it == replicas_.end()) {
    B2B_DEBUG(self_, ": message for unknown object ", envelope.object);
    return;
  }
  it->second->handle(from, envelope);
}

void Coordinator::record_evidence(const std::string& kind,
                                  const Bytes& payload) {
  wire::Encoder framed;
  framed.blob(payload);
  if (tss_ != nullptr) {
    framed.blob(tss_->stamp(payload).encode());
  } else {
    framed.blob({});
  }
  evidence_.append(kind, std::move(framed).take(), clock_.now_micros());
}

Coordinator::EvidencePayload Coordinator::decode_evidence_payload(
    BytesView framed) {
  wire::Decoder dec{framed};
  EvidencePayload out;
  out.payload = dec.blob();
  Bytes stamp = dec.blob();
  dec.expect_done();
  if (!stamp.empty()) {
    out.timestamp = crypto::Timestamp::decode(stamp);
  }
  return out;
}

void Coordinator::send(const PartyId& to, const Envelope& envelope) {
  Bytes encoded = envelope.encode();
  ++protocol_stats_.envelopes_sent;
  ++protocol_stats_.sent_by_type[envelope.type];
  protocol_stats_.envelope_bytes_sent += encoded.size();
  transport_.send(to, std::move(encoded));
}

std::uint64_t Coordinator::violations_detected() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [object, replica] : replicas_) {
    total += replica->violations_detected();
  }
  return total;
}

}  // namespace b2b::core
