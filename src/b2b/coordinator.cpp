#include "b2b/coordinator.hpp"

#include <algorithm>
#include <vector>

#include "b2b/recovery.hpp"
#include "b2b/termination.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "wire/codec.hpp"

namespace b2b::core {

// ---------------------------------------------------------------------------
// ShardLane
// ---------------------------------------------------------------------------

Coordinator::ShardLane::ShardLane() {
  worker_ = std::thread([this] { worker_loop(); });
}

Coordinator::ShardLane::ShardLane(std::shared_ptr<net::TaskPool> pool)
    : strand_(std::make_unique<net::Strand>(std::move(pool))) {}

Coordinator::ShardLane::~ShardLane() { stop(); }

void Coordinator::ShardLane::post(std::function<void()> task) {
  if (strand_) {
    strand_->post(std::move(task));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    queue_.push_back(std::move(task));
  }
  cv_.notify_all();
}

bool Coordinator::ShardLane::idle() const {
  if (strand_) return strand_->idle();
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty() && !running_;
}

void Coordinator::ShardLane::wait_idle() const {
  if (strand_) {
    strand_->wait_idle();
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return (queue_.empty() && !running_) || stopping_; });
}

void Coordinator::ShardLane::stop() {
  if (strand_) {
    strand_->stop();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    queue_.clear();  // the coordinator is dying; queued work is discarded
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void Coordinator::ShardLane::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    running_ = true;
    lock.unlock();
    task();
    lock.lock();
    running_ = false;
    if (queue_.empty()) cv_.notify_all();  // wake wait_idle / quiescence
  }
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

Coordinator::Coordinator(Config config, net::Transport& transport,
                         net::Clock& clock,
                         const crypto::TimestampService* tss)
    : self_(std::move(config.self)),
      key_(std::move(config.key)),
      rng_(config.rng ? std::move(config.rng)
                      : std::make_shared<net::DeterministicRng>(
                            config.rng_seed ^
                            std::hash<std::string>{}(self_.str()))),
      transport_(transport),
      clock_(clock),
      tss_(tss),
      lock_mode_(config.lock_mode),
      shard_lanes_(config.shard_lanes &&
                   config.lock_mode == LockMode::kPerObject),
      lane_pool_(config.lane_pool),
      sponsor_policy_(config.sponsor_policy),
      decision_rule_(config.decision_rule),
      run_probe_interval_micros_(config.run_probe_interval_micros),
      max_run_probes_(config.max_run_probes) {
  pipeline_ = config.pipeline;
  evidence_anchor_interval_ = config.evidence_anchor_interval;
  if (pipeline_) {
    signature_cache_ = std::make_unique<crypto::SignatureCache>(
        config.signature_cache_capacity);
    // The screening rng only needs unpredictability to an adversary who
    // crafted the batch; a per-party deterministic seed keeps sim runs
    // reproducible.
    screen_rng_ = std::make_unique<crypto::ChaCha20Rng>(
        config.rng_seed ^ std::hash<std::string>{}(self_.str()) ^
        0x5c5c5c5c5c5c5c5cULL);
  }
  anchor_ = std::make_shared<TimerAnchor>();
  anchor_->coordinator = this;
  if (!config.journal_dir.empty()) {
    store::Journal::Options jopts;
    jopts.fsync = config.journal_fsync;
    journal_ =
        std::make_unique<store::Journal>(config.journal_dir, std::move(jopts));
    if (journal_->incarnation() > 1 && !config.rng) {
      // A restarted party must never reuse its previous incarnation's
      // authenticator randomness (the preimages it committed to are
      // potentially already on the wire): mix the incarnation into the
      // seed. Incarnation 1 keeps the exact original stream.
      rng_ = std::make_shared<net::DeterministicRng>(
          (config.rng_seed ^ std::hash<std::string>{}(self_.str())) *
              0x9e3779b97f4a7c15ULL +
          journal_->incarnation());
    }
    replay_journal();
    // Mirror checkpoints and protocol messages into the journal from here
    // on. Set *after* replay so replayed puts/adds are not re-journaled.
    // The observers fire under the store's internal lock; the nested
    // journal lock is the innermost in the documented order.
    checkpoints_.set_observer(
        [this](const ObjectId& object, const store::Checkpoint& checkpoint) {
          wire::Encoder enc;
          enc.str(object.str())
              .u64(checkpoint.sequence)
              .blob(checkpoint.tuple)
              .blob(checkpoint.state)
              .u64(checkpoint.time_micros);
          std::lock_guard<std::mutex> lock(journal_mutex_);
          journal_->append(walrec::kCheckpoint, std::move(enc).take());
        });
    messages_.set_observer(
        [this](const std::string& run_label,
               const store::MessageStore::StoredMessage& message) {
          wire::Encoder enc;
          enc.str(run_label)
              .str(message.direction)
              .str(message.kind)
              .str(message.peer)
              .blob(message.payload);
          std::lock_guard<std::mutex> lock(journal_mutex_);
          journal_->append(walrec::kMessage, std::move(enc).take());
        });
  }
  locked_rng_ = std::make_unique<LockedRng>(*rng_);
  known_keys_.emplace(self_, key_.public_key());
  // The deal layer exists before the transport handler is installed: a
  // TTP verdict can arrive as soon as messages flow.
  deals_ = std::make_unique<DealCoordinator>(*this);
  transport_.set_handler([this](const PartyId& from, const Bytes& payload) {
    on_message(from, payload);
  });
  transport_.set_delivery_failure_handler(
      [anchor = anchor_](const PartyId& to) {
        std::lock_guard<std::mutex> guard(anchor->mutex);
        if (anchor->coordinator == nullptr) return;
        anchor->coordinator->handle_delivery_failure(to);
      });
}

Coordinator::~Coordinator() {
  {
    // Block until any in-flight timer / delivery-failure callback drains,
    // then make all future ones no-ops.
    std::lock_guard<std::mutex> guard(anchor_->mutex);
    anchor_->coordinator = nullptr;
  }
  // With the anchor cleared no timer can post new lane work; stop every
  // lane (joining its worker, discarding queued tasks) while all members
  // are still alive for any task caught mid-dispatch.
  stop_lanes();
}

void Coordinator::stop_lanes() {
  std::vector<ObjectShard*> shards;
  {
    std::shared_lock<std::shared_mutex> lock(shard_map_mutex_);
    shards.reserve(shards_.size());
    for (const auto& [object, shard] : shards_) shards.push_back(shard.get());
  }
  for (ObjectShard* shard : shards) {
    if (shard->lane) shard->lane->stop();
  }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

Coordinator::ObjectShard* Coordinator::find_shard(
    const ObjectId& object) const {
  stat_lookups_.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(shard_map_mutex_);
  auto it = shards_.find(object);
  return it == shards_.end() ? nullptr : it->second.get();
}

Coordinator::ObjectShard& Coordinator::find_shard_or_throw(
    const ObjectId& object) const {
  ObjectShard* shard = find_shard(object);
  if (shard == nullptr) {
    throw Error("unknown object: " + object.str());
  }
  return *shard;
}

void Coordinator::exec_on_shard(ObjectShard& shard,
                                const std::function<void()>& fn) {
  std::lock_guard<std::recursive_mutex> lock(*shard.mutex);
  if (crashed_.load(std::memory_order_acquire)) return;
  try {
    fn();
  } catch (const SimulatedCrash& crash) {
    B2B_DEBUG(self_, ": simulated crash at ", crash.point);
    crashed_.store(true, std::memory_order_release);
  }
}

void Coordinator::run_on_shard(ObjectShard& shard, std::function<void()> fn) {
  if (shard.lane) {
    shard.lane_posts.fetch_add(1, std::memory_order_relaxed);
    stat_lane_posts_.fetch_add(1, std::memory_order_relaxed);
    shard.lane->post(
        [this, &shard, fn = std::move(fn)] { exec_on_shard(shard, fn); });
  } else {
    exec_on_shard(shard, fn);
  }
}

// ---------------------------------------------------------------------------
// Certificates
// ---------------------------------------------------------------------------

void Coordinator::add_known_party(const PartyId& party,
                                  crypto::RsaPublicKey key) {
  std::lock_guard<std::mutex> lock(global_mutex_);
  auto it = known_keys_.find(party);
  if (it != known_keys_.end() && it->second.encode() == key.encode()) {
    // Re-learning an identical key is a no-op (no journal record, no
    // reassignment) so pointers handed out by key_of stay stable while
    // other shards verify signatures. Genuinely changing a party's key
    // requires quiescence.
    return;
  }
  if (journal_) {
    wire::Encoder enc;
    enc.str(party.str()).blob(key.encode());
    std::lock_guard<std::mutex> jlock(journal_mutex_);
    journal_->append(walrec::kPartyKey, std::move(enc).take());
  }
  known_keys_[party] = std::move(key);
}

const crypto::RsaPublicKey* Coordinator::key_of(const PartyId& party) const {
  std::lock_guard<std::mutex> lock(global_mutex_);
  auto it = known_keys_.find(party);
  return it == known_keys_.end() ? nullptr : &it->second;
}

std::map<PartyId, crypto::RsaPublicKey> Coordinator::key_directory() const {
  std::lock_guard<std::mutex> lock(global_mutex_);
  return known_keys_;
}

// ---------------------------------------------------------------------------
// Objects
// ---------------------------------------------------------------------------

Replica& Coordinator::register_object(const ObjectId& object,
                                      B2BObject& impl) {
  // The exclusive shard-map lock is the only writer-side lock in the
  // router; it also keeps message dispatch for the new object out until
  // the shard is fully built (including recovery restoration).
  std::unique_lock<std::shared_mutex> map_lock(shard_map_mutex_);
  stat_map_exclusive_.fetch_add(1, std::memory_order_relaxed);
  if (shards_.contains(object)) {
    throw Error("register_object: object already registered: " + object.str());
  }
  auto shard = std::make_unique<ObjectShard>();
  shard->id = object;
  shard->mutex = lock_mode_ == LockMode::kCoarse ? &coarse_mutex_
                                                 : &shard->own_mutex;
  ObjectShard* shard_ptr = shard.get();

  Replica::Callbacks callbacks;
  callbacks.send = [this](const PartyId& to, const Envelope& envelope) {
    send(to, envelope);
  };
  callbacks.now = [this] { return clock_.now_micros(); };
  callbacks.record_evidence = [this](const std::string& kind,
                                     const Bytes& payload) {
    record_evidence(kind, payload);
  };
  callbacks.key_of = [this](const PartyId& party) { return key_of(party); };
  if (pipeline_) {
    callbacks.verify_many = [this](const std::vector<VerifyJob>& jobs) {
      return verify_many(jobs);
    };
  }
  callbacks.learn_key = [this](const PartyId& party,
                               const crypto::RsaPublicKey& key) {
    add_known_party(party, key);
  };
  callbacks.notify = [this](const CoordEvent& event) {
    // Events from different shards are serialised with each other, as
    // with the pre-shard single lock.
    std::lock_guard<std::mutex> lock(observer_mutex_);
    if (observer_) observer_(event);
  };
  callbacks.schedule = [this, anchor = anchor_, shard_ptr](
                           std::uint64_t delay, std::function<void()> fn) {
    // Timers fire on the clock's thread: anchor-check (the coordinator
    // may have been destroyed, e.g. by a crash-recovery test), then route
    // to the owning shard — its lane when one exists (so a deadline
    // handler blocked on one object cannot stall the shared clock
    // thread), inline under the shard mutex otherwise. A simulated crash
    // inside a timer marks the coordinator crashed, exactly like one
    // inside a message handler.
    clock_.schedule_after(delay, [anchor, shard_ptr, fn = std::move(fn)] {
      std::lock_guard<std::mutex> guard(anchor->mutex);
      Coordinator* coordinator = anchor->coordinator;
      if (coordinator == nullptr) return;
      shard_ptr->timer_fires.fetch_add(1, std::memory_order_relaxed);
      coordinator->run_on_shard(*shard_ptr, fn);
    });
  };
  if (journal_) {
    callbacks.journal_record = [this, object](std::uint8_t type,
                                              const Bytes& payload) {
      wire::Encoder enc;
      enc.str(object.str()).raw(payload);
      std::lock_guard<std::mutex> lock(journal_mutex_);
      journal_->append(type, std::move(enc).take());
    };
    callbacks.journal_barrier = [this] {
      std::lock_guard<std::mutex> lock(journal_mutex_);
      journal_->sync();
    };
    callbacks.crash_point = [this](const char* point) {
      std::lock_guard<std::mutex> lock(global_mutex_);
      if (!armed_crash_point_.empty() && armed_crash_point_ == point) {
        throw SimulatedCrash{point};
      }
    };
  }
  shard->replica = std::make_unique<Replica>(self_, object, impl, key_,
                                             *locked_rng_, std::move(callbacks),
                                             checkpoints_, messages_);
  shard->replica->set_sponsor_policy(sponsor_policy_);
  shard->replica->set_decision_rule(decision_rule_);
  shard->replica->set_run_probe(run_probe_interval_micros_, max_run_probes_);
  shard->replica->set_deal_hooks(deals_->make_hooks());
  if (shard_lanes_) {
    shard->lane = lane_pool_ ? std::make_unique<ShardLane>(lane_pool_)
                             : std::make_unique<ShardLane>();
  }
  Replica& ref = *shard->replica;
  if (auto it = recovered_.find(object); it != recovered_.end()) {
    std::lock_guard<std::recursive_mutex> lock(*shard_ptr->mutex);
    ref.restore_recovered(it->second);
    recovered_.erase(it);
  }
  shards_.emplace(object, std::move(shard));
  return ref;
}

std::vector<RunHandle> Coordinator::resume_recovered_runs() {
  std::vector<RunHandle> handles;
  if (crashed_.load(std::memory_order_acquire)) return handles;
  std::vector<ObjectShard*> shards;
  {
    std::shared_lock<std::shared_mutex> lock(shard_map_mutex_);
    shards.reserve(shards_.size());
    for (const auto& [object, shard] : shards_) shards.push_back(shard.get());
  }
  for (ObjectShard* shard : shards) {
    std::lock_guard<std::recursive_mutex> lock(*shard->mutex);
    try {
      std::vector<RunHandle> resumed = shard->replica->resume_recovered_runs();
      handles.insert(handles.end(), resumed.begin(), resumed.end());
    } catch (const SimulatedCrash&) {
      crashed_.store(true, std::memory_order_release);
      break;
    }
  }
  // Deal resume runs after per-run resume (which redoes journaled decides
  // and clears their staged flags), so the deal layer sees the final
  // per-leg picture.
  if (!crashed_.load(std::memory_order_acquire)) {
    try {
      std::vector<RunHandle> deal_handles =
          deals_->resume(std::move(recovered_deals_));
      handles.insert(handles.end(), deal_handles.begin(), deal_handles.end());
    } catch (const SimulatedCrash&) {
      crashed_.store(true, std::memory_order_release);
    }
    recovered_deals_ = RecoveredDealState{};
  }
  return handles;
}

Replica& Coordinator::replica(const ObjectId& object) {
  // Read-only router lookup: shared map lock only, no shard contention.
  return *find_shard_or_throw(object).replica;
}

const Replica& Coordinator::replica(const ObjectId& object) const {
  return *find_shard_or_throw(object).replica;
}

bool Coordinator::has_object(const ObjectId& object) const {
  return find_shard(object) != nullptr;
}

void Coordinator::enable_ttp_termination(const ObjectId& object,
                                         Replica::TtpConfig config) {
  ObjectShard& shard = find_shard_or_throw(object);
  std::lock_guard<std::recursive_mutex> lock(*shard.mutex);
  shard.replica->enable_ttp_termination(std::move(config));
}

// ---------------------------------------------------------------------------
// Propagation interface
// ---------------------------------------------------------------------------

RunHandle Coordinator::aborted_handle(std::string diagnostic) {
  auto handle = std::make_shared<RunResult>();
  handle->diagnostic = std::move(diagnostic);
  handle->outcome.store(RunResult::Outcome::kAborted);
  return handle;
}

RunHandle Coordinator::propagate_on_shard(
    const ObjectId& object, const std::function<RunHandle(Replica&)>& fn) {
  ObjectShard& shard = find_shard_or_throw(object);
  std::lock_guard<std::recursive_mutex> lock(*shard.mutex);
  if (crashed_.load(std::memory_order_acquire)) {
    return aborted_handle("coordinator crashed");
  }
  try {
    return fn(*shard.replica);
  } catch (const SimulatedCrash& crash) {
    crashed_.store(true, std::memory_order_release);
    return aborted_handle(std::string("simulated crash at ") + crash.point);
  }
}

RunHandle Coordinator::propagate_new_state(const ObjectId& object,
                                           Bytes new_state) {
  return propagate_on_shard(object, [&](Replica& replica) {
    return replica.propose_state(std::move(new_state));
  });
}

RunHandle Coordinator::propagate_update(const ObjectId& object, Bytes update,
                                        Bytes new_state) {
  return propagate_on_shard(object, [&](Replica& replica) {
    return replica.propose_update(std::move(update), std::move(new_state));
  });
}

RunHandle Coordinator::propagate_batch(const ObjectId& object,
                                       std::vector<Replica::BatchOp> ops) {
  if (!pipeline_) {
    return aborted_handle("pipelining disabled (Config::pipeline)");
  }
  return propagate_on_shard(object, [&](Replica& replica) {
    return replica.propose_batch(std::move(ops));
  });
}

RunHandle Coordinator::propagate_connect(const ObjectId& object,
                                         const PartyId& via) {
  return propagate_on_shard(
      object, [&](Replica& replica) { return replica.request_connect(via); });
}

RunHandle Coordinator::propagate_disconnect(const ObjectId& object) {
  return propagate_on_shard(
      object, [&](Replica& replica) { return replica.request_disconnect(); });
}

RunHandle Coordinator::propagate_eviction(const ObjectId& object,
                                          std::vector<PartyId> subjects) {
  return propagate_on_shard(object, [&](Replica& replica) {
    return replica.propose_eviction(std::move(subjects));
  });
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void Coordinator::on_message(const PartyId& from, const Bytes& payload) {
  if (crashed_.load(std::memory_order_acquire)) return;
  Envelope envelope;
  try {
    envelope = Envelope::decode(payload);
  } catch (const CodecError& e) {
    B2B_DEBUG(self_, ": undecodable envelope from ", from, ": ", e.what());
    record_evidence(evidence_kind::kViolation,
                    bytes_of("undecodable envelope from " + from.str()));
    return;
  }
  if (envelope.type == MsgType::kDealTerminationVerdict) {
    // Deal-level verdicts are coordinator-scoped, not object-scoped:
    // route to the deal layer (with the same SimulatedCrash containment
    // as shard dispatch) instead of a shard.
    try {
      deals_->on_ttp_verdict(from, envelope);
    } catch (const SimulatedCrash& crash) {
      B2B_DEBUG(self_, ": simulated crash at ", crash.point);
      crashed_.store(true, std::memory_order_release);
    }
    return;
  }
  ObjectShard* shard = find_shard(envelope.object);
  if (shard == nullptr) {
    B2B_DEBUG(self_, ": message for unknown object ", envelope.object);
    return;
  }
  stat_messages_routed_.fetch_add(1, std::memory_order_relaxed);
  run_on_shard(*shard,
               [this, shard, from, envelope = std::move(envelope)] {
                 shard->messages_dispatched.fetch_add(
                     1, std::memory_order_relaxed);
                 shard->replica->handle(from, envelope);
               });
}

std::vector<bool> Coordinator::verify_many(const std::vector<VerifyJob>& jobs) {
  std::vector<bool> results(jobs.size(), false);
  std::vector<crypto::BatchVerifyItem> items;
  std::vector<std::size_t> index_of;  // items index -> jobs index
  items.reserve(jobs.size());
  index_of.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // key_of hands out a pointer into known_keys_, stable for the
    // coordinator's lifetime (keys are never erased).
    const crypto::RsaPublicKey* key = key_of(jobs[i].signer);
    if (key == nullptr) continue;  // unknown signer stays false
    crypto::BatchVerifyItem item;
    item.key = key;
    item.digest = crypto::Sha256::hash(jobs[i].message);
    item.signature = jobs[i].signature;
    items.push_back(std::move(item));
    index_of.push_back(i);
  }
  if (items.empty()) return results;
  std::lock_guard<std::mutex> lock(batch_verify_mutex_);
  crypto::BatchVerifyResult out =
      crypto::batch_verify(items, *screen_rng_, signature_cache_.get());
  for (std::size_t j = 0; j < items.size(); ++j) {
    results[index_of[j]] = out.ok[j];
  }
  return results;
}

void Coordinator::handle_delivery_failure(const PartyId& to) {
  if (crashed_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(global_mutex_);
    if (!suspects_.insert(to).second) return;
  }
  record_evidence("peer.suspect", bytes_of(to.str()));
}

void Coordinator::record_evidence(const std::string& kind,
                                  const Bytes& payload) {
  // Framing and the (RSA-heavy) trusted stamp happen outside every lock:
  // shards stamp their evidence in parallel and only the chain append is
  // serialised.
  wire::Encoder framed;
  framed.blob(payload);
  if (tss_ != nullptr) {
    framed.blob(tss_->stamp(payload).encode());
  } else {
    framed.blob({});
  }
  Bytes framed_bytes = std::move(framed).take();
  // One lock covers timestamping-by-clock, the journal append and the
  // in-memory append, so the journaled order of kEvidence records equals
  // the chain's append order (recovery rebuilds the identical chain).
  std::lock_guard<std::mutex> lock(evidence_mutex_);
  const std::uint64_t now = clock_.now_micros();
  if (journal_) {
    // Journal-first: the evidence chain is rebuilt from these records in
    // append order, reproducing the identical hash chain after a crash.
    wire::Encoder enc;
    enc.str(kind).blob(framed_bytes).u64(now);
    std::lock_guard<std::mutex> jlock(journal_mutex_);
    journal_->append(walrec::kEvidence, std::move(enc).take());
  }
  evidence_.append(kind, std::move(framed_bytes), now);
  // Chain-head anchoring (DESIGN.md §13): every N appends, sign the head
  // record's chain hash and append the anchor as an evidence record of
  // its own — journaled and chained like any other, so recovery rebuilds
  // it in place. One RSA signature amortised over N records; the guard on
  // the anchor's own kind keeps the chain from anchoring its anchors.
  if (evidence_anchor_interval_ > 0 &&
      kind != evidence_kind::kEvidenceAnchor &&
      evidence_.size() % evidence_anchor_interval_ == 0) {
    const store::EvidenceRecord& head = evidence_.at(evidence_.size() - 1);
    EvidenceAnchor anchor;
    anchor.index = head.index;
    anchor.head_hash = head.record_hash;
    anchor.signature = key_.sign(anchor.signed_bytes());
    wire::Encoder aframe;
    aframe.blob(anchor.encode());
    aframe.blob({});  // anchors carry no TSS stamp (already inside the lock)
    Bytes anchor_framed = std::move(aframe).take();
    const std::uint64_t anchor_time = clock_.now_micros();
    if (journal_) {
      wire::Encoder enc;
      enc.str(evidence_kind::kEvidenceAnchor)
          .blob(anchor_framed)
          .u64(anchor_time);
      std::lock_guard<std::mutex> jlock(journal_mutex_);
      journal_->append(walrec::kEvidence, std::move(enc).take());
    }
    evidence_.append(evidence_kind::kEvidenceAnchor, std::move(anchor_framed),
                     anchor_time);
  }
}

// ---------------------------------------------------------------------------
// Journal replay
// ---------------------------------------------------------------------------

void Coordinator::replay_journal() {
  for (const store::JournalRecord& record : journal_->records()) {
    recovered_any_ = true;
    wire::Decoder dec{record.payload};
    switch (record.type) {
      case walrec::kPartyKey: {
        PartyId party{dec.str()};
        Bytes key = dec.blob();
        dec.expect_done();
        known_keys_[party] = crypto::RsaPublicKey::decode(key);
        break;
      }
      case walrec::kEvidence: {
        std::string kind = dec.str();
        Bytes framed = dec.blob();
        std::uint64_t time = dec.u64();
        dec.expect_done();
        evidence_.append(std::move(kind), std::move(framed), time);
        break;
      }
      case walrec::kCheckpoint: {
        ObjectId object{dec.str()};
        store::Checkpoint checkpoint;
        checkpoint.sequence = dec.u64();
        checkpoint.tuple = dec.blob();
        checkpoint.state = dec.blob();
        checkpoint.time_micros = dec.u64();
        dec.expect_done();
        checkpoints_.put(object, std::move(checkpoint));
        break;
      }
      case walrec::kMessage: {
        std::string run_label = dec.str();
        store::MessageStore::StoredMessage message;
        message.direction = dec.str();
        message.kind = dec.str();
        message.peer = dec.str();
        message.payload = dec.blob();
        dec.expect_done();
        messages_.add(run_label, std::move(message));
        break;
      }
      case walrec::kDealOpen: {
        DealEnlistMsg enlist = DealEnlistMsg::decode(record.payload);
        recovered_deals_.open[enlist.proposal.deal_id] = record.payload;
        break;
      }
      case walrec::kDealDecided: {
        // Last one wins: the TTP-abort path journals an overriding abort
        // after the commit decision.
        DealDecisionMsg decision = DealDecisionMsg::decode(record.payload);
        recovered_deals_.decisions[decision.decision.deal_id] =
            record.payload;
        break;
      }
      case walrec::kDealClosed: {
        std::string deal_id = dec.str();
        dec.expect_done();
        recovered_deals_.open.erase(deal_id);
        recovered_deals_.decisions.erase(deal_id);
        recovered_deals_.ttp_submitted.erase(deal_id);
        recovered_deals_.ttp_verdicts.erase(deal_id);
        break;
      }
      case walrec::kDealTtpSubmitted: {
        std::string deal_id = dec.str();
        dec.expect_done();
        recovered_deals_.ttp_submitted.insert(std::move(deal_id));
        break;
      }
      case walrec::kDealVerdictDelivered: {
        Bytes signature;
        DealTerminationVerdict verdict =
            DealTerminationVerdict::decode_fields(record.payload, &signature);
        recovered_deals_.ttp_verdicts[verdict.deal_id] = record.payload;
        break;
      }
      default: {
        // Object-scoped replica record: first field is the object id.
        // Each object's shard is rebuilt independently from its own
        // record subsequence; register_object hands the result to the
        // object's replica.
        ObjectId object{dec.str()};
        replay_object_record(record.type, object, recovered_[object], dec);
        break;
      }
    }
  }
}

void Coordinator::replay_object_record(std::uint8_t type,
                                       const ObjectId& object,
                                       Replica::RecoveredObjectState& rec,
                                       wire::Decoder& dec) {
  switch (type) {
    case walrec::kSnapshot: {
      // Snapshots are taken at every durable-state mutation; runs opened
      // before this snapshot stay open (proposer snapshots precede the
      // run-closed record).
      rec.snapshot = ReplicaSnapshot::decode(dec.blob());
      dec.expect_done();
      break;
    }
    case walrec::kProposerRun: {
      auto run = Replica::ProposerRunRecord::decode(dec.blob());
      dec.expect_done();
      const StateTuple& proposed = run.propose.proposal.proposed;
      rec.seen_labels.insert(proposed.label());
      rec.max_sequence = std::max(rec.max_sequence, proposed.sequence);
      rec.proposer_run = std::move(run);
      rec.proposer_responses.clear();
      rec.proposer_decide.reset();
      break;
    }
    case walrec::kResponseReceived: {
      RespondMsg response = RespondMsg::decode(dec.blob());
      dec.expect_done();
      // A response belongs to the open plain run or the open batch run
      // (both accumulate in proposer_responses; at most one is open).
      const bool matches_plain =
          rec.proposer_run.has_value() &&
          response.response.proposed ==
              rec.proposer_run->propose.proposal.proposed;
      const bool matches_batch =
          rec.batch_proposer_run.has_value() &&
          response.response.proposed ==
              rec.batch_proposer_run->propose.proposal.proposed;
      if (!matches_plain && !matches_batch) {
        break;  // response for an already-closed run
      }
      const bool duplicate = std::any_of(
          rec.proposer_responses.begin(), rec.proposer_responses.end(),
          [&](const RespondMsg& existing) {
            return existing.response.responder == response.response.responder;
          });
      if (!duplicate) rec.proposer_responses.push_back(std::move(response));
      break;
    }
    case walrec::kDecideSent: {
      DecideMsg decide = DecideMsg::decode(dec.blob());
      dec.expect_done();
      if (rec.proposer_run.has_value() &&
          decide.proposed == rec.proposer_run->propose.proposal.proposed) {
        rec.proposer_decide = std::move(decide);
      }
      break;
    }
    case walrec::kProposerClosed: {
      std::string label = dec.str();
      dec.expect_done();
      rec.seen_labels.insert(label);
      if (rec.proposer_run.has_value() &&
          rec.proposer_run->propose.proposal.proposed.label() == label) {
        rec.proposer_run.reset();
        rec.proposer_responses.clear();
        rec.proposer_decide.reset();
      }
      if (rec.batch_proposer_run.has_value() &&
          rec.batch_proposer_run->propose.proposal.proposed.label() == label) {
        rec.batch_proposer_run.reset();
        rec.proposer_responses.clear();
        rec.batch_proposer_decide.reset();
      }
      rec.termination_submissions.erase(label);
      rec.verdicts.erase(label);
      rec.staged_runs.erase(label);
      break;
    }
    case walrec::kResponderRun: {
      auto run = Replica::ResponderRunRecord::decode(dec.blob());
      dec.expect_done();
      const StateTuple& proposed = run.propose.proposal.proposed;
      rec.seen_labels.insert(proposed.label());
      rec.max_sequence = std::max(rec.max_sequence, proposed.sequence);
      rec.responder_runs.insert_or_assign(proposed.label(), std::move(run));
      break;
    }
    case walrec::kDecideDelivered: {
      DecideMsg decide = DecideMsg::decode(dec.blob());
      dec.expect_done();
      const std::string label = decide.proposed.label();
      if (rec.responder_runs.contains(label)) {
        rec.responder_decides.insert_or_assign(label, std::move(decide));
      }
      break;
    }
    case walrec::kResponderClosed: {
      std::string label = dec.str();
      dec.expect_done();
      rec.seen_labels.insert(label);
      rec.responder_runs.erase(label);
      rec.responder_decides.erase(label);
      rec.batch_responder_runs.erase(label);
      rec.batch_responder_decides.erase(label);
      rec.termination_submissions.erase(label);
      rec.verdicts.erase(label);
      break;
    }
    case walrec::kSponsorRun: {
      auto run = Replica::SponsorRunRecord::decode(dec.blob());
      dec.expect_done();
      const GroupTuple& new_group = run.propose.proposal.new_group;
      rec.seen_labels.insert(new_group.label());
      rec.max_sequence = std::max(rec.max_sequence, new_group.sequence);
      // The request nonce is marked processed so a recovered sponsor
      // re-answers (never re-runs) a duplicate of the same request.
      rec.processed_nonces.insert(
          to_hex(run.propose.proposal.request.request_nonce));
      rec.sponsor_run = std::move(run);
      rec.sponsor_responses.clear();
      rec.sponsor_decide.reset();
      break;
    }
    case walrec::kMembershipResponse: {
      MembershipRespondMsg response = MembershipRespondMsg::decode(dec.blob());
      dec.expect_done();
      if (!rec.sponsor_run.has_value() ||
          response.response.new_group !=
              rec.sponsor_run->propose.proposal.new_group) {
        break;  // response for an already-closed run
      }
      const bool duplicate = std::any_of(
          rec.sponsor_responses.begin(), rec.sponsor_responses.end(),
          [&](const MembershipRespondMsg& existing) {
            return existing.response.responder == response.response.responder;
          });
      if (!duplicate) rec.sponsor_responses.push_back(std::move(response));
      break;
    }
    case walrec::kMembershipDecideSent: {
      MembershipDecideMsg decide = MembershipDecideMsg::decode(dec.blob());
      dec.expect_done();
      if (rec.sponsor_run.has_value() &&
          decide.new_group == rec.sponsor_run->propose.proposal.new_group) {
        rec.sponsor_decide = std::move(decide);
      }
      break;
    }
    case walrec::kSponsorClosed: {
      std::string label = dec.str();
      dec.expect_done();
      rec.seen_labels.insert(label);
      if (rec.sponsor_run.has_value() &&
          rec.sponsor_run->propose.proposal.new_group.label() == label) {
        // processed_nonces keeps the request nonce: a late duplicate of
        // the request must be re-answered, not re-run.
        rec.sponsor_run.reset();
        rec.sponsor_responses.clear();
        rec.sponsor_decide.reset();
      }
      break;
    }
    case walrec::kMembershipResponderRun: {
      auto run = Replica::MembershipResponderRunRecord::decode(dec.blob());
      dec.expect_done();
      const GroupTuple& new_group = run.propose.proposal.new_group;
      rec.seen_labels.insert(new_group.label());
      rec.max_sequence = std::max(rec.max_sequence, new_group.sequence);
      rec.membership_responder_runs.insert_or_assign(new_group.label(),
                                                     std::move(run));
      break;
    }
    case walrec::kMembershipDecideDelivered: {
      MembershipDecideMsg decide = MembershipDecideMsg::decode(dec.blob());
      dec.expect_done();
      const std::string label = decide.new_group.label();
      if (rec.membership_responder_runs.contains(label)) {
        rec.membership_decides.insert_or_assign(label, std::move(decide));
      }
      break;
    }
    case walrec::kMembershipResponderClosed: {
      std::string label = dec.str();
      dec.expect_done();
      rec.seen_labels.insert(label);
      rec.membership_responder_runs.erase(label);
      rec.membership_decides.erase(label);
      break;
    }
    case walrec::kSubjectRequest: {
      auto request = Replica::SubjectRequestRecord::decode(dec.blob());
      dec.expect_done();
      rec.subject_request = std::move(request);
      break;
    }
    case walrec::kSubjectClosed: {
      std::string nonce_key = dec.str();
      dec.expect_done();
      if (rec.subject_request.has_value() &&
          to_hex(rec.subject_request->request.request_nonce) == nonce_key) {
        rec.subject_request.reset();
      }
      break;
    }
    case walrec::kTerminationSubmitted: {
      std::string label = dec.str();
      bool as_proposer = dec.u8() != 0;
      dec.expect_done();
      rec.termination_submissions.insert_or_assign(label, as_proposer);
      break;
    }
    case walrec::kVerdictDelivered: {
      Bytes body = dec.blob();
      dec.expect_done();
      Bytes signature;
      TerminationVerdict verdict =
          TerminationVerdict::decode_fields(body, &signature);
      rec.verdicts.insert_or_assign(verdict.proposed.label(),
                                    std::move(body));
      break;
    }
    case walrec::kDealStaged: {
      std::string label = dec.str();
      std::string deal_id = dec.str();
      dec.expect_done();
      rec.staged_runs.insert_or_assign(std::move(label), std::move(deal_id));
      break;
    }
    case walrec::kDealEnlisted: {
      Bytes body = dec.blob();
      dec.expect_done();
      DealEnlistMsg enlist = DealEnlistMsg::decode(body);
      for (const DealLeg& leg : enlist.proposal.legs) {
        if (leg.object == object) {
          rec.deal_enlists.insert_or_assign(leg.proposed.label(), body);
        }
      }
      break;
    }
    case walrec::kBatchProposerRun: {
      auto run = Replica::BatchProposerRunRecord::decode(dec.blob());
      dec.expect_done();
      for (const BatchItem& item : run.propose.items) {
        rec.seen_labels.insert(item.proposed.label());
        rec.max_sequence = std::max(rec.max_sequence, item.proposed.sequence);
      }
      rec.batch_proposer_run = std::move(run);
      rec.proposer_responses.clear();
      rec.batch_proposer_decide.reset();
      break;
    }
    case walrec::kBatchDecideSent: {
      BatchDecideMsg decide = BatchDecideMsg::decode(dec.blob());
      dec.expect_done();
      if (rec.batch_proposer_run.has_value() &&
          decide.proposed ==
              rec.batch_proposer_run->propose.proposal.proposed) {
        rec.batch_proposer_decide = std::move(decide);
      }
      break;
    }
    case walrec::kBatchResponderRun: {
      auto run = Replica::BatchResponderRunRecord::decode(dec.blob());
      dec.expect_done();
      for (const BatchItem& item : run.propose.items) {
        rec.seen_labels.insert(item.proposed.label());
        rec.max_sequence = std::max(rec.max_sequence, item.proposed.sequence);
      }
      const std::string label = run.propose.proposal.proposed.label();
      rec.batch_responder_runs.insert_or_assign(label, std::move(run));
      break;
    }
    case walrec::kBatchDecideDelivered: {
      BatchDecideMsg decide = BatchDecideMsg::decode(dec.blob());
      dec.expect_done();
      const std::string label = decide.proposed.label();
      if (rec.batch_responder_runs.contains(label)) {
        rec.batch_responder_decides.insert_or_assign(label, std::move(decide));
      }
      break;
    }
    default:
      // Unknown record type: written by a newer version. The CRC vouched
      // for its integrity; skipping it is the conservative choice.
      break;
  }
}

Coordinator::EvidencePayload Coordinator::decode_evidence_payload(
    BytesView framed) {
  wire::Decoder dec{framed};
  EvidencePayload out;
  out.payload = dec.blob();
  Bytes stamp = dec.blob();
  dec.expect_done();
  if (!stamp.empty()) {
    out.timestamp = crypto::Timestamp::decode(stamp);
  }
  return out;
}

void Coordinator::send(const PartyId& to, const Envelope& envelope) {
  Bytes encoded = envelope.encode();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++protocol_stats_.envelopes_sent;
    ++protocol_stats_.sent_by_type[envelope.type];
    protocol_stats_.envelope_bytes_sent += encoded.size();
  }
  transport_.send(to, std::move(encoded));
}

// ---------------------------------------------------------------------------
// Observation & synchronisation
// ---------------------------------------------------------------------------

Coordinator::RouterStats Coordinator::router_stats() const {
  RouterStats stats;
  stats.lookups = stat_lookups_.load(std::memory_order_relaxed);
  stats.map_exclusive_locks = stat_map_exclusive_.load(std::memory_order_relaxed);
  stats.messages_routed = stat_messages_routed_.load(std::memory_order_relaxed);
  stats.lane_posts = stat_lane_posts_.load(std::memory_order_relaxed);
  return stats;
}

Coordinator::ShardStats Coordinator::shard_stats(const ObjectId& object) const {
  const ObjectShard& shard = find_shard_or_throw(object);
  ShardStats stats;
  stats.messages_dispatched =
      shard.messages_dispatched.load(std::memory_order_relaxed);
  stats.timer_fires = shard.timer_fires.load(std::memory_order_relaxed);
  stats.lane_posts = shard.lane_posts.load(std::memory_order_relaxed);
  return stats;
}

std::uint64_t Coordinator::violations_detected() const {
  std::vector<ObjectShard*> shards;
  {
    std::shared_lock<std::shared_mutex> lock(shard_map_mutex_);
    shards.reserve(shards_.size());
    for (const auto& [object, shard] : shards_) shards.push_back(shard.get());
  }
  std::uint64_t total = 0;
  for (ObjectShard* shard : shards) {
    std::lock_guard<std::recursive_mutex> lock(*shard->mutex);
    total += shard->replica->violations_detected();
  }
  return total;
}

bool Coordinator::lanes_idle() const {
  std::shared_lock<std::shared_mutex> lock(shard_map_mutex_);
  for (const auto& [object, shard] : shards_) {
    if (shard->lane && !shard->lane->idle()) return false;
  }
  return true;
}

void Coordinator::synchronize() const {
  std::vector<ObjectShard*> shards;
  {
    std::shared_lock<std::shared_mutex> lock(shard_map_mutex_);
    shards.reserve(shards_.size());
    for (const auto& [object, shard] : shards_) shards.push_back(shard.get());
  }
  for (ObjectShard* shard : shards) {
    if (shard->lane) shard->lane->wait_idle();
  }
  for (ObjectShard* shard : shards) {
    std::lock_guard<std::recursive_mutex> lock(*shard->mutex);
  }
  { std::lock_guard<std::mutex> lock(global_mutex_); }
  { std::lock_guard<std::mutex> lock(evidence_mutex_); }
  { std::lock_guard<std::mutex> lock(stats_mutex_); }
}

}  // namespace b2b::core
