#include "b2b/deal_messages.hpp"

#include "common/error.hpp"

namespace b2b::core {

namespace {
constexpr std::uint8_t kTagDealProposal = 0x12;
constexpr std::uint8_t kTagDealDecision = 0x13;
constexpr std::uint8_t kTagDealTerminationRequest = 0x14;
constexpr std::uint8_t kTagDealTerminationVerdict = 0x15;
}  // namespace

// ---------------------------------------------------------------------------
// DealLeg
// ---------------------------------------------------------------------------

void DealLeg::encode_into(wire::Encoder& enc) const {
  enc.str(object.str());
  proposed.encode_into(enc);
}

DealLeg DealLeg::decode_from(wire::Decoder& dec) {
  DealLeg leg;
  leg.object = ObjectId{dec.str()};
  leg.proposed = StateTuple::decode_from(dec);
  return leg;
}

// ---------------------------------------------------------------------------
// DealProposal / DealEnlistMsg
// ---------------------------------------------------------------------------

void DealProposal::encode_into(wire::Encoder& enc) const {
  enc.str(deal_id).str(initiator.str());
  enc.varint(legs.size());
  for (const DealLeg& leg : legs) leg.encode_into(enc);
  enc.u64(deadline_micros);
}

DealProposal DealProposal::decode_from(wire::Decoder& dec) {
  DealProposal p;
  p.deal_id = dec.str();
  p.initiator = PartyId{dec.str()};
  std::uint64_t n = dec.varint();
  p.legs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    p.legs.push_back(DealLeg::decode_from(dec));
  }
  p.deadline_micros = dec.u64();
  return p;
}

Bytes DealProposal::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagDealProposal);
  encode_into(enc);
  return std::move(enc).take();
}

Bytes DealEnlistMsg::encode() const {
  wire::Encoder enc;
  proposal.encode_into(enc);
  enc.blob(signature);
  return std::move(enc).take();
}

DealEnlistMsg DealEnlistMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  DealEnlistMsg msg;
  msg.proposal = DealProposal::decode_from(dec);
  msg.signature = dec.blob();
  dec.expect_done();
  return msg;
}

// ---------------------------------------------------------------------------
// DealDecision / DealDecisionMsg
// ---------------------------------------------------------------------------

void DealDecision::encode_into(wire::Encoder& enc) const {
  enc.str(deal_id).str(initiator.str());
  enc.u8(static_cast<std::uint8_t>(verdict));
  enc.varint(legs.size());
  for (const DealLeg& leg : legs) leg.encode_into(enc);
  enc.str(diagnostic);
}

DealDecision DealDecision::decode_from(wire::Decoder& dec) {
  DealDecision d;
  d.deal_id = dec.str();
  d.initiator = PartyId{dec.str()};
  std::uint8_t verdict = dec.u8();
  if (verdict != 1 && verdict != 2) throw CodecError("deal decision: verdict");
  d.verdict = static_cast<Verdict>(verdict);
  std::uint64_t n = dec.varint();
  d.legs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    d.legs.push_back(DealLeg::decode_from(dec));
  }
  d.diagnostic = dec.str();
  return d;
}

Bytes DealDecision::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagDealDecision);
  encode_into(enc);
  return std::move(enc).take();
}

Bytes DealDecisionMsg::encode() const {
  wire::Encoder enc;
  decision.encode_into(enc);
  enc.blob(signature);
  return std::move(enc).take();
}

DealDecisionMsg DealDecisionMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  DealDecisionMsg msg;
  msg.decision = DealDecision::decode_from(dec);
  msg.signature = dec.blob();
  dec.expect_done();
  return msg;
}

// ---------------------------------------------------------------------------
// DealTerminationRequest
// ---------------------------------------------------------------------------

namespace {

void encode_deal_request_fields(wire::Encoder& enc,
                                const DealTerminationRequest& r) {
  enc.str(r.deal_id).str(r.requester.str());
  enc.varint(r.legs.size());
  for (const TerminationRequest& leg : r.legs) enc.blob(leg.encode());
}

}  // namespace

Bytes DealTerminationRequest::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagDealTerminationRequest);
  encode_deal_request_fields(enc, *this);
  return std::move(enc).take();
}

Bytes DealTerminationRequest::encode_with_signature(
    const Bytes& signature) const {
  wire::Encoder enc;
  encode_deal_request_fields(enc, *this);
  enc.blob(signature);
  return std::move(enc).take();
}

DealTerminationRequest DealTerminationRequest::decode_fields(
    BytesView data, Bytes* signature) {
  wire::Decoder dec{data};
  DealTerminationRequest r;
  r.deal_id = dec.str();
  r.requester = PartyId{dec.str()};
  std::uint64_t n = dec.varint();
  r.legs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    r.legs.push_back(TerminationRequest::decode_fields(dec.blob(), nullptr));
  }
  if (signature != nullptr) *signature = dec.blob();
  dec.expect_done();
  return r;
}

// ---------------------------------------------------------------------------
// DealTerminationVerdict
// ---------------------------------------------------------------------------

namespace {

void encode_deal_verdict_fields(wire::Encoder& enc,
                                const DealTerminationVerdict& v) {
  enc.str(v.deal_id).u8(v.verdict);
  enc.varint(v.leg_verdicts.size());
  for (const Bytes& leg : v.leg_verdicts) enc.blob(leg);
  enc.u64(v.time_micros);
}

}  // namespace

Bytes DealTerminationVerdict::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagDealTerminationVerdict);
  encode_deal_verdict_fields(enc, *this);
  return std::move(enc).take();
}

Bytes DealTerminationVerdict::encode_with_signature(
    const Bytes& signature) const {
  wire::Encoder enc;
  encode_deal_verdict_fields(enc, *this);
  enc.blob(signature);
  return std::move(enc).take();
}

DealTerminationVerdict DealTerminationVerdict::decode_fields(
    BytesView data, Bytes* signature) {
  wire::Decoder dec{data};
  DealTerminationVerdict v;
  v.deal_id = dec.str();
  v.verdict = dec.u8();
  if (v.verdict != 1 && v.verdict != 2) {
    throw CodecError("deal verdict: verdict");
  }
  std::uint64_t n = dec.varint();
  v.leg_verdicts.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.leg_verdicts.push_back(dec.blob());
  v.time_micros = dec.u64();
  if (signature != nullptr) *signature = dec.blob();
  dec.expect_done();
  return v;
}

}  // namespace b2b::core
