// Arbiter: extra-protocol dispute resolution (§4.1, §7).
//
// "It is assumed that, if necessary, this evidence can be used in
// extra-protocol arbitration to resolve disputes." The Arbiter plays that
// third party: given one participant's persistent message store (every
// protocol message it sent or received, §4.2) it reconstructs the
// transcript of a named run and verifies it with only public keys —
// reaching the same verdict a participant would, and listing every defect
// when the evidence is not intact.
#pragma once

#include <optional>
#include <string>

#include "b2b/deal_messages.hpp"
#include "b2b/evidence.hpp"
#include "store/evidence_log.hpp"
#include "store/message_store.hpp"

namespace b2b::core {

/// The outcome of arbitration over one run.
struct ArbitrationReport {
  /// A proposal for the run was found in the store.
  bool proposal_found = false;
  /// A decide message for the run was found.
  bool decide_found = false;
  /// Full cryptographic verdict (meaningful when proposal_found).
  VerifiedRun verdict;
  /// One-paragraph human-readable ruling.
  std::string ruling;
};

class Arbiter {
 public:
  explicit Arbiter(EvidenceVerifier verifier) : verifier_(std::move(verifier)) {}

  /// Rebuild the transcript of `run_label` from a participant's message
  /// store. Returns nullopt if the store holds no proposal for the run.
  static std::optional<RunTranscript> reconstruct(
      const store::MessageStore& messages, const std::string& run_label);

  /// Arbitrate the run: reconstruct, verify, and rule. When
  /// `expected_recipients` is given, response completeness is enforced
  /// (required to rule a state *valid*).
  ArbitrationReport arbitrate(
      const store::MessageStore& messages, const std::string& run_label,
      const std::vector<PartyId>* expected_recipients = nullptr) const;

  /// Deal-phase arbitration over one leg (DESIGN.md §12): verify the
  /// signed enlist and decision artifacts stored under the leg's run
  /// label and cross-check them against the per-run transcript. Defection
  /// — prepare-then-refuse, equivocating verdicts, a committed leg with
  /// no commit decision — surfaces as violations blamed on a party.
  struct DealArbitrationReport {
    bool enlist_found = false;
    bool decision_found = false;
    /// The verified deal verdict (meaningful when decision_found and no
    /// equivocation): true = commit.
    bool committed = false;
    /// Two differently-signed decisions for the same deal id were found.
    bool equivocation = false;
    /// Party to blame for each violation (the deal initiator for enlist/
    /// decision defects) — empty means no provable defector.
    std::vector<PartyId> blamed;
    std::vector<std::string> violations;
    /// Per-run arbitration of the leg itself.
    ArbitrationReport leg;
    std::string ruling;
  };
  DealArbitrationReport arbitrate_deal(
      const store::MessageStore& messages, const std::string& leg_label,
      const std::map<PartyId, crypto::RsaPublicKey>& keys,
      const std::vector<PartyId>* expected_recipients = nullptr) const;

  /// Offline validation of an anchored evidence log (DESIGN.md §13).
  /// Walks the hash chain, then checks every "evidence.anchor" record:
  /// the anchor must decode, its head_hash must equal the chain hash of
  /// the record it claims to cover, and its signature must verify under
  /// `signer`. A log whose chain is intact and whose newest anchor is
  /// valid is trustworthy up to that anchor's index with ONE signature
  /// check — the chain links everything below it.
  struct AnchorReport {
    /// EvidenceLog::verify_chain over the whole log.
    bool chain_intact = false;
    std::size_t anchors_seen = 0;
    std::size_t anchors_valid = 0;
    /// Highest index covered by a VALID anchor (nullopt if none).
    std::optional<std::uint64_t> highest_anchored_index;
    /// chain_intact and every anchor present is valid.
    bool all_anchors_valid = false;
    std::vector<std::string> problems;
  };
  static AnchorReport verify_anchored_spans(const store::EvidenceLog& log,
                                            const crypto::RsaPublicKey& signer);

 private:
  EvidenceVerifier verifier_;
};

}  // namespace b2b::core
