#include "b2b/deal.hpp"

#include <algorithm>

#include "b2b/coordinator.hpp"
#include "b2b/recovery.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "wire/codec.hpp"

namespace b2b::core {

namespace {

/// Deal ids derived locally look like "deal:<initiator>:<n>". Returns the
/// trailing counter when `id` matches this party's prefix, 0 otherwise —
/// used to keep the local counter ahead of replayed deals.
std::uint64_t local_deal_counter(const std::string& id,
                                 const std::string& self) {
  const std::string prefix = "deal:" + self + ":";
  if (id.rfind(prefix, 0) != 0) return 0;
  std::uint64_t value = 0;
  for (std::size_t i = prefix.size(); i < id.size(); ++i) {
    const char c = id[i];
    if (c < '0' || c > '9') return 0;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

DealCoordinator::DealCoordinator(Coordinator& host) : host_(host) {}

void DealCoordinator::enable_ttp_escape(TtpEscape escape) {
  std::lock_guard<std::mutex> lock(mutex_);
  escape_ = std::move(escape);
}

DealCoordinator::Stats DealCoordinator::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::optional<DealDecisionMsg> DealCoordinator::decision_of(
    const std::string& deal_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = deals_.find(deal_id);
  if (it == deals_.end()) return std::nullopt;
  return it->second.decision;
}

// ---------------------------------------------------------------------------
// Host plumbing
// ---------------------------------------------------------------------------

bool DealCoordinator::exec_on_object(const ObjectId& object,
                                     const std::function<void(Replica&)>& fn) {
  Coordinator::ObjectShard& shard = host_.find_shard_or_throw(object);
  std::lock_guard<std::recursive_mutex> lock(*shard.mutex);
  if (host_.crashed_.load(std::memory_order_acquire)) return false;
  try {
    fn(*shard.replica);
  } catch (const SimulatedCrash& crash) {
    B2B_DEBUG(host_.self_, ": simulated crash at ", crash.point);
    host_.crashed_.store(true, std::memory_order_release);
    return false;
  }
  return true;
}

void DealCoordinator::hit_crash_point(const char* point) {
  std::lock_guard<std::mutex> lock(host_.global_mutex_);
  if (!host_.armed_crash_point_.empty() &&
      host_.armed_crash_point_ == point) {
    throw SimulatedCrash{point};
  }
}

void DealCoordinator::journal_deal(std::uint8_t type, Bytes payload) {
  if (!host_.journal_) return;
  std::lock_guard<std::mutex> lock(host_.journal_mutex_);
  host_.journal_->append(type, std::move(payload));
  host_.journal_->sync();
}

void DealCoordinator::schedule(std::uint64_t delay_micros,
                               std::function<void()> fn) {
  host_.clock_.schedule_after(
      delay_micros, [anchor = host_.anchor_, fn = std::move(fn)] {
        std::lock_guard<std::mutex> guard(anchor->mutex);
        Coordinator* coordinator = anchor->coordinator;
        if (coordinator == nullptr) return;
        if (coordinator->crashed_.load(std::memory_order_acquire)) return;
        try {
          fn();
        } catch (const SimulatedCrash& crash) {
          B2B_DEBUG(coordinator->self_, ": simulated crash at ", crash.point);
          coordinator->crashed_.store(true, std::memory_order_release);
        }
      });
}

Replica::DealHooks DealCoordinator::make_hooks() {
  Replica::DealHooks hooks;
  hooks.on_leg_prepared = [this](const ObjectId& object,
                                 const std::string& label, bool all_accept,
                                 const std::vector<PartyId>& vetoers) {
    on_leg_prepared(object, label, all_accept, vetoers);
  };
  hooks.on_leg_deadline = [this](const ObjectId& object,
                                 const std::string& label) {
    on_leg_deadline(object, label);
  };
  return hooks;
}

void DealCoordinator::complete_handle(const RunHandle& handle,
                                      RunResult::Outcome outcome,
                                      std::string diagnostic,
                                      std::vector<PartyId> vetoers,
                                      const std::string& label) {
  handle->diagnostic = std::move(diagnostic);
  handle->vetoers = std::move(vetoers);
  handle->run_label = label;
  // Outcome last: done() pollers must observe the fields above.
  handle->outcome = outcome;
  if (handle->on_complete) handle->on_complete(*handle);
}

std::string DealCoordinator::derive_deal_id(
    const std::vector<LegSpec>& legs) {
  (void)legs;
  std::lock_guard<std::mutex> lock(mutex_);
  return "deal:" + host_.self_.str() + ":" +
         std::to_string(next_local_seq_++);
}

// ---------------------------------------------------------------------------
// Initiation
// ---------------------------------------------------------------------------

RunHandle DealCoordinator::start_deal(DealSpec spec) {
  if (spec.legs.empty()) {
    return host_.aborted_handle("deal with no legs");
  }
  for (std::size_t i = 0; i < spec.legs.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.legs.size(); ++j) {
      if (spec.legs[i].object == spec.legs[j].object) {
        return host_.aborted_handle("deal with duplicate leg object: " +
                                    spec.legs[i].object.str());
      }
    }
  }
  const std::string deal_id =
      spec.deal_id.empty() ? derive_deal_id(spec.legs) : spec.deal_id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (deals_.contains(deal_id)) {
      return host_.aborted_handle("duplicate deal id: " + deal_id);
    }
  }

  // Phase 1: stage a proposer run on every leg object. Nothing is sent;
  // a failure (busy replica, lost race) unwinds the legs staged so far.
  struct Staged {
    ObjectId object;
    Replica::StagedLeg leg;
  };
  std::vector<Staged> staged;
  std::string failure;
  for (const LegSpec& leg_spec : spec.legs) {
    Replica::StagedLeg out;
    if (!exec_on_object(leg_spec.object, [&](Replica& replica) {
          out = replica.stage_deal_run(leg_spec.is_update, leg_spec.payload,
                                       leg_spec.new_state, deal_id);
        })) {
      failure = "coordinator crashed";
      break;
    }
    if (out.label.empty()) {
      failure = leg_spec.object.str() + ": " + out.handle->diagnostic;
      break;
    }
    staged.push_back({leg_spec.object, std::move(out)});
  }
  if (!failure.empty()) {
    for (const Staged& s : staged) {
      exec_on_object(s.object, [&](Replica& replica) {
        replica.cancel_staged_run(s.leg.label);
      });
    }
    return host_.aborted_handle("deal staging failed: " + failure);
  }

  // Build and sign the enlist binding the deal id to the complete leg set.
  DealProposal proposal;
  proposal.deal_id = deal_id;
  proposal.initiator = host_.self_;
  for (const Staged& s : staged) {
    proposal.legs.push_back(DealLeg{s.object, s.leg.proposed});
  }
  if (spec.deadline_micros != 0) {
    proposal.deadline_micros =
        host_.clock_.now_micros() + spec.deadline_micros;
  }
  DealEnlistMsg enlist;
  enlist.proposal = proposal;
  enlist.signature = host_.key_.sign(proposal.signed_bytes());

  RunHandle result = std::make_shared<RunResult>();
  bool all_prepared = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Deal deal;
    deal.id = deal_id;
    deal.enlist = enlist;
    deal.result = result;
    for (const Staged& s : staged) {
      Leg leg;
      leg.object = s.object;
      leg.label = s.leg.label;
      leg.proposed = s.leg.proposed;
      leg.handle = s.leg.handle;
      leg.recipient_count = s.leg.recipient_count;
      if (leg.recipient_count == 0) {
        // Single-member group: nothing to collect, prepared by construction.
        leg.prepared = true;
        leg.accepted = true;
      } else {
        all_prepared = false;
      }
      leg_index_[leg.label] = deal_id;
      deal.legs.push_back(std::move(leg));
    }
    ++stats_.started;
    deals_.emplace(deal_id, std::move(deal));
  }

  // Phase 2: make the deal durable, then open every leg.
  try {
    hit_crash_point("deal-open.pre-journal");
    journal_deal(walrec::kDealOpen, enlist.encode());
    hit_crash_point("deal-open.journaled");
  } catch (const SimulatedCrash& crash) {
    B2B_DEBUG(host_.self_, ": simulated crash at ", crash.point);
    host_.crashed_.store(true, std::memory_order_release);
    return result;
  }
  host_.record_evidence(evidence_kind::kDealOpen, enlist.encode());
  B2B_DEBUG(host_.self_, ": deal ", deal_id, " open with ",
            proposal.legs.size(), " legs");
  for (const Staged& s : staged) {
    if (!exec_on_object(s.object, [&](Replica& replica) {
          replica.launch_staged_run(s.leg.label, enlist);
        })) {
      return result;
    }
  }

  if (all_prepared) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = deals_.find(deal_id);
    if (it != deals_.end() && it->second.phase == Phase::kPreparing) {
      it->second.phase = Phase::kDeciding;
      it->second.verdict = DealDecision::Verdict::kCommit;
      schedule(0, [this, deal_id] { decide_deal(deal_id); });
    }
  }
  if (spec.deadline_micros != 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = deals_.find(deal_id);
    if (it != deals_.end()) {
      arm_deal_deadline(it->second, spec.deadline_micros);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Leg hooks (called under the leg's shard lock; mutex_ is a leaf here)
// ---------------------------------------------------------------------------

void DealCoordinator::on_leg_prepared(const ObjectId& object,
                                      const std::string& label,
                                      bool all_accept,
                                      const std::vector<PartyId>& vetoers) {
  std::string to_decide;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto idx = leg_index_.find(label);
    if (idx == leg_index_.end()) return;
    auto it = deals_.find(idx->second);
    if (it == deals_.end()) return;
    Deal& deal = it->second;
    if (deal.phase != Phase::kPreparing) return;
    bool everything_prepared = true;
    for (Leg& leg : deal.legs) {
      if (leg.label == label) {
        leg.prepared = true;
        leg.accepted = all_accept;
        leg.vetoers = vetoers;
      }
      if (!leg.prepared) everything_prepared = false;
    }
    if (!all_accept) {
      deal.phase = Phase::kDeciding;
      deal.verdict = DealDecision::Verdict::kAbort;
      deal.diagnostic = "leg vetoed on " + object.str();
      to_decide = deal.id;
    } else if (everything_prepared) {
      deal.phase = Phase::kDeciding;
      deal.verdict = DealDecision::Verdict::kCommit;
      to_decide = deal.id;
    }
  }
  if (!to_decide.empty()) {
    schedule(0, [this, to_decide] { decide_deal(to_decide); });
  }
}

void DealCoordinator::on_leg_deadline(const ObjectId& object,
                                      const std::string& label) {
  std::string to_decide;
  Bytes resend;
  PartyId ttp;
  ObjectId first_object;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto idx = leg_index_.find(label);
    if (idx == leg_index_.end()) return;
    auto it = deals_.find(idx->second);
    if (it == deals_.end()) return;
    Deal& deal = it->second;
    if (deal.phase == Phase::kPreparing) {
      // A leg stalled past its deadline: the initiator's escape is the
      // unilateral signed abort — no TTP needed, and the parked
      // participants are released by the decision (or their own §7
      // referral, which can only certify abort for an undecided run).
      deal.phase = Phase::kDeciding;
      deal.verdict = DealDecision::Verdict::kAbort;
      deal.diagnostic = "leg deadline expired on " + object.str();
      to_decide = deal.id;
    } else if (deal.phase == Phase::kAwaitingTtp && escape_ &&
               !deal.ttp_request.empty()) {
      // Registration in flight: nudge the TTP again (the verdict cache
      // makes duplicates harmless).
      resend = deal.ttp_request;
      ttp = escape_->ttp;
      first_object = deal.legs.front().object;
    }
  }
  if (!to_decide.empty()) {
    schedule(0, [this, to_decide] { decide_deal(to_decide); });
  } else if (!resend.empty()) {
    host_.send(ttp, Envelope{MsgType::kDealTerminationRequest, first_object,
                             std::move(resend)});
  }
}

void DealCoordinator::arm_deal_deadline(Deal& deal,
                                        std::uint64_t deadline_micros) {
  if (deal.deadline_armed) return;
  deal.deadline_armed = true;
  const std::string deal_id = deal.id;
  const ObjectId object = deal.legs.front().object;
  const std::string label = deal.legs.front().label;
  schedule(deadline_micros,
           [this, object, label] { on_leg_deadline(object, label); });
}

// ---------------------------------------------------------------------------
// Decision
// ---------------------------------------------------------------------------

void DealCoordinator::decide_deal(const std::string& deal_id) {
  DealDecisionMsg msg;
  bool to_ttp = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = deals_.find(deal_id);
    if (it == deals_.end() || it->second.phase != Phase::kDeciding) return;
    Deal& deal = it->second;
    DealDecision decision;
    decision.deal_id = deal_id;
    decision.initiator = host_.self_;
    decision.verdict = deal.verdict;
    decision.legs = deal.enlist.proposal.legs;
    decision.diagnostic = deal.diagnostic;
    msg.decision = std::move(decision);
    msg.signature = host_.key_.sign(msg.decision.signed_bytes());
    // The decision is durable before any leg acts on it: recovery must
    // never see a half-replicated deal without knowing the verdict.
    hit_crash_point("deal-decide.pre-journal");
    journal_deal(walrec::kDealDecided, msg.encode());
    hit_crash_point("deal-decide.journaled");
    deal.decision = msg;
    if (deal.verdict == DealDecision::Verdict::kCommit &&
        escape_.has_value()) {
      deal.phase = Phase::kAwaitingTtp;
      to_ttp = true;
    } else {
      deal.phase = Phase::kReplicating;
    }
  }
  host_.record_evidence(evidence_kind::kDealDecision, msg.encode());
  B2B_DEBUG(host_.self_, ": deal ", deal_id, " decided ",
            msg.decision.verdict == DealDecision::Verdict::kCommit
                ? "COMMIT"
                : "ABORT");
  if (to_ttp) {
    register_with_ttp(deal_id);
  } else {
    replicate_decision(deal_id);
  }
}

void DealCoordinator::register_with_ttp(const std::string& deal_id) {
  struct LegSnap {
    ObjectId object;
    std::string label;
  };
  std::vector<LegSnap> legs;
  PartyId ttp;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = deals_.find(deal_id);
    if (it == deals_.end() || !escape_.has_value()) return;
    for (const Leg& leg : it->second.legs) {
      legs.push_back({leg.object, leg.label});
    }
    ttp = escape_->ttp;
  }
  // Bundle every leg's transcript (shard locks; mutex_ not held).
  DealTerminationRequest request;
  request.deal_id = deal_id;
  request.requester = host_.self_;
  for (const LegSnap& leg : legs) {
    if (!exec_on_object(leg.object, [&](Replica& replica) {
          auto transcript = replica.staged_termination_request(leg.label);
          if (transcript.has_value()) {
            request.legs.push_back(std::move(*transcript));
          }
        })) {
      return;
    }
  }
  Bytes body =
      request.encode_with_signature(host_.key_.sign(request.signed_bytes()));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = deals_.find(deal_id);
    if (it == deals_.end()) return;
    it->second.ttp_request = body;
    ++stats_.ttp_registrations;
    wire::Encoder enc;
    enc.str(deal_id);
    journal_deal(walrec::kDealTtpSubmitted, std::move(enc).take());
  }
  host_.record_evidence(evidence_kind::kDealTtpRequest, body);
  host_.send(ttp, Envelope{MsgType::kDealTerminationRequest,
                           legs.front().object, std::move(body)});
}

bool DealCoordinator::on_ttp_verdict(const PartyId& from,
                                     const Envelope& envelope) {
  if (envelope.type != MsgType::kDealTerminationVerdict) return false;
  Bytes signature;
  DealTerminationVerdict verdict;
  try {
    verdict = DealTerminationVerdict::decode_fields(envelope.body, &signature);
  } catch (const CodecError& e) {
    host_.record_evidence(
        evidence_kind::kViolation,
        bytes_of("undecodable deal verdict from " + from.str()));
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!escape_.has_value() || from != escape_->ttp ||
        !escape_->ttp_key.verify(verdict.signed_bytes(), signature)) {
      host_.record_evidence(
          evidence_kind::kViolation,
          bytes_of("unverifiable deal verdict from " + from.str()));
      return true;
    }
    auto it = deals_.find(verdict.deal_id);
    if (it == deals_.end() || it->second.phase != Phase::kAwaitingTtp) {
      return true;  // duplicate or late verdict: already acted on
    }
    Deal& deal = it->second;
    journal_deal(walrec::kDealVerdictDelivered, envelope.body);
    ++stats_.ttp_verdicts;
    if (verdict.verdict != 1) {
      // Certified abort overrides the journaled commit decision; the
      // replacement is journaled so recovery replays the final word.
      DealDecision decision;
      decision.deal_id = deal.id;
      decision.initiator = host_.self_;
      decision.verdict = DealDecision::Verdict::kAbort;
      decision.legs = deal.enlist.proposal.legs;
      decision.diagnostic = "ttp certified abort";
      DealDecisionMsg msg;
      msg.decision = std::move(decision);
      msg.signature = host_.key_.sign(msg.decision.signed_bytes());
      journal_deal(walrec::kDealDecided, msg.encode());
      deal.decision = std::move(msg);
      deal.verdict = DealDecision::Verdict::kAbort;
      deal.diagnostic = "ttp certified abort";
    }
    deal.phase = Phase::kReplicating;
  }
  host_.record_evidence(evidence_kind::kDealTtpVerdict, envelope.body);
  replicate_decision(verdict.deal_id);
  return true;
}

// ---------------------------------------------------------------------------
// Replication & close
// ---------------------------------------------------------------------------

void DealCoordinator::replicate_decision(const std::string& deal_id) {
  struct LegSnap {
    ObjectId object;
    std::string label;
  };
  std::vector<LegSnap> legs;
  DealDecisionMsg msg;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = deals_.find(deal_id);
    if (it == deals_.end() || it->second.phase != Phase::kReplicating ||
        !it->second.decision.has_value()) {
      return;
    }
    msg = *it->second.decision;
    for (const Leg& leg : it->second.legs) {
      legs.push_back({leg.object, leg.label});
    }
  }
  const bool commit = msg.decision.verdict == DealDecision::Verdict::kCommit;
  bool first = true;
  for (const LegSnap& leg : legs) {
    if (!first) hit_crash_point("deal-decide.mid-replicate");
    first = false;
    if (!exec_on_object(leg.object, [&](Replica& replica) {
          if (commit) {
            replica.commit_staged_run(leg.label, msg);
          } else {
            replica.abort_staged_run(leg.label, msg);
          }
        })) {
      return;
    }
  }
  close_deal(deal_id);
}

void DealCoordinator::close_deal(const std::string& deal_id) {
  RunHandle handle;
  RunResult::Outcome outcome = RunResult::Outcome::kAborted;
  std::string diagnostic;
  std::vector<PartyId> vetoers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = deals_.find(deal_id);
    if (it == deals_.end() || it->second.phase == Phase::kClosed) return;
    Deal& deal = it->second;
    deal.phase = Phase::kClosed;
    wire::Encoder enc;
    enc.str(deal_id);
    journal_deal(walrec::kDealClosed, std::move(enc).take());
    const bool commit =
        deal.decision.has_value() &&
        deal.decision->decision.verdict == DealDecision::Verdict::kCommit;
    if (commit) {
      outcome = RunResult::Outcome::kAgreed;
      diagnostic = "deal committed";
      ++stats_.committed;
    } else {
      for (const Leg& leg : deal.legs) {
        vetoers.insert(vetoers.end(), leg.vetoers.begin(),
                       leg.vetoers.end());
      }
      outcome = vetoers.empty() ? RunResult::Outcome::kAborted
                                : RunResult::Outcome::kVetoed;
      diagnostic = deal.diagnostic.empty() ? "deal aborted" : deal.diagnostic;
      ++stats_.aborted;
    }
    handle = deal.result;
    for (const Leg& leg : deal.legs) {
      leg_index_.erase(leg.label);
    }
  }
  host_.record_evidence(evidence_kind::kDealClosed, bytes_of(deal_id));
  B2B_DEBUG(host_.self_, ": deal ", deal_id, " closed: ", diagnostic);
  complete_handle(handle, outcome, std::move(diagnostic), std::move(vetoers),
                  deal_id);
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

std::vector<RunHandle> DealCoordinator::resume(RecoveredDealState recovered) {
  std::vector<RunHandle> handles;
  for (auto& [deal_id, enlist_bytes] : recovered.open) {
    DealEnlistMsg enlist;
    try {
      enlist = DealEnlistMsg::decode(enlist_bytes);
    } catch (const CodecError& e) {
      host_.record_evidence(
          evidence_kind::kViolation,
          bytes_of("undecodable journaled deal enlist: " + deal_id));
      continue;
    }

    Deal deal;
    deal.id = deal_id;
    deal.enlist = enlist;
    deal.result = std::make_shared<RunResult>();
    for (const DealLeg& l : enlist.proposal.legs) {
      Leg leg;
      leg.object = l.object;
      leg.label = l.proposed.label();
      leg.proposed = l.proposed;
      deal.legs.push_back(std::move(leg));
    }
    handles.push_back(deal.result);

    auto decision_it = recovered.decisions.find(deal_id);
    auto verdict_it = recovered.ttp_verdicts.find(deal_id);
    const bool ttp_pending = recovered.ttp_submitted.contains(deal_id) &&
                             verdict_it == recovered.ttp_verdicts.end();

    if (decision_it != recovered.decisions.end()) {
      // Verdict chosen before the crash. The journaled decision map holds
      // the last word (the TTP-abort path journals an overriding abort
      // after kDealVerdictDelivered).
      DealDecisionMsg msg;
      try {
        msg = DealDecisionMsg::decode(decision_it->second);
      } catch (const CodecError& e) {
        host_.record_evidence(
            evidence_kind::kViolation,
            bytes_of("undecodable journaled deal decision: " + deal_id));
        continue;
      }
      bool replayed_verdict_abort = false;
      if (verdict_it != recovered.ttp_verdicts.end()) {
        Bytes signature;
        try {
          DealTerminationVerdict verdict = DealTerminationVerdict::decode_fields(
              verdict_it->second, &signature);
          replayed_verdict_abort = verdict.verdict != 1;
        } catch (const CodecError&) {
        }
      }
      if (replayed_verdict_abort &&
          msg.decision.verdict == DealDecision::Verdict::kCommit) {
        // Crash landed between journaling the verdict and journaling the
        // overriding abort decision: re-derive and journal it now.
        DealDecision decision;
        decision.deal_id = deal_id;
        decision.initiator = host_.self_;
        decision.verdict = DealDecision::Verdict::kAbort;
        decision.legs = enlist.proposal.legs;
        decision.diagnostic = "ttp certified abort";
        msg.decision = std::move(decision);
        msg.signature = host_.key_.sign(msg.decision.signed_bytes());
        journal_deal(walrec::kDealDecided, msg.encode());
      }
      deal.verdict = msg.decision.verdict;
      deal.diagnostic = msg.decision.diagnostic;
      deal.decision = std::move(msg);
      if (ttp_pending && deal.verdict == DealDecision::Verdict::kCommit &&
          escape_.has_value()) {
        // Registered but unanswered: re-submit (the TTP's verdict cache
        // makes this idempotent) and wait.
        deal.phase = Phase::kAwaitingTtp;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.started;
          for (const Leg& leg : deal.legs) leg_index_[leg.label] = deal_id;
          deals_.insert_or_assign(deal_id, std::move(deal));
        }
        schedule(0, [this, id = deal_id] { register_with_ttp(id); });
      } else if (deal.verdict == DealDecision::Verdict::kCommit &&
                 escape_.has_value() &&
                 verdict_it == recovered.ttp_verdicts.end()) {
        // Decided commit, never registered: registration comes first.
        deal.phase = Phase::kAwaitingTtp;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.started;
          for (const Leg& leg : deal.legs) leg_index_[leg.label] = deal_id;
          deals_.insert_or_assign(deal_id, std::move(deal));
        }
        schedule(0, [this, id = deal_id] { register_with_ttp(id); });
      } else {
        // Decision is final (abort, certified commit, or no escape
        // configured): re-drive it into every leg. Legs already closed
        // before the crash make commit/abort_staged_run a no-op.
        deal.phase = Phase::kReplicating;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.started;
          for (const Leg& leg : deal.legs) leg_index_[leg.label] = deal_id;
          deals_.insert_or_assign(deal_id, std::move(deal));
        }
        schedule(0, [this, id = deal_id] { replicate_decision(id); });
      }
      continue;
    }

    // No decision yet: back to preparing. Re-send propose+enlist to
    // recipients whose responses are missing, re-derive preparedness from
    // the restored runs, and decide if everything is already in.
    deal.phase = Phase::kPreparing;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.started;
      for (const Leg& leg : deal.legs) leg_index_[leg.label] = deal_id;
      deals_.insert_or_assign(deal_id, std::move(deal));
    }
    bool lost_leg = false;
    for (const DealLeg& l : enlist.proposal.legs) {
      const std::string label = l.proposed.label();
      Replica::StagedRunStatus status;
      if (!exec_on_object(l.object, [&](Replica& replica) {
            if (!replica.resume_staged_run(label, enlist)) return;
            status = replica.staged_run_status(label);
          })) {
        return handles;
      }
      if (!status.open) {
        lost_leg = true;
        continue;
      }
      if (status.complete) {
        on_leg_prepared(l.object, label, status.all_accept, status.vetoers);
      }
    }
    std::string to_decide;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = deals_.find(deal_id);
      if (it != deals_.end() && it->second.phase == Phase::kPreparing) {
        if (lost_leg) {
          // A leg vanished without a journaled decision (it can only have
          // been closed by a decision or a cancel, neither of which is on
          // record): the safe outcome is abort.
          it->second.phase = Phase::kDeciding;
          it->second.verdict = DealDecision::Verdict::kAbort;
          it->second.diagnostic = "leg lost across recovery";
          to_decide = deal_id;
        } else if (enlist.proposal.deadline_micros != 0) {
          const std::uint64_t now = host_.clock_.now_micros();
          if (now >= enlist.proposal.deadline_micros) {
            it->second.phase = Phase::kDeciding;
            it->second.verdict = DealDecision::Verdict::kAbort;
            it->second.diagnostic = "deal deadline expired";
            to_decide = deal_id;
          } else if (!it->second.deadline_armed) {
            arm_deal_deadline(it->second,
                              enlist.proposal.deadline_micros - now);
          }
        }
      }
    }
    if (!to_decide.empty()) {
      schedule(0, [this, to_decide] { decide_deal(to_decide); });
    }
  }

  // Keep locally derived ids ahead of everything replayed.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [deal_id, deal] : deals_) {
      const std::uint64_t n = local_deal_counter(deal_id, host_.self_.str());
      if (n >= next_local_seq_) next_local_seq_ = n + 1;
    }
  }

  // Orphan staged runs: staged (kDealStaged + kProposerRun journaled) but
  // the deal never opened — nothing was ever sent, cancel quietly.
  std::vector<Coordinator::ObjectShard*> shards;
  {
    std::shared_lock<std::shared_mutex> lock(host_.shard_map_mutex_);
    shards.reserve(host_.shards_.size());
    for (const auto& [object, shard] : host_.shards_) {
      shards.push_back(shard.get());
    }
  }
  for (Coordinator::ObjectShard* shard : shards) {
    std::lock_guard<std::recursive_mutex> lock(*shard->mutex);
    auto staged = shard->replica->staged_run();
    if (!staged.has_value()) continue;
    bool known;
    {
      std::lock_guard<std::mutex> deal_lock(mutex_);
      known = deals_.contains(staged->second);
    }
    if (known) continue;
    try {
      shard->replica->cancel_staged_run(staged->first);
    } catch (const SimulatedCrash& crash) {
      host_.crashed_.store(true, std::memory_order_release);
      return handles;
    }
  }
  return handles;
}

}  // namespace b2b::core
