// The B2BObject interface (Figure 4 of the paper).
//
// Implemented by the application programmer, either by writing the
// application object against this interface directly or by wrapping an
// existing object (the paper's setAttribute/getAttribute wrapper example —
// see Controller for the enter/examine/overwrite/update/leave side).
//
// State flows through get_state()/apply_state() as opaque bytes; the
// middleware never interprets it. validate_* upcalls implement the
// organisation's *local* policy: they are evaluated locally and their
// verdict is what the coordination protocol turns into a multi-party,
// non-repudiable agreement.
#pragma once

#include <cstdint>
#include <string>

#include "b2b/tuples.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace b2b::core {

/// Context handed to every validation upcall.
struct ValidationContext {
  PartyId local_party;   // who is validating
  PartyId proposer;      // who proposed the change / sponsors the request
  ObjectId object;
  std::uint64_t sequence = 0;  // proposal sequence number
};

/// Events reported through coord_callback (protocol progress, completion
/// in async mode, §5's coordCallback).
struct CoordEvent {
  enum class Kind {
    kStateAgreed,       // a proposed state was unanimously agreed
    kStateVetoed,       // a proposed state was rejected
    kStateInstalled,    // a remotely proposed state was installed locally
    kMemberConnected,   // group grew
    kMemberDisconnected,  // group shrank (eviction or voluntary)
    kViolationDetected,   // misbehaviour evidence was recorded
  };
  Kind kind{};
  ObjectId object;
  PartyId party;  // the proposer / subject / suspected misbehaver
  std::uint64_t sequence = 0;
  std::string detail;
};

class B2BObject {
 public:
  virtual ~B2BObject() = default;

  // --- state transfer -----------------------------------------------------

  /// Serialize the complete current state.
  virtual Bytes get_state() const = 0;

  /// Install a complete state (also used for rollback and recovery).
  virtual void apply_state(BytesView state) = 0;

  /// Serialize a delta from the last agreed state (update variant,
  /// §4.3.1). Default: not supported.
  virtual Bytes get_update() const;

  /// Apply a delta produced by get_update(). Default: not supported.
  virtual void apply_update(BytesView update);

  // --- local policy (validation upcalls) ----------------------------------

  /// Validate a proposed complete state. This is the heart of "locally
  /// determined, evaluated and enforced policy" (§2); it may be
  /// arbitrarily complex.
  virtual Decision validate_state(BytesView proposed_state,
                                  const ValidationContext& ctx) = 0;

  /// Validate a proposed update. Default: apply-and-check — the replica
  /// applies the update to a scratch copy and calls validate_state, so
  /// overriding this is an optimisation, not a requirement.
  virtual Decision validate_update(BytesView update,
                                   BytesView resulting_state,
                                   const ValidationContext& ctx);

  /// Validate a connection request from `subject` (§5's validateConnect).
  virtual Decision validate_connect(const PartyId& subject,
                                    const ValidationContext& ctx);

  /// Validate a disconnection: eviction can be vetoed, voluntary
  /// disconnection cannot (the verdict is recorded but ignored for
  /// voluntary departures).
  virtual Decision validate_disconnect(const PartyId& subject, bool eviction,
                                       const ValidationContext& ctx);

  // --- notifications -------------------------------------------------------

  /// Protocol progress / async completion callback (§5 coordCallback).
  virtual void coord_callback(const CoordEvent& event);
};

}  // namespace b2b::core
