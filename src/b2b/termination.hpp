// TTP-certified termination (§7).
//
// The base protocol deliberately does not guarantee termination when
// parties misbehave; §7 sketches the remedy this module implements: "the
// imposition of deadlines requires the involvement of a TTP to guarantee
// that all honest parties terminate with the same view of agreed state.
// In effect, a TTP would provide certified abort of a protocol run unless
// a complete set of responses were available (in which case the TTP would
// provide a certified decision derived from those responses)."
//
// Operation: each replica may be configured with a termination TTP and a
// deadline. If a coordination run is still active when its deadline
// expires, the party asks the TTP to terminate it — the proposer attaches
// its (signed) transcript so far, responders attach nothing. The TTP
// issues exactly one signed verdict per run, cached forever: a *certified
// decision* when a complete, verifiable response set was presented, and a
// *certified abort* otherwise. Because every honest party receives the
// same cached verdict, they all terminate with the same view.
//
// A TTP-certified decision replaces the random-authenticator check of a
// normal decide message: the TTP's signature is what authenticates it.
// Recipients still verify every aggregated response and the recipient
// coverage against their own membership view, so a lying requester cannot
// smuggle a partial response set past honest parties.
#pragma once

#include <map>
#include <mutex>
#include <optional>

#include "b2b/evidence.hpp"
#include "b2b/messages.hpp"
#include "net/runtime.hpp"

namespace b2b::core {

struct DealTerminationRequest;  // deal_messages.hpp (includes this header)

/// Party -> TTP: terminate run `proposed` on `object`. A proposer
/// supplies its transcript (propose + responses collected so far) and its
/// recipient list; responders send the identification only.
struct TerminationRequest {
  PartyId requester;
  ObjectId object;
  StateTuple proposed;
  std::optional<ProposeMsg> propose;
  std::vector<RespondMsg> responses;
  std::vector<PartyId> claimed_recipients;

  Bytes signed_bytes() const;
  Bytes encode() const;
  static TerminationRequest decode_fields(BytesView data, Bytes* signature);
  Bytes encode_with_signature(const Bytes& signature) const;
};

/// TTP -> party: the certified verdict for one run.
struct TerminationVerdict {
  enum class Kind : std::uint8_t { kAbort = 1, kDecision = 2 };

  Kind kind = Kind::kAbort;
  ObjectId object;
  StateTuple proposed;
  bool agreed = false;                 // kDecision only
  std::vector<RespondMsg> responses;   // kDecision only
  std::uint64_t time_micros = 0;

  Bytes signed_bytes() const;
  Bytes encode_with_signature(const Bytes& signature) const;
  static TerminationVerdict decode_fields(BytesView data, Bytes* signature);
};

/// The on-line trusted third party. Attach it to a Transport reachable by
/// the organisations; it answers kTerminationRequest envelopes with
/// kTerminationVerdict envelopes and never issues two different verdicts
/// for the same run. The TTP's identity is the transport's bound PartyId.
///
/// Thread-safe: on the threaded runtime the transport delivers requests
/// from a receiver thread while accessors run on the caller's thread; an
/// internal mutex serialises message handling, key registration and the
/// verdict cache.
class TerminationTtp {
 public:
  /// `party_keys` must contain every organisation's public key.
  TerminationTtp(net::Transport& transport, net::Clock& clock,
                 crypto::RsaPrivateKey key,
                 std::map<PartyId, crypto::RsaPublicKey> party_keys);

  const PartyId& id() const { return id_; }
  const crypto::RsaPublicKey& public_key() const {
    return key_.public_key();
  }

  /// Add a later-joining organisation's key.
  void add_party_key(const PartyId& party, crypto::RsaPublicKey key);

  std::uint64_t aborts_issued() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return aborts_issued_;
  }
  std::uint64_t decisions_issued() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return decisions_issued_;
  }
  std::uint64_t deal_commits_issued() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return deal_commits_issued_;
  }
  std::uint64_t deal_aborts_issued() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return deal_aborts_issued_;
  }

 private:
  void on_message(const PartyId& from, const Bytes& payload);
  /// Build (or fetch the cached) verdict for a run. Caller holds mutex_.
  const Bytes& verdict_for(const TerminationRequest& request);
  /// Deal-level atomic registration (DESIGN.md §12): certify commit/abort
  /// for the whole leg bundle and write the per-run verdict cache for
  /// every leg in the same critical section, so a concurrent per-run
  /// escape by a parked participant always sees an answer consistent with
  /// the deal outcome. Caller holds mutex_.
  const Bytes& deal_verdict_for(const DealTerminationRequest& request);
  bool transcript_complete_and_valid(const TerminationRequest& request,
                                     bool* agreed) const;

  net::Transport& transport_;
  net::Clock& clock_;
  PartyId id_;
  crypto::RsaPrivateKey key_;
  mutable std::mutex mutex_;
  std::map<PartyId, crypto::RsaPublicKey> party_keys_;
  /// run label -> encoded verdict envelope body (the consistency cache).
  std::map<std::string, Bytes> verdicts_;
  /// run label -> what kind of verdict is cached (so deal registration can
  /// check commit-compatibility without re-decoding the body).
  struct RunVerdictInfo {
    TerminationVerdict::Kind kind;
    bool agreed;
  };
  std::map<std::string, RunVerdictInfo> verdict_info_;
  /// deal id -> encoded DealTerminationVerdict body (same caching rule:
  /// exactly one verdict per deal, forever).
  std::map<std::string, Bytes> deal_verdicts_;
  std::uint64_t aborts_issued_ = 0;
  std::uint64_t decisions_issued_ = 0;
  std::uint64_t deal_commits_issued_ = 0;
  std::uint64_t deal_aborts_issued_ = 0;
};

}  // namespace b2b::core
