#include "b2b/replica.hpp"

#include <algorithm>

#include "b2b/recovery.hpp"
#include "b2b/termination.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace b2b::core {

Replica::Replica(PartyId self, ObjectId object, B2BObject& impl,
                 const crypto::RsaPrivateKey& key, net::Rng& rng,
                 Callbacks callbacks, store::CheckpointStore& checkpoints,
                 store::MessageStore& messages)
    : self_(std::move(self)),
      object_(std::move(object)),
      impl_(impl),
      key_(key),
      rng_(rng),
      callbacks_(std::move(callbacks)),
      checkpoints_(checkpoints),
      messages_(messages) {}

// ---------------------------------------------------------------------------
// Bootstrap
// ---------------------------------------------------------------------------

void Replica::bootstrap(std::vector<PartyId> members,
                        const Bytes& initial_state) {
  if (std::find(members.begin(), members.end(), self_) == members.end()) {
    throw Error("bootstrap: member list must include self");
  }
  members_ = std::move(members);
  // Genesis tuples are computed deterministically from the object identity
  // so that every bootstrapped party derives the identical view.
  Bytes genesis_seed = concat({bytes_of("b2b.genesis."), bytes_of(object_.str())});
  group_tuple_ = GroupTuple{0, crypto::Sha256::hash(genesis_seed),
                            hash_members(members_)};
  agreed_tuple_ = StateTuple{0, crypto::Sha256::hash(genesis_seed),
                             crypto::Sha256::hash(initial_state)};
  agreed_state_ = initial_state;
  impl_.apply_state(initial_state);
  last_seen_seq_ = 0;
  connected_ = true;
  checkpoints_.put(object_, store::Checkpoint{0, agreed_tuple_.encode(),
                                              agreed_state_,
                                              callbacks_.now()});
  journal_snapshot();
}

// ---------------------------------------------------------------------------
// Journaling helpers (no-ops when the hosting coordinator has no journal)
// ---------------------------------------------------------------------------

void Replica::journal_record(std::uint8_t type, const Bytes& payload) {
  if (callbacks_.journal_record) callbacks_.journal_record(type, payload);
}

void Replica::journal_barrier() {
  if (callbacks_.journal_barrier) callbacks_.journal_barrier();
}

void Replica::hit_crash_point(const char* point) {
  if (callbacks_.crash_point) callbacks_.crash_point(point);
}

void Replica::journal_snapshot() {
  if (!journaling()) return;
  wire::Encoder enc;
  enc.blob(export_snapshot().encode());
  journal_record(walrec::kSnapshot, std::move(enc).take());
  journal_barrier();
}

void Replica::journal_run_closed(std::uint8_t type, const std::string& label) {
  if (!journaling()) return;
  wire::Encoder enc;
  enc.str(label);
  journal_record(type, std::move(enc).take());
  journal_barrier();
}

bool Replica::maybe_resend_decide(const std::string& label,
                                  const PartyId& to) {
  if (!journaling()) return false;
  for (const auto& stored : messages_.run(label)) {
    if (stored.direction == "sent" && stored.kind == "decide") {
      record_anomaly("re-sent decide of closed run " + label, to);
      send_envelope(to, MsgType::kDecide, stored.payload);
      return true;
    }
  }
  return false;
}

void Replica::arm_run_probe(const std::string& label, bool as_proposer,
                            int attempt) {
  if (!journaling() || !callbacks_.schedule ||
      run_probe_interval_micros_ == 0 || attempt > max_run_probes_) {
    return;
  }
  callbacks_.schedule(
      run_probe_interval_micros_, [this, label, as_proposer, attempt] {
        if (as_proposer) {
          if (!proposer_run_.has_value() ||
              proposer_run_->propose.proposal.proposed.label() != label) {
            return;  // run concluded; probe dies
          }
          // Re-drive recipients whose responses are still missing: either
          // our propose or their response was acked-then-lost in a crash
          // window, and retransmission alone cannot recover an acked frame.
          const bool batch = proposer_run_->batch.has_value();
          Bytes encoded = batch ? proposer_run_->batch->propose.encode()
                                : proposer_run_->propose.encode();
          for (const PartyId& recipient : proposer_run_->recipients) {
            if (!proposer_run_->responses.contains(recipient)) {
              send_envelope(recipient,
                            batch ? MsgType::kBatchPropose : MsgType::kPropose,
                            encoded);
            }
          }
        } else {
          auto it = responder_runs_.find(label);
          if (it == responder_runs_.end()) return;
          send_envelope(it->second.propose.proposal.proposer,
                        MsgType::kRespond, it->second.my_response.encode());
        }
        arm_run_probe(label, as_proposer, attempt + 1);
      });
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

std::uint64_t Replica::next_sequence() { return last_seen_seq_ + 1; }

bool Replica::group_accepts(std::size_t accepts,
                            std::size_t recipients) const {
  if (decision_rule_ == DecisionRule::kUnanimous) {
    return accepts == recipients;
  }
  // Majority of the FULL group: recipients + the proposer, whose own
  // accept is implicit (invariant 2: its current state is the proposal).
  std::size_t group = recipients + 1;
  return (accepts + 1) * 2 > group;
}

void Replica::note_sequence(std::uint64_t sequence) {
  last_seen_seq_ = std::max(last_seen_seq_, sequence);
}

Bytes Replica::fresh_random() { return rng_.bytes(32); }

void Replica::record_violation(const std::string& what,
                               const PartyId& suspect) {
  B2B_DEBUG(self_, " VIOLATION on ", object_, ": ", what, " (", suspect, ")");
  ++violations_detected_;
  wire::Encoder enc;
  enc.str(what).str(suspect.str());
  callbacks_.record_evidence(evidence_kind::kViolation,
                             std::move(enc).take());
  CoordEvent event;
  event.kind = CoordEvent::Kind::kViolationDetected;
  event.object = object_;
  event.party = suspect;
  event.detail = what;
  impl_.coord_callback(event);
  if (callbacks_.notify) callbacks_.notify(event);
  B2B_INFO(self_, " detected violation: ", what, " (suspect ", suspect, ")");
}

void Replica::record_anomaly(const std::string& what, const PartyId& party) {
  wire::Encoder enc;
  enc.str(what).str(party.str());
  callbacks_.record_evidence("anomaly", std::move(enc).take());
  B2B_DEBUG(self_, " noted anomaly: ", what, " (", party, ")");
}

void Replica::send_envelope(const PartyId& to, MsgType type, Bytes body) {
  Envelope env;
  env.type = type;
  env.object = object_;
  env.body = std::move(body);
  callbacks_.send(to, env);
}

bool Replica::is_member(const PartyId& party) const {
  return std::find(members_.begin(), members_.end(), party) != members_.end();
}

void Replica::install_agreed_state(const StateTuple& tuple, Bytes state,
                                   bool apply_to_object, bool bookkeep) {
  if (agreed_tuple_ == tuple && agreed_state_ == state) {
    // Recovery redo of an already-installed state: installation is
    // idempotent, so neither checkpoint nor evidence is duplicated.
    if (apply_to_object) impl_.apply_state(agreed_state_);
    return;
  }
  agreed_tuple_ = tuple;
  agreed_state_ = std::move(state);
  if (apply_to_object) impl_.apply_state(agreed_state_);
  if (!bookkeep) return;
  checkpoints_.put(object_,
                   store::Checkpoint{tuple.sequence, tuple.encode(),
                                     agreed_state_, callbacks_.now()});
  callbacks_.record_evidence(evidence_kind::kStateInstalled, tuple.encode());
  journal_snapshot();
}

void Replica::complete(const RunHandle& handle, RunResult::Outcome outcome,
                       std::string diagnostic, std::vector<PartyId> vetoers,
                       std::uint64_t sequence, const std::string& label) {
  handle->diagnostic = std::move(diagnostic);
  handle->vetoers = std::move(vetoers);
  handle->sequence = sequence;
  handle->run_label = label;
  // Store the outcome last: done() pollers on other threads must observe
  // the fields above once they see a non-pending outcome.
  handle->outcome = outcome;
  if (handle->on_complete) handle->on_complete(*handle);
}

PartyId Replica::connect_sponsor() const {
  if (members_.empty()) throw Error("connect_sponsor: empty group");
  return sponsor_policy_ == SponsorPolicy::kRotating ? members_.back()
                                                     : members_.front();
}

PartyId Replica::disconnect_sponsor(const PartyId& subject) const {
  if (members_.empty()) throw Error("disconnect_sponsor: empty group");
  if (members_.size() < 2 && members_.front() == subject) {
    throw Error("disconnect_sponsor: subject is the only member");
  }
  if (sponsor_policy_ == SponsorPolicy::kRotating) {
    if (members_.back() != subject) return members_.back();
    return members_[members_.size() - 2];
  }
  // Fixed policy: the initial member sponsors unless it is the subject,
  // in which case responsibility passes to the next oldest (footnote 2).
  if (members_.front() != subject) return members_.front();
  return members_[1];
}

std::vector<std::string> Replica::active_run_labels() const {
  std::vector<std::string> out;
  if (proposer_run_.has_value()) {
    out.push_back(proposer_run_->propose.proposal.proposed.label());
  }
  for (const auto& [label, run] : responder_runs_) out.push_back(label);
  if (sponsor_run_.has_value()) {
    out.push_back(sponsor_run_->propose.proposal.new_group.label());
  }
  for (const auto& [label, run] : membership_responder_runs_) {
    out.push_back(label);
  }
  return out;
}

bool Replica::busy() const {
  // NB: a pending subject request (our own connect/disconnect awaiting its
  // sponsor) deliberately does NOT make us busy: it locks no local state,
  // and counting it would deadlock two concurrent departures whose
  // removal runs each need the other subject's response.
  return proposer_run_.has_value() || sponsor_run_.has_value() ||
         accept_lock_.has_value() || !membership_responder_runs_.empty();
}

bool Replica::resolve_blocked_run(const std::string& run_label) {
  wire::Encoder note;
  note.str(run_label).str(self_.str());
  if (proposer_run_.has_value() &&
      proposer_run_->propose.proposal.proposed.label() == run_label) {
    // Abandoning our own proposal: roll the object back to agreed state.
    impl_.apply_state(agreed_state_);
    callbacks_.record_evidence(evidence_kind::kStateRolledBack,
                               std::move(note).take());
    complete(proposer_run_->result, RunResult::Outcome::kAborted,
             "abandoned by extra-protocol resolution", {},
             proposer_run_->propose.proposal.proposed.sequence, run_label);
    proposer_run_.reset();
    journal_run_closed(walrec::kProposerClosed, run_label);
    return true;
  }
  if (auto it = responder_runs_.find(run_label); it != responder_runs_.end()) {
    callbacks_.record_evidence("run.abandoned", std::move(note).take());
    if (accept_lock_ == run_label) accept_lock_.reset();
    responder_runs_.erase(it);
    journal_run_closed(walrec::kResponderClosed, run_label);
    drain_deferred_membership();
    return true;
  }
  if (auto it = membership_responder_runs_.find(run_label);
      it != membership_responder_runs_.end()) {
    callbacks_.record_evidence("run.abandoned", std::move(note).take());
    membership_responder_runs_.erase(it);
    return true;
  }
  if (sponsor_run_.has_value() &&
      sponsor_run_->propose.proposal.new_group.label() == run_label) {
    callbacks_.record_evidence("run.abandoned", std::move(note).take());
    complete(sponsor_run_->result, RunResult::Outcome::kAborted,
             "abandoned by extra-protocol resolution", {},
             sponsor_run_->propose.proposal.new_group.sequence, run_label);
    sponsor_run_.reset();
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

Bytes ReplicaSnapshot::encode() const {
  wire::Encoder enc;
  enc.boolean(connected);
  enc.varint(members.size());
  for (const PartyId& member : members) enc.str(member.str());
  group_tuple.encode_into(enc);
  agreed_tuple.encode_into(enc);
  enc.blob(agreed_state).u64(last_seen_sequence);
  enc.varint(seen_run_labels.size());
  for (const std::string& label : seen_run_labels) enc.str(label);
  return std::move(enc).take();
}

ReplicaSnapshot ReplicaSnapshot::decode(BytesView data) {
  wire::Decoder dec{data};
  ReplicaSnapshot snap;
  snap.connected = dec.boolean();
  std::uint64_t n = dec.varint();
  snap.members.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) snap.members.emplace_back(dec.str());
  snap.group_tuple = GroupTuple::decode_from(dec);
  snap.agreed_tuple = StateTuple::decode_from(dec);
  snap.agreed_state = dec.blob();
  snap.last_seen_sequence = dec.u64();
  std::uint64_t labels = dec.varint();
  snap.seen_run_labels.reserve(labels);
  for (std::uint64_t i = 0; i < labels; ++i) {
    snap.seen_run_labels.push_back(dec.str());
  }
  dec.expect_done();
  return snap;
}

ReplicaSnapshot Replica::export_snapshot() const {
  ReplicaSnapshot snap;
  snap.connected = connected_;
  snap.members = members_;
  snap.group_tuple = group_tuple_;
  snap.agreed_tuple = agreed_tuple_;
  snap.agreed_state = agreed_state_;
  snap.last_seen_sequence = last_seen_seq_;
  snap.seen_run_labels.assign(seen_run_labels_.begin(),
                              seen_run_labels_.end());
  return snap;
}

void Replica::restore_snapshot(const ReplicaSnapshot& snapshot) {
  connected_ = snapshot.connected;
  members_ = snapshot.members;
  group_tuple_ = snapshot.group_tuple;
  agreed_tuple_ = snapshot.agreed_tuple;
  agreed_state_ = snapshot.agreed_state;
  last_seen_seq_ = snapshot.last_seen_sequence;
  seen_run_labels_.clear();
  seen_run_labels_.insert(snapshot.seen_run_labels.begin(),
                          snapshot.seen_run_labels.end());
  // Volatile run state did not survive the crash.
  if (proposer_run_.has_value()) {
    complete(proposer_run_->result, RunResult::Outcome::kAborted,
             "lost in crash", {}, 0, "");
    proposer_run_.reset();
  }
  if (sponsor_run_.has_value()) {
    complete(sponsor_run_->result, RunResult::Outcome::kAborted,
             "lost in crash", {}, 0, "");
    sponsor_run_.reset();
  }
  responder_runs_.clear();
  membership_responder_runs_.clear();
  accept_lock_.reset();
  subject_request_.reset();
  relayed_eviction_result_.reset();
  pending_subject_record_.reset();
  recovered_membership_decide_.reset();
  pending_redo_membership_decides_.clear();
  recovered_termination_submissions_.clear();
  pending_redo_verdicts_.clear();

  if (connected_) impl_.apply_state(agreed_state_);
  callbacks_.record_evidence("recovery", agreed_tuple_.encode());
}

// ---------------------------------------------------------------------------
// Journal-based recovery
// ---------------------------------------------------------------------------

Bytes Replica::ProposerRunRecord::encode() const {
  wire::Encoder enc;
  enc.blob(propose.encode()).blob(authenticator).blob(new_state);
  enc.varint(recipients.size());
  for (const PartyId& recipient : recipients) enc.str(recipient.str());
  return std::move(enc).take();
}

Replica::ProposerRunRecord Replica::ProposerRunRecord::decode(BytesView data) {
  wire::Decoder dec{data};
  ProposerRunRecord record;
  record.propose = ProposeMsg::decode(dec.blob());
  record.authenticator = dec.blob();
  record.new_state = dec.blob();
  std::uint64_t n = dec.varint();
  record.recipients.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) record.recipients.emplace_back(dec.str());
  dec.expect_done();
  return record;
}

Bytes Replica::ResponderRunRecord::encode() const {
  wire::Encoder enc;
  enc.blob(propose.encode()).blob(pending_state).blob(my_response.encode());
  enc.varint(members_at_response.size());
  for (const PartyId& member : members_at_response) enc.str(member.str());
  return std::move(enc).take();
}

Replica::ResponderRunRecord Replica::ResponderRunRecord::decode(
    BytesView data) {
  wire::Decoder dec{data};
  ResponderRunRecord record;
  record.propose = ProposeMsg::decode(dec.blob());
  record.pending_state = dec.blob();
  record.my_response = RespondMsg::decode(dec.blob());
  std::uint64_t n = dec.varint();
  record.members_at_response.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    record.members_at_response.emplace_back(dec.str());
  }
  dec.expect_done();
  return record;
}

Bytes Replica::SponsorRunRecord::encode() const {
  wire::Encoder enc;
  enc.blob(propose.encode()).blob(authenticator);
  enc.varint(recipients.size());
  for (const PartyId& recipient : recipients) enc.str(recipient.str());
  return std::move(enc).take();
}

Replica::SponsorRunRecord Replica::SponsorRunRecord::decode(BytesView data) {
  wire::Decoder dec{data};
  SponsorRunRecord record;
  record.propose = MembershipProposeMsg::decode(dec.blob());
  record.authenticator = dec.blob();
  std::uint64_t n = dec.varint();
  record.recipients.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    record.recipients.emplace_back(dec.str());
  }
  dec.expect_done();
  return record;
}

Bytes Replica::MembershipResponderRunRecord::encode() const {
  wire::Encoder enc;
  enc.blob(propose.encode()).blob(my_response.encode());
  enc.varint(members_at_response.size());
  for (const PartyId& member : members_at_response) enc.str(member.str());
  return std::move(enc).take();
}

Replica::MembershipResponderRunRecord
Replica::MembershipResponderRunRecord::decode(BytesView data) {
  wire::Decoder dec{data};
  MembershipResponderRunRecord record;
  record.propose = MembershipProposeMsg::decode(dec.blob());
  record.my_response = MembershipRespondMsg::decode(dec.blob());
  std::uint64_t n = dec.varint();
  record.members_at_response.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    record.members_at_response.emplace_back(dec.str());
  }
  dec.expect_done();
  return record;
}

Bytes Replica::SubjectRequestRecord::encode() const {
  wire::Encoder enc;
  enc.blob(request.encode()).blob(signature).str(sent_to.str());
  enc.u8(relayed_eviction ? 1 : 0);
  return std::move(enc).take();
}

Replica::SubjectRequestRecord Replica::SubjectRequestRecord::decode(
    BytesView data) {
  wire::Decoder dec{data};
  SubjectRequestRecord record;
  record.request = MembershipRequest::decode(dec.blob());
  record.signature = dec.blob();
  record.sent_to = PartyId{dec.str()};
  record.relayed_eviction = dec.u8() != 0;
  dec.expect_done();
  return record;
}

Bytes Replica::BatchProposerRunRecord::encode() const {
  wire::Encoder enc;
  enc.blob(propose.encode());
  enc.varint(authenticators.size());
  for (const Bytes& authenticator : authenticators) enc.blob(authenticator);
  enc.varint(states.size());
  for (const Bytes& state : states) enc.blob(state);
  enc.varint(recipients.size());
  for (const PartyId& recipient : recipients) enc.str(recipient.str());
  return std::move(enc).take();
}

Replica::BatchProposerRunRecord Replica::BatchProposerRunRecord::decode(
    BytesView data) {
  wire::Decoder dec{data};
  BatchProposerRunRecord record;
  record.propose = BatchProposeMsg::decode(dec.blob());
  std::uint64_t n = dec.varint();
  record.authenticators.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) record.authenticators.push_back(dec.blob());
  n = dec.varint();
  record.states.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) record.states.push_back(dec.blob());
  n = dec.varint();
  record.recipients.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) record.recipients.emplace_back(dec.str());
  dec.expect_done();
  return record;
}

Bytes Replica::BatchResponderRunRecord::encode() const {
  wire::Encoder enc;
  enc.blob(propose.encode());
  enc.varint(pending_states.size());
  for (const Bytes& state : pending_states) enc.blob(state);
  enc.blob(my_response.encode());
  enc.varint(members_at_response.size());
  for (const PartyId& member : members_at_response) enc.str(member.str());
  return std::move(enc).take();
}

Replica::BatchResponderRunRecord Replica::BatchResponderRunRecord::decode(
    BytesView data) {
  wire::Decoder dec{data};
  BatchResponderRunRecord record;
  record.propose = BatchProposeMsg::decode(dec.blob());
  std::uint64_t n = dec.varint();
  record.pending_states.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) record.pending_states.push_back(dec.blob());
  record.my_response = RespondMsg::decode(dec.blob());
  n = dec.varint();
  record.members_at_response.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    record.members_at_response.emplace_back(dec.str());
  }
  dec.expect_done();
  return record;
}

void Replica::restore_recovered(const RecoveredObjectState& recovered) {
  if (recovered.snapshot.has_value()) {
    const ReplicaSnapshot& snap = *recovered.snapshot;
    connected_ = snap.connected;
    members_ = snap.members;
    group_tuple_ = snap.group_tuple;
    agreed_tuple_ = snap.agreed_tuple;
    agreed_state_ = snap.agreed_state;
    last_seen_seq_ = snap.last_seen_sequence;
    seen_run_labels_.insert(snap.seen_run_labels.begin(),
                            snap.seen_run_labels.end());
    if (connected_) impl_.apply_state(agreed_state_);
  }
  // Replay protection must cover every run the journal has ever seen,
  // snapshotted or not: a replayed label is a replay even after recovery.
  seen_run_labels_.insert(recovered.seen_labels.begin(),
                          recovered.seen_labels.end());
  note_sequence(recovered.max_sequence);

  if (recovered.proposer_run.has_value()) {
    const ProposerRunRecord& record = *recovered.proposer_run;
    ProposerRun run;
    run.propose = record.propose;
    run.authenticator = record.authenticator;
    run.new_state = record.new_state;
    run.recipients = record.recipients;
    run.result = std::make_shared<RunResult>();
    for (const RespondMsg& resp : recovered.proposer_responses) {
      run.responses.emplace(resp.response.responder, resp);
    }
    // Invariant 2: while our proposal is open the local object holds the
    // proposed state, not the agreed one.
    if (connected_) impl_.apply_state(run.new_state);
    const std::string run_label = record.propose.proposal.proposed.label();
    auto staged = recovered.staged_runs.find(run_label);
    if (staged != recovered.staged_runs.end()) {
      run.deal_staged = true;
      run.deal_id = staged->second;
    }
    proposer_run_ = std::move(run);
    recovered_decide_ = recovered.proposer_decide;
  }

  if (recovered.batch_proposer_run.has_value()) {
    // At most one proposer run (batch or plain) is open at a time; the
    // journal replay guarantees mutual exclusion via kProposerClosed.
    const BatchProposerRunRecord& record = *recovered.batch_proposer_run;
    ProposerRun run;
    run.propose.proposal = record.propose.proposal;
    run.propose.signature = record.propose.signature;
    run.recipients = record.recipients;
    run.result = std::make_shared<RunResult>();
    run.batch = BatchProposerState{record.propose, record.authenticators,
                                   record.states};
    for (const RespondMsg& resp : recovered.proposer_responses) {
      run.responses.emplace(resp.response.responder, resp);
    }
    // Invariant 2: the object holds the batch's final proposed state.
    if (connected_ && !record.states.empty()) {
      impl_.apply_state(record.states.back());
    }
    proposer_run_ = std::move(run);
    recovered_batch_decide_ = recovered.batch_proposer_decide;
  }

  for (const auto& [label, record] : recovered.batch_responder_runs) {
    ResponderRun run;
    run.propose.proposal = record.propose.proposal;
    run.propose.signature = record.propose.signature;
    if (!record.pending_states.empty()) {
      run.pending_state = record.pending_states.back();
    }
    run.my_response = record.my_response;
    run.my_decision = record.my_response.response.decision;
    run.members_at_response = record.members_at_response;
    run.batch = BatchResponderState{record.propose, record.pending_states};
    if (run.my_decision.accept) accept_lock_ = label;
    responder_runs_.emplace(label, std::move(run));
  }
  pending_redo_batch_decides_ = recovered.batch_responder_decides;

  for (const auto& [label, encoded] : recovered.deal_enlists) {
    try {
      deal_enlists_.emplace(label, DealEnlistMsg::decode(encoded));
    } catch (const CodecError&) {
      record_anomaly("undecodable journaled deal enlist for run " + label,
                     self_);
    }
  }

  for (const auto& [label, record] : recovered.responder_runs) {
    ResponderRun run;
    run.propose = record.propose;
    run.pending_state = record.pending_state;
    run.my_response = record.my_response;
    run.my_decision = record.my_response.response.decision;
    run.members_at_response = record.members_at_response;
    if (run.my_decision.accept) accept_lock_ = label;
    responder_runs_.emplace(label, std::move(run));
  }
  pending_redo_decides_ = recovered.responder_decides;
  restore_recovered_membership(recovered);

  callbacks_.record_evidence("recovery", agreed_tuple_.encode());
}

std::vector<RunHandle> Replica::resume_recovered_runs() {
  std::vector<RunHandle> handles;

  // TTP verdicts journaled as delivered but possibly not acted on: redo
  // them first — they may close runs outright, before any re-drive.
  if (!pending_redo_verdicts_.empty()) {
    auto verdicts = std::move(pending_redo_verdicts_);
    pending_redo_verdicts_.clear();
    for (auto& [label, body] : verdicts) {
      if (!ttp_.has_value()) {
        record_anomaly(
            "journaled TTP verdict dropped: no TTP configured after "
            "recovery for run " + label,
            self_);
        continue;
      }
      handle_termination_verdict(ttp_->ttp, body);
    }
  }

  // Responder-side redo: a decide that was journaled as delivered but
  // whose installation may have been interrupted. conclude is idempotent
  // (install_agreed_state skips an already-installed state).
  for (auto& [label, decide] : pending_redo_decides_) {
    auto it = responder_runs_.find(label);
    if (it == responder_runs_.end()) continue;
    ResponderRun run = std::move(it->second);
    responder_runs_.erase(it);
    conclude_responder_run(label, std::move(run), decide.responses,
                           decide.proposer);
  }
  pending_redo_decides_.clear();

  // Batch-responder redo, same discipline: a batch decide journaled as
  // delivered is concluded again (per-item installation is idempotent).
  for (auto& [label, decide] : pending_redo_batch_decides_) {
    auto it = responder_runs_.find(label);
    if (it == responder_runs_.end()) continue;
    ResponderRun run = std::move(it->second);
    responder_runs_.erase(it);
    conclude_batch_responder_run(label, std::move(run), decide,
                                 decide.proposer);
  }
  pending_redo_batch_decides_.clear();

  // Batch proposer side (DESIGN.md §13): a half-decided batch finishes to
  // the journaled outcome — the journaled batch decide carries the exact
  // response set our previous incarnation decided from.
  if (proposer_run_.has_value() && proposer_run_->batch.has_value()) {
    handles.push_back(proposer_run_->result);
    const std::string label =
        proposer_run_->propose.proposal.proposed.label();
    if (recovered_batch_decide_.has_value()) {
      BatchDecideMsg decide = std::move(*recovered_batch_decide_);
      recovered_batch_decide_.reset();
      proposer_run_->responses.clear();
      for (const RespondMsg& resp : decide.responses) {
        proposer_run_->responses.emplace(resp.response.responder, resp);
      }
      finish_batch_run_as_proposer();
    } else if (proposer_run_->responses.size() ==
               proposer_run_->recipients.size()) {
      finish_batch_run_as_proposer();
    } else {
      Bytes encoded = proposer_run_->batch->propose.encode();
      for (const PartyId& recipient : proposer_run_->recipients) {
        if (!proposer_run_->responses.contains(recipient)) {
          send_envelope(recipient, MsgType::kBatchPropose, encoded);
        }
      }
      arm_run_probe(label, /*as_proposer=*/true, 1);
    }
  }

  // Proposer side.
  if (proposer_run_.has_value() && !proposer_run_->batch.has_value()) {
    handles.push_back(proposer_run_->result);
    const std::string label =
        proposer_run_->propose.proposal.proposed.label();
    if (recovered_decide_.has_value()) {
      // The decide phase was journaled: redo it from the journaled
      // response set. Re-sent decides are deduplicated by recipients.
      // For a deal leg this only happens after the deal decision itself
      // was journaled (commit_staged_run runs the same decide phase), so
      // redoing it unconditionally is correct — clear the staging flag.
      proposer_run_->deal_staged = false;
      DecideMsg decide = std::move(*recovered_decide_);
      recovered_decide_.reset();
      proposer_run_->responses.clear();
      for (const RespondMsg& resp : decide.responses) {
        proposer_run_->responses.emplace(resp.response.responder, resp);
      }
      finish_state_run_as_proposer();
    } else if (proposer_run_->deal_staged) {
      // A staged deal leg is resumed by the deal layer (which re-drives
      // or aborts the whole deal), not by the per-run resume: neither
      // auto-finish nor re-send here.
    } else if (proposer_run_->responses.size() ==
               proposer_run_->recipients.size()) {
      finish_state_run_as_proposer();
    } else {
      // Still collecting responses: re-drive the silent recipients (our
      // propose, or their response, may have died with us) and re-arm
      // the capped probe.
      Bytes encoded = proposer_run_->propose.encode();
      for (const PartyId& recipient : proposer_run_->recipients) {
        if (!proposer_run_->responses.contains(recipient)) {
          send_envelope(recipient, MsgType::kPropose, encoded);
        }
      }
      arm_run_probe(label, /*as_proposer=*/true, 1);
      arm_deadline(label, /*as_proposer=*/true);
    }
  }

  // Responder runs still awaiting a decide: re-send our response (the
  // proposer may never have seen it) and re-arm the probe.
  for (const auto& [label, run] : responder_runs_) {
    send_envelope(run.propose.proposal.proposer, MsgType::kRespond,
                  run.my_response.encode());
    arm_run_probe(label, /*as_proposer=*/false, 1);
    arm_deadline(label, /*as_proposer=*/false);
  }

  resume_recovered_membership(handles);

  // Re-fetch TTP decisions for referrals our previous incarnation had
  // journaled: the TTP caches exactly one verdict per run, so a
  // resubmission is a re-fetch of whatever it already decided, never a
  // second decision.
  if (!recovered_termination_submissions_.empty()) {
    auto submissions = std::move(recovered_termination_submissions_);
    recovered_termination_submissions_.clear();
    for (const auto& [label, as_proposer] : submissions) {
      bool still_active =
          as_proposer
              ? (proposer_run_.has_value() &&
                 proposer_run_->propose.proposal.proposed.label() == label)
              : responder_runs_.contains(label);
      if (!still_active) continue;
      if (!ttp_.has_value()) {
        record_anomaly(
            "journaled TTP referral dropped: no TTP configured after "
            "recovery for run " + label,
            self_);
        continue;
      }
      request_termination(label, as_proposer);
    }
  }

  return handles;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void Replica::handle(const PartyId& from, const Envelope& envelope) {
  try {
    switch (envelope.type) {
      case MsgType::kPropose:
        handle_propose(from, envelope.body);
        break;
      case MsgType::kRespond:
        handle_respond(from, envelope.body);
        break;
      case MsgType::kDecide:
        handle_decide(from, envelope.body);
        break;
      case MsgType::kBatchPropose:
        handle_batch_propose(from, envelope.body);
        break;
      case MsgType::kBatchDecide:
        handle_batch_decide(from, envelope.body);
        break;
      case MsgType::kConnectRequest:
        handle_connect_request(from, envelope.body);
        break;
      case MsgType::kMembershipPropose:
        handle_membership_propose(from, envelope.body);
        break;
      case MsgType::kMembershipRespond:
        handle_membership_respond(from, envelope.body);
        break;
      case MsgType::kMembershipDecide:
        handle_membership_decide(from, envelope.body);
        break;
      case MsgType::kConnectWelcome:
        handle_connect_welcome(from, envelope.body);
        break;
      case MsgType::kConnectReject:
        handle_connect_reject(from, envelope.body);
        break;
      case MsgType::kDisconnectRequest:
        handle_disconnect_request(from, envelope.body);
        break;
      case MsgType::kDisconnectConfirm:
        handle_disconnect_confirm(from, envelope.body);
        break;
      case MsgType::kTerminationVerdict:
        handle_termination_verdict(from, envelope.body);
        break;
      case MsgType::kDealEnlist:
        handle_deal_enlist(from, envelope.body);
        break;
      case MsgType::kDealDecision:
        handle_deal_decision(from, envelope.body);
        break;
      default:
        record_violation("unknown message type", from);
    }
  } catch (const CodecError& e) {
    // Malformed content is itself evidence of misbehaviour (§4.4): the
    // reliable layer guarantees the bytes arrived as sent by `from`.
    record_violation(std::string("malformed message: ") + e.what(), from);
  }
}

// ---------------------------------------------------------------------------
// State coordination — proposer side (§4.3)
// ---------------------------------------------------------------------------

RunHandle Replica::propose_state(Bytes new_state) {
  Bytes payload = new_state;
  return start_state_run(/*is_update=*/false, std::move(payload),
                         std::move(new_state));
}

RunHandle Replica::propose_update(Bytes update, Bytes new_state) {
  return start_state_run(/*is_update=*/true, std::move(update),
                         std::move(new_state));
}

RunHandle Replica::start_state_run(bool is_update, Bytes payload,
                                   Bytes new_state) {
  auto handle = std::make_shared<RunResult>();
  if (!connected_) {
    complete(handle, RunResult::Outcome::kAborted, "not connected", {}, 0, "");
    return handle;
  }
  if (busy()) {
    // The caller already mutated the object for this (aborted) proposal;
    // restore what the object must hold: our own still-active proposal's
    // state (invariant 2) if one is in flight, else the agreed state.
    impl_.apply_state(proposer_run_.has_value() ? proposer_run_->new_state
                                                : agreed_state_);
    complete(handle, RunResult::Outcome::kAborted,
             "busy: another coordination run is active", {}, 0, "");
    return handle;
  }
  crypto::Digest new_state_hash = crypto::Sha256::hash(new_state);
  if (!is_update && new_state_hash == agreed_tuple_.state_hash) {
    complete(handle, RunResult::Outcome::kAborted, "null state transition", {},
             0, "");
    return handle;
  }

  ProposerRun run;
  run.authenticator = fresh_random();
  run.new_state = std::move(new_state);
  run.result = handle;

  Proposal& prop = run.propose.proposal;
  prop.proposer = self_;
  prop.object = object_;
  prop.group = group_tuple_;
  prop.agreed = agreed_tuple_;
  prop.proposed = StateTuple{next_sequence(),
                             crypto::Sha256::hash(run.authenticator),
                             new_state_hash};
  prop.is_update = is_update;
  prop.payload_hash = crypto::Sha256::hash(payload);
  run.propose.payload = std::move(payload);
  run.propose.signature = key_.sign(prop.signed_bytes());

  note_sequence(prop.proposed.sequence);
  const std::string label = prop.proposed.label();
  seen_run_labels_.insert(label);

  for (const PartyId& member : members_) {
    if (member != self_) run.recipients.push_back(member);
  }

  Bytes encoded = run.propose.encode();
  hit_crash_point("propose.pre-journal");
  if (journaling()) {
    ProposerRunRecord record{run.propose, run.authenticator, run.new_state,
                             run.recipients};
    wire::Encoder enc;
    enc.blob(record.encode());
    journal_record(walrec::kProposerRun, std::move(enc).take());
  }
  callbacks_.record_evidence(evidence_kind::kProposeSent, encoded);
  journal_barrier();
  hit_crash_point("propose.journaled");

  if (run.recipients.empty()) {
    // Singleton group: trivially unanimous.
    install_agreed_state(prop.proposed, run.new_state,
                         /*apply_to_object=*/false);
    journal_run_closed(walrec::kProposerClosed, label);
    complete(handle, RunResult::Outcome::kAgreed, "", {},
             prop.proposed.sequence, label);
    return handle;
  }

  bool first_send = true;
  for (const PartyId& recipient : run.recipients) {
    messages_.add(label, {"sent", "propose", recipient.str(), encoded});
    send_envelope(recipient, MsgType::kPropose, encoded);
    if (first_send) {
      first_send = false;
      hit_crash_point("propose.mid-send");
    }
  }
  proposer_run_ = std::move(run);
  arm_deadline(label, /*as_proposer=*/true);
  arm_run_probe(label, /*as_proposer=*/true, 1);
  hit_crash_point("propose.sent");
  return handle;
}

void Replica::handle_respond(const PartyId& from, const Bytes& body) {
  RespondMsg msg = RespondMsg::decode(body);
  const Response& resp = msg.response;

  if (resp.responder != from) {
    record_violation("response sender does not match responder field", from);
    return;
  }
  if (!proposer_run_.has_value() ||
      proposer_run_->propose.proposal.proposed != resp.proposed) {
    const std::string stray_label = resp.proposed.label();
    if (journaling() && seen_run_labels_.contains(stray_label)) {
      // A responder re-probing a run we already closed (it may have lost
      // our decide in its crash window): re-send the stored decide so it
      // can conclude, instead of branding a legitimate retry a replay.
      // Aborted deal legs have no decide — re-answer with the stored
      // signed deal decision instead.
      if (maybe_resend_decide(stray_label, from)) return;
      if (maybe_resend_batch_decide(stray_label, from)) return;
      if (maybe_resend_deal_decision(stray_label, from)) return;
      record_anomaly("response for closed run " + stray_label, from);
      return;
    }
    record_violation("response for no active run (stray or replayed)", from);
    return;
  }
  ProposerRun& run = *proposer_run_;
  if (std::find(run.recipients.begin(), run.recipients.end(), from) ==
      run.recipients.end()) {
    record_violation("response from non-recipient", from);
    return;
  }
  const crypto::RsaPublicKey* pub = callbacks_.key_of(from);
  if (pub == nullptr || !pub->verify(resp.signed_bytes(), msg.signature)) {
    record_violation("bad signature on response", from);
    return;
  }
  const std::string label = resp.proposed.label();
  auto existing = run.responses.find(from);
  if (existing != run.responses.end()) {
    if (!(existing->second == msg)) {
      // Two different signed responses from the same party for the same
      // run: equivocation. Both are kept as evidence.
      callbacks_.record_evidence(evidence_kind::kRespondReceived,
                                 msg.encode());
      record_violation("equivocating responses", from);
    }
    return;
  }

  hit_crash_point("response.pre-journal");
  if (journaling()) {
    wire::Encoder enc;
    enc.blob(msg.encode());
    journal_record(walrec::kResponseReceived, std::move(enc).take());
  }
  messages_.add(label, {"received", "respond", from.str(), body});
  callbacks_.record_evidence(evidence_kind::kRespondReceived, msg.encode());
  journal_barrier();
  hit_crash_point("response.journaled");
  run.responses.emplace(from, std::move(msg));

  if (run.responses.size() == run.recipients.size()) {
    if (run.deal_staged) {
      // Deal leg: the prepare is complete — park the response set
      // undecided and let the deal layer decide across all legs
      // (DESIGN.md §12). The hook runs under this shard's lock and may
      // only touch deal-internal state / schedule work.
      std::vector<PartyId> vetoers;
      bool all_accept = true;
      for (const PartyId& recipient : run.recipients) {
        const Response& r = run.responses.at(recipient).response;
        const Proposal& prop = run.propose.proposal;
        if (!r.decision.accept || r.agreed_view != prop.agreed ||
            r.current_view != prop.agreed || r.group_view != prop.group ||
            r.payload_integrity != prop.payload_hash) {
          all_accept = false;
          vetoers.push_back(recipient);
        }
      }
      callbacks_.record_evidence(evidence_kind::kDealPrepared,
                                 run.propose.proposal.proposed.encode());
      if (deal_hooks_.on_leg_prepared) {
        deal_hooks_.on_leg_prepared(object_, label, all_accept, vetoers);
      }
    } else if (run.batch.has_value()) {
      finish_batch_run_as_proposer();
    } else {
      finish_state_run_as_proposer();
    }
  }
}

void Replica::finish_state_run_as_proposer() {
  ProposerRun run = std::move(*proposer_run_);
  proposer_run_.reset();
  const Proposal& prop = run.propose.proposal;
  const std::string label = prop.proposed.label();

  DecideMsg decide;
  decide.proposer = self_;
  decide.object = object_;
  decide.proposed = prop.proposed;
  decide.authenticator = run.authenticator;
  std::vector<PartyId> vetoers;
  std::string first_diagnostic;
  std::size_t consistent_accepts = 0;
  for (const PartyId& recipient : run.recipients) {
    const RespondMsg& resp = run.responses.at(recipient);
    decide.responses.push_back(resp);
    const Response& r = resp.response;
    if (!r.decision.accept) {
      vetoers.push_back(recipient);
      if (first_diagnostic.empty()) first_diagnostic = r.decision.diagnostic;
    } else if (r.agreed_view != prop.agreed || r.current_view != prop.agreed ||
               r.group_view != prop.group ||
               r.payload_integrity != prop.payload_hash) {
      // An accept whose view fields contradict the proposal is internally
      // inconsistent content (§4.4): it cannot count towards agreement.
      record_violation("inconsistent accept response", recipient);
      vetoers.push_back(recipient);
      if (first_diagnostic.empty()) {
        first_diagnostic =
            "inconsistent accept response from " + recipient.str();
      }
    } else {
      ++consistent_accepts;
    }
  }
  bool agreed = group_accepts(consistent_accepts, run.recipients.size());

  Bytes encoded = decide.encode();
  hit_crash_point("decide.pre-journal");
  if (journaling()) {
    wire::Encoder enc;
    enc.blob(encoded);
    journal_record(walrec::kDecideSent, std::move(enc).take());
  }
  callbacks_.record_evidence(evidence_kind::kDecideSent, encoded);
  journal_barrier();
  hit_crash_point("decide.journaled");
  bool first_send = true;
  for (const PartyId& recipient : run.recipients) {
    messages_.add(label, {"sent", "decide", recipient.str(), encoded});
    send_envelope(recipient, MsgType::kDecide, encoded);
    if (first_send) {
      first_send = false;
      hit_crash_point("decide.mid-send");
    }
  }
  hit_crash_point("decide.sent");

  CoordEvent event;
  event.object = object_;
  event.party = self_;
  event.sequence = prop.proposed.sequence;
  if (agreed) {
    // The proposer's object already holds the new state (invariant 2);
    // record it as agreed and checkpoint.
    install_agreed_state(prop.proposed, std::move(run.new_state),
                         /*apply_to_object=*/false);
    event.kind = CoordEvent::Kind::kStateAgreed;
    impl_.coord_callback(event);
    if (callbacks_.notify) callbacks_.notify(event);
    // Under the majority rule, `vetoers` lists overridden dissenters.
    complete(run.result, RunResult::Outcome::kAgreed, "", std::move(vetoers),
             prop.proposed.sequence, label);
  } else {
    impl_.apply_state(agreed_state_);
    callbacks_.record_evidence(evidence_kind::kStateRolledBack,
                               prop.proposed.encode());
    event.kind = CoordEvent::Kind::kStateVetoed;
    event.detail = first_diagnostic;
    impl_.coord_callback(event);
    if (callbacks_.notify) callbacks_.notify(event);
    complete(run.result, RunResult::Outcome::kVetoed, first_diagnostic,
             std::move(vetoers), prop.proposed.sequence, label);
  }
  journal_run_closed(walrec::kProposerClosed, label);
  hit_crash_point("decide.installed");
  drain_deferred_membership();
}

// ---------------------------------------------------------------------------
// State coordination — responder side (§4.3, checks of §4.4)
// ---------------------------------------------------------------------------

void Replica::handle_propose(const PartyId& from, const Bytes& body) {
  ProposeMsg msg = ProposeMsg::decode(body);
  const Proposal& prop = msg.proposal;

  if (prop.proposer != from) {
    record_violation("proposal sender does not match proposer field", from);
    return;
  }
  const crypto::RsaPublicKey* pub = callbacks_.key_of(from);
  if (pub == nullptr || !pub->verify(prop.signed_bytes(), msg.signature)) {
    record_violation("bad signature on proposal", from);
    return;
  }
  if (!is_member(from) || !connected_) {
    // Either a verifiable proposal from a party outside the current group
    // (typically an evicted member with a stale view — §4.5.4: "any
    // subsequent coordination request will reveal inconsistencies"), or we
    // have ourselves departed and the proposer has not yet learnt it. Send
    // a signed reject so the proposer's run terminates as vetoed instead
    // of blocking, and record the event.
    if (!is_member(from)) record_anomaly("proposal from non-member", from);
    Response stale;
    stale.responder = self_;
    stale.object = object_;
    stale.proposed = prop.proposed;
    stale.agreed_view = agreed_tuple_;
    stale.current_view = agreed_tuple_;
    stale.group_view = group_tuple_;
    stale.payload_integrity = crypto::Sha256::hash(msg.payload);
    stale.decision = Decision::rejected(
        connected_ ? "inconsistent group view"
                   : "recipient has disconnected from this group");
    RespondMsg out;
    out.response = stale;
    out.signature = key_.sign(stale.signed_bytes());
    callbacks_.record_evidence(evidence_kind::kRespondSent, out.encode());
    send_envelope(from, MsgType::kRespond, out.encode());
    return;
  }
  if (prop.object != object_) {
    record_violation("proposal for wrong object", from);
    return;
  }
  const std::string label = prop.proposed.label();
  if (seen_run_labels_.contains(label)) {
    if (journaling()) {
      // With a journal behind us a duplicate proposal is the expected
      // trace of a crashed-and-recovered proposer re-driving its run, not
      // prima facie replay: answer it idempotently. (Journal-less
      // deployments keep the strict §4.4 replay stance below.)
      auto it = responder_runs_.find(label);
      if (it != responder_runs_.end() &&
          it->second.propose.proposal.proposer == from) {
        record_anomaly("duplicate proposal re-answered " + label, from);
        send_envelope(from, MsgType::kRespond,
                      it->second.my_response.encode());
        return;
      }
      if (it == responder_runs_.end()) {
        record_anomaly("duplicate proposal for closed run " + label, from);
        return;
      }
    }
    // §4.4: T_prop uniquely labels a run; a re-appearance is a replay.
    record_violation("replayed proposal " + label, from);
    return;
  }
  seen_run_labels_.insert(label);
  note_sequence(prop.proposed.sequence);
  hit_crash_point("respond.pre-journal");
  callbacks_.record_evidence(evidence_kind::kProposeReceived, msg.encode());
  messages_.add(label, {"received", "propose", from.str(), body});

  Bytes pending_state;
  Decision decision = evaluate_proposal(msg, &pending_state);

  Response resp;
  resp.responder = self_;
  resp.object = object_;
  resp.proposed = prop.proposed;
  resp.agreed_view = agreed_tuple_;
  resp.current_view = proposer_run_.has_value()
                          ? proposer_run_->propose.proposal.proposed
                          : agreed_tuple_;
  resp.group_view = group_tuple_;
  resp.payload_integrity = crypto::Sha256::hash(msg.payload);
  resp.decision = decision;

  RespondMsg out;
  out.response = resp;
  out.signature = key_.sign(resp.signed_bytes());

  ResponderRun run;
  run.propose = msg;
  run.pending_state = std::move(pending_state);
  run.my_decision = decision;
  run.my_response = out;
  run.members_at_response = members_;

  Bytes encoded = out.encode();
  if (journaling()) {
    ResponderRunRecord record{run.propose, run.pending_state,
                              run.my_response, run.members_at_response};
    wire::Encoder enc;
    enc.blob(record.encode());
    journal_record(walrec::kResponderRun, std::move(enc).take());
  }
  responder_runs_.emplace(label, std::move(run));
  if (decision.accept) accept_lock_ = label;

  callbacks_.record_evidence(evidence_kind::kRespondSent, encoded);
  messages_.add(label, {"sent", "respond", from.str(), encoded});
  journal_barrier();
  hit_crash_point("respond.journaled");
  send_envelope(from, MsgType::kRespond, encoded);
  arm_deadline(label, /*as_proposer=*/false);
  arm_run_probe(label, /*as_proposer=*/false, 1);
  hit_crash_point("respond.sent");
}

Decision Replica::evaluate_proposal(const ProposeMsg& msg,
                                    Bytes* new_state_out) {
  const Proposal& prop = msg.proposal;

  if (prop.group != group_tuple_) {
    return Decision::rejected("inconsistent group view");
  }
  if (prop.agreed != agreed_tuple_) {
    return Decision::rejected("inconsistent agreed-state view");
  }
  if (prop.proposed.sequence <= agreed_tuple_.sequence) {
    return Decision::rejected("sequence number did not advance");
  }
  if (crypto::Sha256::hash(msg.payload) != prop.payload_hash) {
    // The unsigned payload was modified in flight or at source (§4.4).
    record_violation("payload does not match signed hash", prop.proposer);
    return Decision::rejected("payload integrity failure");
  }
  if (!prop.is_update) {
    if (prop.proposed.state_hash != prop.payload_hash) {
      record_violation("overwrite proposal internally inconsistent",
                       prop.proposer);
      return Decision::rejected("proposal internally inconsistent");
    }
    if (prop.proposed.state_hash == agreed_tuple_.state_hash) {
      // §4.4: any member can detect and reject a null state transition.
      return Decision::rejected("null state transition");
    }
  }
  if (busy()) {
    return Decision::rejected("busy: concurrent coordination in progress");
  }

  ValidationContext ctx;
  ctx.local_party = self_;
  ctx.proposer = prop.proposer;
  ctx.object = object_;
  ctx.sequence = prop.proposed.sequence;

  if (prop.is_update) {
    // Apply the update to a scratch incarnation of the object to confirm
    // that "if the update is agreed and applied, a consistent new state
    // will result" (§4.3.1), then validate the result.
    Bytes snapshot = impl_.get_state();
    Bytes resulting;
    try {
      impl_.apply_update(msg.payload);
      resulting = impl_.get_state();
    } catch (const std::exception& e) {
      impl_.apply_state(snapshot);
      return Decision::rejected(std::string("update not applicable: ") +
                                e.what());
    }
    impl_.apply_state(snapshot);
    if (crypto::Sha256::hash(resulting) != prop.proposed.state_hash) {
      record_violation("update does not yield the proposed state",
                       prop.proposer);
      return Decision::rejected("update does not yield the proposed state");
    }
    Decision decision = impl_.validate_update(msg.payload, resulting, ctx);
    if (decision.accept) *new_state_out = std::move(resulting);
    return decision;
  }

  Decision decision = impl_.validate_state(msg.payload, ctx);
  if (decision.accept) *new_state_out = msg.payload;
  return decision;
}

void Replica::handle_decide(const PartyId& from, const Bytes& body) {
  if (!connected_) return;
  DecideMsg msg = DecideMsg::decode(body);
  const std::string label = msg.proposed.label();

  auto it = responder_runs_.find(label);
  if (it == responder_runs_.end()) {
    // Either we never saw the proposal (selective sending, §4.4), we
    // answered it from outside the group, or this is a duplicate of a
    // finished run: evidence-worthy, but explainable by benign races.
    record_anomaly("decide for unknown or finished run " + label, from);
    return;
  }
  ResponderRun& run = it->second;
  const Proposal& prop = run.propose.proposal;
  if (run.batch.has_value()) {
    // A pipelined batch concludes only via kBatchDecide (which reveals
    // every per-item authenticator); a plain decide cannot authenticate
    // the intermediate items and would install a hole in the sequence.
    record_violation("plain decide for pipelined batch run " + label, from);
    return;
  }
  if (msg.proposer != prop.proposer || from != prop.proposer) {
    record_violation("decide not from the proposer", from);
    return;
  }
  if (crypto::Sha256::hash(msg.authenticator) != prop.proposed.rand_hash) {
    // Only the proposer can produce the authenticator; a mismatch means
    // forgery. The run stays active (we keep waiting for the genuine one).
    record_violation("decide authenticator mismatch (forgery)", from);
    return;
  }
  hit_crash_point("decide-recv.pre-journal");
  if (journaling()) {
    wire::Encoder enc;
    enc.blob(msg.encode());
    journal_record(walrec::kDecideDelivered, std::move(enc).take());
  }
  callbacks_.record_evidence(evidence_kind::kDecideReceived, msg.encode());
  messages_.add(label, {"received", "decide", from.str(), body});
  journal_barrier();
  hit_crash_point("decide-recv.journaled");

  ResponderRun finished = std::move(it->second);
  responder_runs_.erase(it);
  conclude_responder_run(label, std::move(finished), msg.responses, from);
}

void Replica::conclude_responder_run(const std::string& label,
                                     ResponderRun run,
                                     const std::vector<RespondMsg>& responses,
                                     const PartyId& from) {
  const Proposal& prop = run.propose.proposal;
  // Verify the aggregation: every response signed, every response for this
  // run, our own response present and unaltered, full recipient coverage.
  bool intact = true;
  std::size_t consistent_accepts = 0;
  std::size_t expected_recipients = 0;
  std::set<PartyId> responders;
  for (const RespondMsg& resp_msg : responses) {
    const Response& resp = resp_msg.response;
    const crypto::RsaPublicKey* pub = callbacks_.key_of(resp.responder);
    if (pub == nullptr ||
        !pub->verify(resp.signed_bytes(), resp_msg.signature)) {
      record_violation("decide aggregates badly signed response from " +
                           resp.responder.str(),
                       from);
      intact = false;
      continue;
    }
    if (resp.proposed != prop.proposed) {
      record_violation("decide aggregates response from another run", from);
      intact = false;
      continue;
    }
    if (!responders.insert(resp.responder).second) continue;  // duplicate
    if (resp.decision.accept && resp.agreed_view == prop.agreed &&
        resp.current_view == prop.agreed && resp.group_view == prop.group &&
        resp.payload_integrity == prop.payload_hash) {
      ++consistent_accepts;
    }
    if (resp.responder == self_ && !(resp_msg == run.my_response)) {
      record_violation("own response misrepresented in decide", from);
      intact = false;
    }
  }
  bool any_reject = false;
  for (const RespondMsg& resp_msg : responses) {
    if (!resp_msg.response.decision.accept) any_reject = true;
  }
  for (const PartyId& member : run.members_at_response) {
    if (member == prop.proposer) continue;
    ++expected_recipients;
    if (!responders.contains(member)) {
      // Omitting a response only misrepresents the outcome when the
      // decide would otherwise read as an agreement; on a vetoed run a
      // shortfall is explainable by concurrent membership changes.
      if (any_reject) {
        record_anomaly("decide lacks response from " + member.str(), from);
      } else {
        record_violation("decide omits response from " + member.str(), from);
      }
      intact = false;
    }
  }

  bool agreed = intact && !responses.empty() &&
                group_accepts(consistent_accepts, expected_recipients);

  CoordEvent event;
  event.object = object_;
  event.party = prop.proposer;
  event.sequence = prop.proposed.sequence;
  if (agreed) {
    std::optional<Bytes> to_install;
    if (run.my_decision.accept && !run.pending_state.empty()) {
      to_install = std::move(run.pending_state);
    } else {
      // Majority rule overrode our veto: derive the agreed state from the
      // proposal we hold (never install anything whose hash we cannot
      // confirm against the agreed tuple).
      to_install = derive_agreed_state(run);
    }
    if (to_install.has_value()) {
      install_agreed_state(prop.proposed, std::move(*to_install),
                           /*apply_to_object=*/true);
      event.kind = CoordEvent::Kind::kStateInstalled;
      impl_.coord_callback(event);
      if (callbacks_.notify) callbacks_.notify(event);
    } else {
      // Our local copy of the payload cannot reproduce the agreed state
      // (e.g. we rejected it for integrity). We hold the evidence but need
      // an out-of-band state transfer to catch up.
      callbacks_.record_evidence("state.transfer-required",
                                 prop.proposed.encode());
      B2B_WARN(self_, " cannot materialise agreed state for run ", label);
    }
  } else {
    event.kind = CoordEvent::Kind::kStateVetoed;
    impl_.coord_callback(event);
    if (callbacks_.notify) callbacks_.notify(event);
  }

  if (accept_lock_ == label) accept_lock_.reset();
  journal_run_closed(walrec::kResponderClosed, label);
  hit_crash_point("decide-recv.installed");
  drain_deferred_membership();
}

// ---------------------------------------------------------------------------
// Pipelined batches (DESIGN.md §13): K state changes, one signature each way
// ---------------------------------------------------------------------------

RunHandle Replica::propose_batch(std::vector<BatchOp> ops) {
  auto handle = std::make_shared<RunResult>();
  if (!connected_) {
    complete(handle, RunResult::Outcome::kAborted, "not connected", {}, 0, "");
    return handle;
  }
  if (ops.empty()) {
    complete(handle, RunResult::Outcome::kAborted, "empty batch", {}, 0, "");
    return handle;
  }
  if (busy()) {
    complete(handle, RunResult::Outcome::kAborted,
             "busy: another coordination run is active", {}, 0, "");
    return handle;
  }

  // Build the hash-chained item list, drawing one 32-byte authenticator
  // per item in exactly the order K sequential runs would draw them (the
  // bit-for-bit tuple-equivalence guarantee the pipeline battery pins).
  const std::uint64_t seq_base = next_sequence();
  ProposerRun run;
  run.batch.emplace();
  BatchProposerState& batch = *run.batch;
  crypto::Digest prev_state_hash = agreed_tuple_.state_hash;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    BatchOp& op = ops[i];
    crypto::Digest state_hash =
        crypto::Sha256::hash(op.is_update ? op.new_state : op.payload);
    if (!op.is_update && state_hash == prev_state_hash) {
      complete(handle, RunResult::Outcome::kAborted,
               "null state transition in batch", {}, 0, "");
      return handle;
    }
    Bytes authenticator = fresh_random();
    BatchItem item;
    item.is_update = op.is_update;
    item.payload = std::move(op.payload);
    item.proposed = StateTuple{seq_base + i,
                               crypto::Sha256::hash(authenticator),
                               state_hash};
    batch.states.push_back(op.is_update ? std::move(op.new_state)
                                        : item.payload);
    batch.propose.items.push_back(std::move(item));
    batch.authenticators.push_back(std::move(authenticator));
    prev_state_hash = state_hash;
  }

  Proposal& prop = run.propose.proposal;
  prop.proposer = self_;
  prop.object = object_;
  prop.group = group_tuple_;
  prop.agreed = agreed_tuple_;
  prop.proposed = batch.propose.items.back().proposed;
  // A batch is a composite delta; only batch-aware paths process it, so
  // the overwrite/update flag is informational.
  prop.is_update = true;
  prop.payload_hash =
      batch_chain_head(object_, agreed_tuple_, batch.propose.items);
  batch.propose.proposal = prop;
  hit_crash_point("batch-open.pre-journal");
  // ONE signature covers the chain head and therefore every item.
  batch.propose.signature = key_.sign(batch_proposal_signed_bytes(prop));
  run.propose.signature = batch.propose.signature;
  hit_crash_point("batch-chain-head.signed");

  note_sequence(prop.proposed.sequence);
  const std::string label = prop.proposed.label();
  for (const BatchItem& item : batch.propose.items) {
    seen_run_labels_.insert(item.proposed.label());
  }
  run.result = handle;
  for (const PartyId& member : members_) {
    if (member != self_) run.recipients.push_back(member);
  }

  Bytes encoded = batch.propose.encode();
  if (journaling()) {
    BatchProposerRunRecord record{batch.propose, batch.authenticators,
                                  batch.states, run.recipients};
    wire::Encoder enc;
    enc.blob(record.encode());
    journal_record(walrec::kBatchProposerRun, std::move(enc).take());
  }
  callbacks_.record_evidence(evidence_kind::kBatchProposeSent, encoded);
  journal_barrier();
  hit_crash_point("batch-open.journaled");

  // Invariant 2: the proposer's object holds the proposed (final) state
  // while the run is open.
  impl_.apply_state(batch.states.back());

  if (run.recipients.empty()) {
    // Singleton group: trivially unanimous — install every item in order
    // (only the final item carries the batch's bookkeeping).
    for (std::size_t i = 0; i < batch.propose.items.size(); ++i) {
      install_agreed_state(batch.propose.items[i].proposed, batch.states[i],
                           /*apply_to_object=*/false,
                           /*bookkeep=*/i + 1 == batch.propose.items.size());
    }
    journal_run_closed(walrec::kProposerClosed, label);
    complete(handle, RunResult::Outcome::kAgreed, "", {},
             prop.proposed.sequence, label);
    return handle;
  }

  bool first_send = true;
  for (const PartyId& recipient : run.recipients) {
    messages_.add(label, {"sent", "batch-propose", recipient.str(), encoded});
    send_envelope(recipient, MsgType::kBatchPropose, encoded);
    if (first_send) {
      first_send = false;
      hit_crash_point("batch-open.mid-send");
    }
  }
  proposer_run_ = std::move(run);
  arm_run_probe(label, /*as_proposer=*/true, 1);
  hit_crash_point("batch-open.sent");
  return handle;
}

void Replica::finish_batch_run_as_proposer() {
  ProposerRun run = std::move(*proposer_run_);
  proposer_run_.reset();
  BatchProposerState& batch = *run.batch;
  const Proposal& prop = run.propose.proposal;
  const std::string label = prop.proposed.label();

  BatchDecideMsg decide;
  decide.proposer = self_;
  decide.object = object_;
  decide.proposed = prop.proposed;
  decide.authenticators = batch.authenticators;
  std::vector<PartyId> vetoers;
  std::string first_diagnostic;
  std::size_t consistent_accepts = 0;
  for (const PartyId& recipient : run.recipients) {
    const RespondMsg& resp = run.responses.at(recipient);
    decide.responses.push_back(resp);
    const Response& r = resp.response;
    if (!r.decision.accept) {
      vetoers.push_back(recipient);
      if (first_diagnostic.empty()) first_diagnostic = r.decision.diagnostic;
    } else if (r.agreed_view != prop.agreed || r.current_view != prop.agreed ||
               r.group_view != prop.group ||
               r.payload_integrity != prop.payload_hash) {
      record_violation("inconsistent accept response", recipient);
      vetoers.push_back(recipient);
      if (first_diagnostic.empty()) {
        first_diagnostic =
            "inconsistent accept response from " + recipient.str();
      }
    } else {
      ++consistent_accepts;
    }
  }
  bool agreed = group_accepts(consistent_accepts, run.recipients.size());

  Bytes encoded = decide.encode();
  hit_crash_point("batch-decide.pre-journal");
  if (journaling()) {
    wire::Encoder enc;
    enc.blob(encoded);
    journal_record(walrec::kBatchDecideSent, std::move(enc).take());
  }
  callbacks_.record_evidence(evidence_kind::kBatchDecideSent, encoded);
  journal_barrier();
  hit_crash_point("batch-decide.journaled");
  bool first_send = true;
  for (const PartyId& recipient : run.recipients) {
    messages_.add(label, {"sent", "batch-decide", recipient.str(), encoded});
    send_envelope(recipient, MsgType::kBatchDecide, encoded);
    if (first_send) {
      first_send = false;
      hit_crash_point("batch-decide.mid-send");
    }
  }
  hit_crash_point("batch-decide.sent");

  CoordEvent event;
  event.object = object_;
  event.party = self_;
  if (agreed) {
    // Install every item in order; only the final item checkpoints,
    // records kStateInstalled evidence and journals a snapshot. The
    // intermediate bookkeeping K sequential runs would have written is
    // subsumed by the final item's (and the batch decide evidence holds
    // every item tuple); skipping it keeps per-item cost free of the
    // TSS-stamp RSA work. The object already holds the final state
    // (invariant 2).
    for (std::size_t i = 0; i < batch.propose.items.size(); ++i) {
      install_agreed_state(batch.propose.items[i].proposed, batch.states[i],
                           /*apply_to_object=*/false,
                           /*bookkeep=*/i + 1 == batch.propose.items.size());
      event.kind = CoordEvent::Kind::kStateAgreed;
      event.sequence = batch.propose.items[i].proposed.sequence;
      impl_.coord_callback(event);
      if (callbacks_.notify) callbacks_.notify(event);
    }
    complete(run.result, RunResult::Outcome::kAgreed, "", std::move(vetoers),
             prop.proposed.sequence, label);
  } else {
    impl_.apply_state(agreed_state_);
    callbacks_.record_evidence(evidence_kind::kStateRolledBack,
                               prop.proposed.encode());
    event.kind = CoordEvent::Kind::kStateVetoed;
    event.sequence = prop.proposed.sequence;
    event.detail = first_diagnostic;
    impl_.coord_callback(event);
    if (callbacks_.notify) callbacks_.notify(event);
    complete(run.result, RunResult::Outcome::kVetoed, first_diagnostic,
             std::move(vetoers), prop.proposed.sequence, label);
  }
  journal_run_closed(walrec::kProposerClosed, label);
  hit_crash_point("batch-decide.installed");
  drain_deferred_membership();
}

void Replica::handle_batch_propose(const PartyId& from, const Bytes& body) {
  BatchProposeMsg msg = BatchProposeMsg::decode(body);
  const Proposal& prop = msg.proposal;

  if (prop.proposer != from) {
    record_violation("batch proposal sender does not match proposer field",
                     from);
    return;
  }
  const crypto::RsaPublicKey* pub = callbacks_.key_of(from);
  if (pub == nullptr ||
      !pub->verify(batch_proposal_signed_bytes(prop), msg.signature)) {
    record_violation("bad signature on batch proposal", from);
    return;
  }
  if (msg.items.empty() || !(msg.items.back().proposed == prop.proposed)) {
    record_violation("batch proposal items inconsistent with head tuple",
                     from);
    return;
  }
  if (!is_member(from) || !connected_) {
    if (!is_member(from)) {
      record_anomaly("batch proposal from non-member", from);
    }
    Response stale;
    stale.responder = self_;
    stale.object = object_;
    stale.proposed = prop.proposed;
    stale.agreed_view = agreed_tuple_;
    stale.current_view = agreed_tuple_;
    stale.group_view = group_tuple_;
    stale.payload_integrity = batch_chain_head(object_, prop.agreed, msg.items);
    stale.decision = Decision::rejected(
        connected_ ? "inconsistent group view"
                   : "recipient has disconnected from this group");
    RespondMsg out;
    out.response = stale;
    out.signature = key_.sign(stale.signed_bytes());
    callbacks_.record_evidence(evidence_kind::kRespondSent, out.encode());
    send_envelope(from, MsgType::kRespond, out.encode());
    return;
  }
  if (prop.object != object_) {
    record_violation("batch proposal for wrong object", from);
    return;
  }
  const std::string label = prop.proposed.label();
  if (seen_run_labels_.contains(label)) {
    if (journaling()) {
      auto it = responder_runs_.find(label);
      if (it != responder_runs_.end() &&
          it->second.propose.proposal.proposer == from) {
        record_anomaly("duplicate batch proposal re-answered " + label, from);
        send_envelope(from, MsgType::kRespond,
                      it->second.my_response.encode());
        return;
      }
      if (it == responder_runs_.end()) {
        record_anomaly("duplicate batch proposal for closed run " + label,
                       from);
        return;
      }
    }
    record_violation("replayed batch proposal " + label, from);
    return;
  }
  for (const BatchItem& item : msg.items) {
    seen_run_labels_.insert(item.proposed.label());
  }
  note_sequence(prop.proposed.sequence);
  callbacks_.record_evidence(evidence_kind::kBatchProposeReceived,
                             msg.encode());
  messages_.add(label, {"received", "batch-propose", from.str(), body});

  // Integrity first: the single signature covers the chain head, so a
  // mutated/reordered/dropped item breaks the recomputed head.
  const crypto::Digest recomputed_head =
      batch_chain_head(object_, prop.agreed, msg.items);
  std::vector<Bytes> pending_states;
  Decision decision = [&]() -> Decision {
    if (recomputed_head != prop.payload_hash) {
      record_violation("batch payload does not match signed chain head",
                       prop.proposer);
      return Decision::rejected("batch payload integrity failure");
    }
    if (prop.group != group_tuple_) {
      return Decision::rejected("inconsistent group view");
    }
    if (prop.agreed != agreed_tuple_) {
      return Decision::rejected("inconsistent agreed-state view");
    }
    for (std::size_t i = 0; i < msg.items.size(); ++i) {
      if (msg.items[i].proposed.sequence != prop.agreed.sequence + 1 + i) {
        record_violation("batch sequence numbers not consecutive",
                         prop.proposer);
        return Decision::rejected("batch sequence numbers not consecutive");
      }
    }
    if (busy()) {
      return Decision::rejected("busy: concurrent coordination in progress");
    }
    // Validate the items sequentially on a scratch incarnation: item i is
    // validated against the state item i-1 produced, exactly as i
    // sequential runs would validate them.
    Bytes snapshot = impl_.get_state();
    crypto::Digest prev_hash = agreed_tuple_.state_hash;
    impl_.apply_state(agreed_state_);
    for (std::size_t i = 0; i < msg.items.size(); ++i) {
      const BatchItem& item = msg.items[i];
      ValidationContext ctx;
      ctx.local_party = self_;
      ctx.proposer = prop.proposer;
      ctx.object = object_;
      ctx.sequence = item.proposed.sequence;
      Bytes resulting;
      if (item.is_update) {
        try {
          impl_.apply_update(item.payload);
          resulting = impl_.get_state();
        } catch (const std::exception& e) {
          impl_.apply_state(snapshot);
          return Decision::rejected(
              std::string("batch update not applicable: ") + e.what());
        }
        if (crypto::Sha256::hash(resulting) != item.proposed.state_hash) {
          impl_.apply_state(snapshot);
          record_violation("batch item does not yield the proposed state",
                           prop.proposer);
          return Decision::rejected(
              "batch item does not yield the proposed state");
        }
        Decision verdict = impl_.validate_update(item.payload, resulting, ctx);
        if (!verdict.accept) {
          impl_.apply_state(snapshot);
          return verdict;
        }
      } else {
        if (item.proposed.state_hash != crypto::Sha256::hash(item.payload)) {
          impl_.apply_state(snapshot);
          record_violation("batch overwrite item internally inconsistent",
                           prop.proposer);
          return Decision::rejected("batch item internally inconsistent");
        }
        if (item.proposed.state_hash == prev_hash) {
          impl_.apply_state(snapshot);
          return Decision::rejected("null state transition in batch");
        }
        Decision verdict = impl_.validate_state(item.payload, ctx);
        if (!verdict.accept) {
          impl_.apply_state(snapshot);
          return verdict;
        }
        resulting = item.payload;
        impl_.apply_state(resulting);
      }
      pending_states.push_back(std::move(resulting));
      prev_hash = item.proposed.state_hash;
      if (i == 0) hit_crash_point("batch-respond.mid");
    }
    impl_.apply_state(snapshot);
    return Decision::accepted();
  }();
  if (!decision.accept) pending_states.clear();

  Response resp;
  resp.responder = self_;
  resp.object = object_;
  resp.proposed = prop.proposed;
  resp.agreed_view = agreed_tuple_;
  resp.current_view = proposer_run_.has_value()
                          ? proposer_run_->propose.proposal.proposed
                          : agreed_tuple_;
  resp.group_view = group_tuple_;
  resp.payload_integrity = recomputed_head;
  resp.decision = decision;

  // ONE standard signed response answers the whole batch.
  RespondMsg out;
  out.response = resp;
  out.signature = key_.sign(resp.signed_bytes());

  ResponderRun run;
  run.propose.proposal = prop;
  run.propose.signature = msg.signature;
  if (!pending_states.empty()) run.pending_state = pending_states.back();
  run.my_decision = decision;
  run.my_response = out;
  run.members_at_response = members_;
  run.batch = BatchResponderState{std::move(msg), std::move(pending_states)};

  Bytes encoded = out.encode();
  if (journaling()) {
    BatchResponderRunRecord record{run.batch->propose,
                                   run.batch->pending_states,
                                   run.my_response, run.members_at_response};
    wire::Encoder enc;
    enc.blob(record.encode());
    journal_record(walrec::kBatchResponderRun, std::move(enc).take());
  }
  responder_runs_.emplace(label, std::move(run));
  if (decision.accept) accept_lock_ = label;

  callbacks_.record_evidence(evidence_kind::kRespondSent, encoded);
  messages_.add(label, {"sent", "respond", from.str(), encoded});
  journal_barrier();
  hit_crash_point("batch-respond.journaled");
  send_envelope(from, MsgType::kRespond, encoded);
  arm_run_probe(label, /*as_proposer=*/false, 1);
  hit_crash_point("batch-respond.sent");
}

void Replica::handle_batch_decide(const PartyId& from, const Bytes& body) {
  if (!connected_) return;
  BatchDecideMsg msg = BatchDecideMsg::decode(body);
  const std::string label = msg.proposed.label();

  auto it = responder_runs_.find(label);
  if (it == responder_runs_.end()) {
    record_anomaly("batch decide for unknown or finished run " + label, from);
    return;
  }
  ResponderRun& run = it->second;
  if (!run.batch.has_value()) {
    record_violation("batch decide for non-batch run " + label, from);
    return;
  }
  const Proposal& prop = run.propose.proposal;
  if (msg.proposer != prop.proposer || from != prop.proposer) {
    record_violation("batch decide not from the proposer", from);
    return;
  }
  // EVERY per-item authenticator must be revealed and check out: the
  // intermediate tuples are installed on their strength alone.
  const std::vector<BatchItem>& items = run.batch->propose.items;
  if (msg.authenticators.size() != items.size()) {
    record_violation("batch decide authenticator count mismatch", from);
    return;
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (crypto::Sha256::hash(msg.authenticators[i]) !=
        items[i].proposed.rand_hash) {
      record_violation("batch decide authenticator mismatch (forgery)", from);
      return;
    }
  }
  hit_crash_point("batch-decide-recv.pre-journal");
  if (journaling()) {
    wire::Encoder enc;
    enc.blob(msg.encode());
    journal_record(walrec::kBatchDecideDelivered, std::move(enc).take());
  }
  callbacks_.record_evidence(evidence_kind::kBatchDecideReceived,
                             msg.encode());
  messages_.add(label, {"received", "batch-decide", from.str(), body});
  journal_barrier();
  hit_crash_point("batch-decide-recv.journaled");

  ResponderRun finished = std::move(it->second);
  responder_runs_.erase(it);
  conclude_batch_responder_run(label, std::move(finished), msg, from);
}

void Replica::conclude_batch_responder_run(const std::string& label,
                                           ResponderRun run,
                                           const BatchDecideMsg& msg,
                                           const PartyId& from) {
  const Proposal& prop = run.propose.proposal;
  const std::vector<BatchItem>& items = run.batch->propose.items;

  // Signature pass first, in bulk: the coordinator's verify_many backs
  // this with batch verification + the verified-signature cache, so a
  // batch decide costs one screened RSA pass, and a retransmitted decide
  // costs none.
  std::vector<bool> sig_ok(msg.responses.size(), false);
  if (callbacks_.verify_many) {
    std::vector<VerifyJob> jobs;
    jobs.reserve(msg.responses.size());
    for (const RespondMsg& resp_msg : msg.responses) {
      jobs.push_back(VerifyJob{resp_msg.response.responder,
                               resp_msg.response.signed_bytes(),
                               resp_msg.signature});
    }
    sig_ok = callbacks_.verify_many(jobs);
  } else {
    for (std::size_t i = 0; i < msg.responses.size(); ++i) {
      const RespondMsg& resp_msg = msg.responses[i];
      const crypto::RsaPublicKey* pub =
          callbacks_.key_of(resp_msg.response.responder);
      sig_ok[i] = pub != nullptr && pub->verify(resp_msg.response.signed_bytes(),
                                                resp_msg.signature);
    }
  }

  bool intact = true;
  std::size_t consistent_accepts = 0;
  std::size_t expected_recipients = 0;
  std::set<PartyId> responders;
  for (std::size_t i = 0; i < msg.responses.size(); ++i) {
    const RespondMsg& resp_msg = msg.responses[i];
    const Response& resp = resp_msg.response;
    if (!sig_ok[i]) {
      record_violation("batch decide aggregates badly signed response from " +
                           resp.responder.str(),
                       from);
      intact = false;
      continue;
    }
    if (resp.proposed != prop.proposed) {
      record_violation("batch decide aggregates response from another run",
                       from);
      intact = false;
      continue;
    }
    if (!responders.insert(resp.responder).second) continue;  // duplicate
    if (resp.decision.accept && resp.agreed_view == prop.agreed &&
        resp.current_view == prop.agreed && resp.group_view == prop.group &&
        resp.payload_integrity == prop.payload_hash) {
      ++consistent_accepts;
    }
    if (resp.responder == self_ && !(resp_msg == run.my_response)) {
      record_violation("own response misrepresented in batch decide", from);
      intact = false;
    }
  }
  bool any_reject = false;
  for (const RespondMsg& resp_msg : msg.responses) {
    if (!resp_msg.response.decision.accept) any_reject = true;
  }
  for (const PartyId& member : run.members_at_response) {
    if (member == prop.proposer) continue;
    ++expected_recipients;
    if (!responders.contains(member)) {
      if (any_reject) {
        record_anomaly("batch decide lacks response from " + member.str(),
                       from);
      } else {
        record_violation("batch decide omits response from " + member.str(),
                         from);
      }
      intact = false;
    }
  }

  bool agreed = intact && !msg.responses.empty() &&
                group_accepts(consistent_accepts, expected_recipients);

  CoordEvent event;
  event.object = object_;
  event.party = prop.proposer;
  if (agreed) {
    std::optional<std::vector<Bytes>> to_install;
    if (run.my_decision.accept &&
        run.batch->pending_states.size() == items.size()) {
      to_install = std::move(run.batch->pending_states);
    } else {
      // Majority rule overrode our veto: re-derive every item state from
      // the payloads we hold, confirming each hash.
      to_install = derive_batch_agreed_states(run);
    }
    if (to_install.has_value()) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        install_agreed_state(items[i].proposed, std::move((*to_install)[i]),
                             /*apply_to_object=*/true,
                             /*bookkeep=*/i + 1 == items.size());
        event.kind = CoordEvent::Kind::kStateInstalled;
        event.sequence = items[i].proposed.sequence;
        impl_.coord_callback(event);
        if (callbacks_.notify) callbacks_.notify(event);
      }
    } else {
      callbacks_.record_evidence("state.transfer-required",
                                 prop.proposed.encode());
      B2B_WARN(self_, " cannot materialise agreed batch states for run ",
               label);
    }
  } else {
    event.kind = CoordEvent::Kind::kStateVetoed;
    event.sequence = prop.proposed.sequence;
    impl_.coord_callback(event);
    if (callbacks_.notify) callbacks_.notify(event);
  }

  if (accept_lock_ == label) accept_lock_.reset();
  journal_run_closed(walrec::kResponderClosed, label);
  hit_crash_point("batch-decide-recv.installed");
  drain_deferred_membership();
}

std::optional<std::vector<Bytes>> Replica::derive_batch_agreed_states(
    ResponderRun& run) {
  const std::vector<BatchItem>& items = run.batch->propose.items;
  std::vector<Bytes> states;
  states.reserve(items.size());
  Bytes snapshot = impl_.get_state();
  try {
    impl_.apply_state(agreed_state_);
    for (const BatchItem& item : items) {
      if (item.is_update) {
        impl_.apply_update(item.payload);
        Bytes result = impl_.get_state();
        if (crypto::Sha256::hash(result) != item.proposed.state_hash) {
          impl_.apply_state(snapshot);
          return std::nullopt;
        }
        states.push_back(std::move(result));
      } else {
        if (crypto::Sha256::hash(item.payload) != item.proposed.state_hash) {
          impl_.apply_state(snapshot);
          return std::nullopt;
        }
        impl_.apply_state(item.payload);
        states.push_back(item.payload);
      }
    }
    impl_.apply_state(snapshot);
    return states;
  } catch (const std::exception&) {
    impl_.apply_state(snapshot);
    return std::nullopt;
  }
}

bool Replica::maybe_resend_batch_decide(const std::string& label,
                                        const PartyId& to) {
  if (!journaling()) return false;
  for (const auto& stored : messages_.run(label)) {
    if (stored.direction == "sent" && stored.kind == "batch-decide") {
      record_anomaly("re-sent batch decide of closed run " + label, to);
      send_envelope(to, MsgType::kBatchDecide, stored.payload);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// TTP-certified termination (§7 extension; see termination.hpp)
// ---------------------------------------------------------------------------

void Replica::enable_ttp_termination(TtpConfig config) {
  if (!callbacks_.schedule) {
    throw Error("ttp termination requires a schedule callback");
  }
  if (config.deadline_micros == 0) {
    throw Error("ttp termination requires a non-zero deadline");
  }
  ttp_ = std::move(config);
}

void Replica::arm_deadline(const std::string& label, bool as_proposer) {
  if (!ttp_.has_value()) return;
  callbacks_.schedule(ttp_->deadline_micros, [this, label, as_proposer] {
    bool still_active =
        as_proposer
            ? (proposer_run_.has_value() &&
               proposer_run_->propose.proposal.proposed.label() == label)
            : responder_runs_.contains(label);
    if (!still_active) return;
    if (as_proposer && proposer_run_->deal_staged) {
      // Staged deal leg: the deal layer owns initiator escalation (it
      // must abort or register the WHOLE deal, never refer one leg).
      if (deal_hooks_.on_leg_deadline) {
        deal_hooks_.on_leg_deadline(object_, label);
      }
      return;
    }
    request_termination(label, as_proposer);
  });
}

void Replica::request_termination(const std::string& label,
                                  bool as_proposer) {
  TerminationRequest request;
  request.requester = self_;
  request.object = object_;
  if (as_proposer) {
    const ProposerRun& run = *proposer_run_;
    request.proposed = run.propose.proposal.proposed;
    request.propose = run.propose;
    for (const auto& [responder, resp] : run.responses) {
      request.responses.push_back(resp);
    }
    request.claimed_recipients = run.recipients;
  } else {
    request.proposed = responder_runs_.at(label).propose.proposal.proposed;
  }
  Bytes signature = key_.sign(request.signed_bytes());
  if (journaling()) {
    wire::Encoder enc;
    enc.str(label).u8(as_proposer ? 1 : 0);
    journal_record(walrec::kTerminationSubmitted, std::move(enc).take());
  }
  callbacks_.record_evidence("ttp.request", request.encode());
  journal_barrier();
  hit_crash_point("ttp-submit.journaled");
  send_envelope(ttp_->ttp, MsgType::kTerminationRequest,
                request.encode_with_signature(signature));
  B2B_DEBUG(self_, " refers blocked run ", label, " to the TTP");
}

void Replica::handle_termination_verdict(const PartyId& from,
                                         const Bytes& body) {
  if (!ttp_.has_value() || from != ttp_->ttp) {
    record_violation("unsolicited termination verdict", from);
    return;
  }
  Bytes signature;
  TerminationVerdict verdict = TerminationVerdict::decode_fields(body, &signature);
  if (!ttp_->ttp_key.verify(verdict.signed_bytes(), signature)) {
    record_violation("badly signed termination verdict", from);
    return;
  }
  if (verdict.object != object_) return;
  const std::string label = verdict.proposed.label();
  // Journal the signed verdict before acting on it, but only while a run
  // it concludes is still open (a late duplicate for a closed run would
  // only bloat the journal).
  bool run_open = (proposer_run_.has_value() &&
                   proposer_run_->propose.proposal.proposed ==
                       verdict.proposed) ||
                  responder_runs_.contains(label);
  if (run_open && journaling()) {
    wire::Encoder enc;
    enc.blob(body);
    journal_record(walrec::kVerdictDelivered, std::move(enc).take());
  }
  callbacks_.record_evidence(verdict.kind == TerminationVerdict::Kind::kAbort
                                 ? "ttp.abort"
                                 : "ttp.decision",
                             body);
  if (run_open) {
    journal_barrier();
    hit_crash_point("verdict.journaled");
  }

  // Proposer side.
  if (proposer_run_.has_value() &&
      proposer_run_->propose.proposal.proposed == verdict.proposed) {
    ProposerRun run = std::move(*proposer_run_);
    proposer_run_.reset();
    if (verdict.kind == TerminationVerdict::Kind::kAbort) {
      impl_.apply_state(agreed_state_);
      callbacks_.record_evidence(evidence_kind::kStateRolledBack,
                                 verdict.proposed.encode());
      complete(run.result, RunResult::Outcome::kAborted,
               "TTP-certified abort", {}, verdict.proposed.sequence, label);
    } else {
      // A certified decision carries the full verified response set; we
      // conclude exactly as if we had assembled the decide ourselves.
      std::size_t consistent_accepts = 0;
      const Proposal& prop = run.propose.proposal;
      for (const RespondMsg& resp_msg : verdict.responses) {
        const Response& r = resp_msg.response;
        const crypto::RsaPublicKey* pub = callbacks_.key_of(r.responder);
        if (pub != nullptr &&
            pub->verify(r.signed_bytes(), resp_msg.signature) &&
            r.proposed == prop.proposed && r.decision.accept &&
            r.agreed_view == prop.agreed && r.current_view == prop.agreed &&
            r.group_view == prop.group &&
            r.payload_integrity == prop.payload_hash) {
          ++consistent_accepts;
        }
      }
      bool agreed = group_accepts(consistent_accepts, run.recipients.size());
      if (agreed) {
        install_agreed_state(prop.proposed, std::move(run.new_state),
                             /*apply_to_object=*/false);
        complete(run.result, RunResult::Outcome::kAgreed,
                 "TTP-certified decision", {}, prop.proposed.sequence, label);
      } else {
        impl_.apply_state(agreed_state_);
        complete(run.result, RunResult::Outcome::kVetoed,
                 "TTP-certified decision: vetoed", {}, prop.proposed.sequence,
                 label);
      }
    }
    journal_run_closed(walrec::kProposerClosed, label);
    return;
  }

  // Responder side.
  auto it = responder_runs_.find(label);
  if (it == responder_runs_.end()) return;  // already resolved normally
  ResponderRun run = std::move(it->second);
  responder_runs_.erase(it);
  if (verdict.kind == TerminationVerdict::Kind::kAbort) {
    if (accept_lock_ == label) accept_lock_.reset();
    journal_run_closed(walrec::kResponderClosed, label);
    CoordEvent event;
    event.kind = CoordEvent::Kind::kStateVetoed;
    event.object = object_;
    event.party = run.propose.proposal.proposer;
    event.sequence = verdict.proposed.sequence;
    event.detail = "TTP-certified abort";
    impl_.coord_callback(event);
    if (callbacks_.notify) callbacks_.notify(event);
    drain_deferred_membership();
    return;
  }
  conclude_responder_run(label, std::move(run), verdict.responses, from);
}

// ---------------------------------------------------------------------------
// Deal legs (DESIGN.md §12)
// ---------------------------------------------------------------------------

Replica::StagedLeg Replica::stage_deal_run(bool is_update, Bytes payload,
                                           Bytes new_state,
                                           const std::string& deal_id) {
  StagedLeg leg;
  leg.handle = std::make_shared<RunResult>();
  if (!connected_) {
    complete(leg.handle, RunResult::Outcome::kAborted, "not connected", {}, 0,
             "");
    return leg;
  }
  if (busy()) {
    complete(leg.handle, RunResult::Outcome::kAborted,
             "busy: another coordination run is active", {}, 0, "");
    return leg;
  }
  crypto::Digest new_state_hash = crypto::Sha256::hash(new_state);
  if (!is_update && new_state_hash == agreed_tuple_.state_hash) {
    complete(leg.handle, RunResult::Outcome::kAborted, "null state transition",
             {}, 0, "");
    return leg;
  }

  ProposerRun run;
  run.authenticator = fresh_random();
  run.new_state = std::move(new_state);
  run.result = leg.handle;
  run.deal_staged = true;
  run.deal_id = deal_id;

  Proposal& prop = run.propose.proposal;
  prop.proposer = self_;
  prop.object = object_;
  prop.group = group_tuple_;
  prop.agreed = agreed_tuple_;
  prop.proposed = StateTuple{next_sequence(),
                             crypto::Sha256::hash(run.authenticator),
                             new_state_hash};
  prop.is_update = is_update;
  prop.payload_hash = crypto::Sha256::hash(payload);
  run.propose.payload = std::move(payload);
  run.propose.signature = key_.sign(prop.signed_bytes());

  note_sequence(prop.proposed.sequence);
  leg.label = prop.proposed.label();
  leg.proposed = prop.proposed;
  seen_run_labels_.insert(leg.label);
  for (const PartyId& member : members_) {
    if (member != self_) run.recipients.push_back(member);
  }
  leg.recipient_count = run.recipients.size();

  // Invariant 2: the proposer's object holds the proposed state while its
  // run is open (the deal layer hands us the payload instead of mutating
  // the object first, so apply it here).
  impl_.apply_state(run.new_state);

  hit_crash_point("deal-stage.pre-journal");
  if (journaling()) {
    // kDealStaged strictly BEFORE kProposerRun: a crash between the two
    // must never leave a bare proposer-run record, which the per-run
    // resume would re-drive as a standalone run and decide independently
    // of the (never-opened) deal — breaking all-or-nothing. The reverse
    // orphan (staged marker without a run) is inert.
    wire::Encoder staged;
    staged.str(leg.label).str(deal_id);
    journal_record(walrec::kDealStaged, std::move(staged).take());
    ProposerRunRecord record{run.propose, run.authenticator, run.new_state,
                             run.recipients};
    wire::Encoder enc;
    enc.blob(record.encode());
    journal_record(walrec::kProposerRun, std::move(enc).take());
  }
  callbacks_.record_evidence(evidence_kind::kProposeSent, run.propose.encode());
  journal_barrier();
  proposer_run_ = std::move(run);
  return leg;
}

void Replica::launch_staged_run(const std::string& label,
                                const DealEnlistMsg& enlist) {
  if (!proposer_run_.has_value() || !proposer_run_->deal_staged ||
      proposer_run_->propose.proposal.proposed.label() != label) {
    return;
  }
  ProposerRun& run = *proposer_run_;
  Bytes encoded = run.propose.encode();
  Bytes enlist_encoded = enlist.encode();
  bool first_send = true;
  for (const PartyId& recipient : run.recipients) {
    messages_.add(label, {"sent", "propose", recipient.str(), encoded});
    send_envelope(recipient, MsgType::kPropose, encoded);
    messages_.add(label,
                  {"sent", "deal.enlist", recipient.str(), enlist_encoded});
    send_envelope(recipient, MsgType::kDealEnlist, enlist_encoded);
    if (first_send) {
      first_send = false;
      hit_crash_point("deal-launch.mid-send");
    }
  }
  arm_deadline(label, /*as_proposer=*/true);
  arm_run_probe(label, /*as_proposer=*/true, 1);
  hit_crash_point("deal-launch.sent");
}

void Replica::commit_staged_run(const std::string& label,
                                const DealDecisionMsg& decision) {
  if (!proposer_run_.has_value() || !proposer_run_->deal_staged ||
      proposer_run_->propose.proposal.proposed.label() != label) {
    return;
  }
  ProposerRun& run = *proposer_run_;
  if (run.responses.size() != run.recipients.size()) {
    return;  // not prepared: the deal layer never commits such a leg
  }
  // Broadcast the signed cross-leg decision first (the non-repudiation
  // artifact), then run the unchanged decide phase, which reveals the
  // authenticator and installs.
  Bytes encoded = decision.encode();
  for (const PartyId& recipient : run.recipients) {
    messages_.add(label, {"sent", "deal.decision", recipient.str(), encoded});
    send_envelope(recipient, MsgType::kDealDecision, encoded);
  }
  run.deal_staged = false;
  finish_state_run_as_proposer();
}

void Replica::abort_staged_run(const std::string& label,
                               const DealDecisionMsg& decision) {
  if (!proposer_run_.has_value() || !proposer_run_->deal_staged ||
      proposer_run_->propose.proposal.proposed.label() != label) {
    return;
  }
  ProposerRun run = std::move(*proposer_run_);
  proposer_run_.reset();
  const Proposal& prop = run.propose.proposal;
  Bytes encoded = decision.encode();
  for (const PartyId& recipient : run.recipients) {
    messages_.add(label, {"sent", "deal.decision", recipient.str(), encoded});
    send_envelope(recipient, MsgType::kDealDecision, encoded);
  }
  impl_.apply_state(agreed_state_);
  callbacks_.record_evidence(evidence_kind::kStateRolledBack,
                             prop.proposed.encode());
  complete(run.result, RunResult::Outcome::kAborted,
           decision.decision.diagnostic.empty()
               ? "deal aborted"
               : decision.decision.diagnostic,
           {}, prop.proposed.sequence, label);
  journal_run_closed(walrec::kProposerClosed, label);
  drain_deferred_membership();
}

void Replica::cancel_staged_run(const std::string& label) {
  if (!proposer_run_.has_value() || !proposer_run_->deal_staged ||
      proposer_run_->propose.proposal.proposed.label() != label) {
    return;
  }
  ProposerRun run = std::move(*proposer_run_);
  proposer_run_.reset();
  impl_.apply_state(agreed_state_);
  callbacks_.record_evidence(evidence_kind::kStateRolledBack,
                             run.propose.proposal.proposed.encode());
  complete(run.result, RunResult::Outcome::kAborted,
           "deal never opened: staged leg cancelled", {},
           run.propose.proposal.proposed.sequence, label);
  journal_run_closed(walrec::kProposerClosed, label);
  drain_deferred_membership();
}

bool Replica::resume_staged_run(const std::string& label,
                                const DealEnlistMsg& enlist) {
  if (!proposer_run_.has_value() || !proposer_run_->deal_staged ||
      proposer_run_->propose.proposal.proposed.label() != label) {
    return false;
  }
  ProposerRun& run = *proposer_run_;
  Bytes encoded = run.propose.encode();
  Bytes enlist_encoded = enlist.encode();
  for (const PartyId& recipient : run.recipients) {
    if (run.responses.contains(recipient)) continue;
    send_envelope(recipient, MsgType::kPropose, encoded);
    send_envelope(recipient, MsgType::kDealEnlist, enlist_encoded);
  }
  arm_run_probe(label, /*as_proposer=*/true, 1);
  arm_deadline(label, /*as_proposer=*/true);
  return true;
}

Replica::StagedRunStatus Replica::staged_run_status(
    const std::string& label) const {
  StagedRunStatus status;
  if (!proposer_run_.has_value() || !proposer_run_->deal_staged ||
      proposer_run_->propose.proposal.proposed.label() != label) {
    return status;
  }
  const ProposerRun& run = *proposer_run_;
  const Proposal& prop = run.propose.proposal;
  status.open = true;
  status.complete = run.responses.size() == run.recipients.size();
  status.all_accept = status.complete;
  for (const PartyId& recipient : run.recipients) {
    auto it = run.responses.find(recipient);
    if (it == run.responses.end()) {
      status.all_accept = false;
      continue;
    }
    const Response& r = it->second.response;
    if (!r.decision.accept || r.agreed_view != prop.agreed ||
        r.current_view != prop.agreed || r.group_view != prop.group ||
        r.payload_integrity != prop.payload_hash) {
      status.all_accept = false;
      status.vetoers.push_back(recipient);
    }
  }
  return status;
}

std::optional<std::pair<std::string, std::string>> Replica::staged_run()
    const {
  if (!proposer_run_.has_value() || !proposer_run_->deal_staged) {
    return std::nullopt;
  }
  return std::make_pair(proposer_run_->propose.proposal.proposed.label(),
                        proposer_run_->deal_id);
}

std::optional<TerminationRequest> Replica::staged_termination_request(
    const std::string& label) const {
  if (!proposer_run_.has_value() || !proposer_run_->deal_staged ||
      proposer_run_->propose.proposal.proposed.label() != label) {
    return std::nullopt;
  }
  const ProposerRun& run = *proposer_run_;
  TerminationRequest request;
  request.requester = self_;
  request.object = object_;
  request.proposed = run.propose.proposal.proposed;
  request.propose = run.propose;
  for (const auto& [responder, resp] : run.responses) {
    request.responses.push_back(resp);
  }
  request.claimed_recipients = run.recipients;
  return request;
}

void Replica::handle_deal_enlist(const PartyId& from, const Bytes& body) {
  DealEnlistMsg msg = DealEnlistMsg::decode(body);
  const DealProposal& proposal = msg.proposal;
  if (proposal.initiator != from) {
    record_violation("deal enlist sender does not match initiator", from);
    return;
  }
  const crypto::RsaPublicKey* pub = callbacks_.key_of(from);
  if (pub == nullptr || !pub->verify(proposal.signed_bytes(), msg.signature)) {
    record_violation("bad signature on deal enlist", from);
    return;
  }
  const DealLeg* my_leg = nullptr;
  for (const DealLeg& leg : proposal.legs) {
    if (leg.object == object_) {
      my_leg = &leg;
      break;
    }
  }
  if (my_leg == nullptr) {
    record_violation("deal enlist without a leg for this object", from);
    return;
  }
  const std::string label = my_leg->proposed.label();
  auto existing = deal_enlists_.find(label);
  if (existing != deal_enlists_.end()) {
    if (!(existing->second == msg)) {
      // Two different signed enlists binding this run to different deals:
      // equivocation. Both are kept as evidence.
      callbacks_.record_evidence(evidence_kind::kDealEnlistReceived, body);
      record_violation("equivocating deal enlists for run " + label, from);
    }
    return;  // duplicate (probe/recovery re-send): already on record
  }
  hit_crash_point("deal-enlist-recv.pre-journal");
  if (journaling()) {
    wire::Encoder enc;
    enc.blob(body);
    journal_record(walrec::kDealEnlisted, std::move(enc).take());
  }
  messages_.add(label, {"received", "deal.enlist", from.str(), body});
  callbacks_.record_evidence(evidence_kind::kDealEnlistReceived, body);
  journal_barrier();
  hit_crash_point("deal-enlist-recv.journaled");
  deal_enlists_.emplace(label, std::move(msg));
}

void Replica::handle_deal_decision(const PartyId& from, const Bytes& body) {
  DealDecisionMsg msg = DealDecisionMsg::decode(body);
  const DealDecision& decision = msg.decision;
  if (decision.initiator != from) {
    record_violation("deal decision sender does not match initiator", from);
    return;
  }
  const crypto::RsaPublicKey* pub = callbacks_.key_of(from);
  if (pub == nullptr ||
      !pub->verify(decision.signed_bytes(), msg.signature)) {
    record_violation("bad signature on deal decision", from);
    return;
  }
  auto seen = deal_decisions_seen_.find(decision.deal_id);
  if (seen != deal_decisions_seen_.end()) {
    if (!(seen->second.decision == decision)) {
      // Two different signed verdicts for one deal id: non-repudiable
      // equivocation, blamable on the initiator alone. Keep both.
      callbacks_.record_evidence(evidence_kind::kDealDecisionReceived, body);
      record_violation(
          "equivocating deal decision for " + decision.deal_id, from);
      return;
    }
  } else {
    deal_decisions_seen_.emplace(decision.deal_id, msg);
    callbacks_.record_evidence(evidence_kind::kDealDecisionReceived, body);
  }

  for (const DealLeg& leg : decision.legs) {
    if (leg.object != object_) continue;
    const std::string label = leg.proposed.label();
    messages_.add(label, {"received", "deal.decision", from.str(), body});
    if (decision.verdict == DealDecision::Verdict::kCommit) {
      // The normal decide (authenticator reveal) follows and installs;
      // the artifact is on record, nothing else to do.
      continue;
    }
    auto it = responder_runs_.find(label);
    if (it == responder_runs_.end()) continue;  // not parked / already closed
    if (it->second.propose.proposal.proposer != from) {
      record_violation("deal abort for a run proposed by another party",
                       from);
      continue;
    }
    hit_crash_point("deal-abort-recv.pre-journal");
    ResponderRun run = std::move(it->second);
    responder_runs_.erase(it);
    if (accept_lock_ == label) accept_lock_.reset();
    journal_run_closed(walrec::kResponderClosed, label);
    hit_crash_point("deal-abort-recv.journaled");
    CoordEvent event;
    event.kind = CoordEvent::Kind::kStateVetoed;
    event.object = object_;
    event.party = from;
    event.sequence = leg.proposed.sequence;
    event.detail = "deal aborted: " + decision.diagnostic;
    impl_.coord_callback(event);
    if (callbacks_.notify) callbacks_.notify(event);
    drain_deferred_membership();
  }
}

bool Replica::maybe_resend_deal_decision(const std::string& label,
                                         const PartyId& to) {
  if (!journaling()) return false;
  for (const auto& stored : messages_.run(label)) {
    if (stored.direction == "sent" && stored.kind == "deal.decision") {
      record_anomaly("re-sent deal decision of closed run " + label, to);
      send_envelope(to, MsgType::kDealDecision, stored.payload);
      return true;
    }
  }
  return false;
}

std::optional<Bytes> Replica::derive_agreed_state(ResponderRun& run) {
  const Proposal& prop = run.propose.proposal;
  if (!prop.is_update) {
    if (crypto::Sha256::hash(run.propose.payload) ==
        prop.proposed.state_hash) {
      return run.propose.payload;
    }
    return std::nullopt;
  }
  // Update variant: apply the delta to a scratch copy of the agreed state.
  Bytes snapshot = impl_.get_state();
  try {
    impl_.apply_state(agreed_state_);
    impl_.apply_update(run.propose.payload);
    Bytes result = impl_.get_state();
    impl_.apply_state(snapshot);
    if (crypto::Sha256::hash(result) == prop.proposed.state_hash) {
      return result;
    }
  } catch (const std::exception&) {
    impl_.apply_state(snapshot);
  }
  return std::nullopt;
}

}  // namespace b2b::core
