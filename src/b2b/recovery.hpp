// Write-ahead-journal record taxonomy and the crash-injection signal.
//
// The Coordinator journals everything it needs to survive a crash (§3:
// "persistence of both validated object state and of the information
// required to reach validation decisions") as typed records in a
// store::Journal. This header names the record types — shared between the
// journal writers in replica.cpp / coordinator.cpp and the replay loop in
// Coordinator — and defines the exception-like signal an armed crash
// point raises.
//
// Record payload layout (after the type byte the Journal frames):
//   kPartyKey          str(party)  blob(RsaPublicKey::encode)
//   kEvidence          str(kind)   blob(framed payload)  u64(time_micros)
//   kCheckpoint        str(object) u64(seq) blob(tuple) blob(state) u64(time)
//   kMessage           str(label)  str(direction) str(kind) str(peer)
//                      blob(payload)
//   kSnapshot          str(object) blob(ReplicaSnapshot::encode)
//   kProposerRun       str(object) blob(Replica::ProposerRunRecord::encode)
//   kResponseReceived  str(object) blob(RespondMsg::encode)
//   kDecideSent        str(object) blob(DecideMsg::encode)
//   kProposerClosed    str(object) str(run label)
//   kResponderRun      str(object) blob(Replica::ResponderRunRecord::encode)
//   kDecideDelivered   str(object) blob(DecideMsg::encode)
//   kResponderClosed   str(object) str(run label)
//
// Membership runs (§4.5 connect/disconnect/evict) mirror the state-run
// taxonomy; a membership run is identified by its proposal's
// new_group.label():
//   kSponsorRun            str(object) blob(SponsorRunRecord::encode)
//   kMembershipResponse    str(object) blob(MembershipRespondMsg::encode)
//   kMembershipDecideSent  str(object) blob(MembershipDecideMsg::encode)
//   kSponsorClosed         str(object) str(run label)
//   kMembershipResponderRun str(object)
//                          blob(MembershipResponderRunRecord::encode)
//   kMembershipDecideDelivered str(object) blob(MembershipDecideMsg::encode)
//   kMembershipResponderClosed str(object) str(run label)
//   kSubjectRequest        str(object) blob(SubjectRequestRecord::encode)
//   kSubjectClosed         str(object) str(request nonce)
//
// TTP-certified termination (§7): the submission is journaled before the
// request goes to the arbiter (so a recovering party re-fetches the
// cached verdict instead of forgetting it asked), and the verdict is
// journaled before the runs it concludes are closed:
//   kTerminationSubmitted  str(object) str(run label) u8(as_proposer)
//   kVerdictDelivered      str(object) blob(TerminationVerdict::encode)
//
// Deal subsystem (multi-object atomic coordination, DESIGN.md §12). The
// deal layer journals at the COORDINATOR level (no object prefix — the
// deal spans objects) except for the two per-replica facts:
//   kDealOpen              blob(DealEnlistMsg::encode)   [coordinator]
//   kDealDecided           blob(DealDecisionMsg::encode) [coordinator]
//   kDealClosed            str(deal id)                  [coordinator]
//   kDealTtpSubmitted      str(deal id)                  [coordinator]
//   kDealVerdictDelivered  blob(signed DealTerminationVerdict) [coordinator]
//   kDealStaged            str(object) str(run label) str(deal id)
//   kDealEnlisted          str(object) blob(DealEnlistMsg::encode)
//
// Pipelined batches (DESIGN.md §13) mirror the state-run taxonomy: the
// batch proposer journals its whole run (items, ALL per-item
// authenticators, recipients) before the propose leaves, the batch
// decide before it is sent, and a responder journals the validated batch
// (per-item scratch states included) before its single signed response
// leaves. Responses reuse kResponseReceived; closes reuse
// kProposerClosed / kResponderClosed (replay routes on the label).
//   kBatchProposerRun      str(object) blob(BatchProposerRunRecord::encode)
//   kBatchResponderRun     str(object) blob(BatchResponderRunRecord::encode)
//   kBatchDecideSent       str(object) blob(BatchDecideMsg::encode)
//   kBatchDecideDelivered  str(object) blob(BatchDecideMsg::encode)
//
// Append ordering under sharding (DESIGN.md §9): all shards feed ONE
// journal stream, serialised by the coordinator's journal mutex, so
// records from concurrent objects interleave but each object's records
// stay in program order (replay keys every record by its object/label).
// kEvidence is stricter: the evidence mutex holds timestamping, the
// journal append and the in-memory chain append as one critical section,
// so the hash chain's link order is exactly the journal's record order —
// replay recomputes and re-verifies the chain in append order and would
// reject any divergence.
#pragma once

#include <cstdint>

namespace b2b::core {

namespace walrec {
// Type 0 is store::Journal::kIncarnationMarker (journal-internal).
inline constexpr std::uint8_t kPartyKey = 1;
inline constexpr std::uint8_t kEvidence = 2;
inline constexpr std::uint8_t kCheckpoint = 3;
inline constexpr std::uint8_t kMessage = 4;
inline constexpr std::uint8_t kSnapshot = 5;
inline constexpr std::uint8_t kProposerRun = 6;
inline constexpr std::uint8_t kResponseReceived = 7;
inline constexpr std::uint8_t kDecideSent = 8;
inline constexpr std::uint8_t kProposerClosed = 9;
inline constexpr std::uint8_t kResponderRun = 10;
inline constexpr std::uint8_t kDecideDelivered = 11;
inline constexpr std::uint8_t kResponderClosed = 12;
inline constexpr std::uint8_t kSponsorRun = 13;
inline constexpr std::uint8_t kMembershipResponse = 14;
inline constexpr std::uint8_t kMembershipDecideSent = 15;
inline constexpr std::uint8_t kSponsorClosed = 16;
inline constexpr std::uint8_t kMembershipResponderRun = 17;
inline constexpr std::uint8_t kMembershipDecideDelivered = 18;
inline constexpr std::uint8_t kMembershipResponderClosed = 19;
inline constexpr std::uint8_t kSubjectRequest = 20;
inline constexpr std::uint8_t kSubjectClosed = 21;
inline constexpr std::uint8_t kTerminationSubmitted = 22;
inline constexpr std::uint8_t kVerdictDelivered = 23;
// Deal subsystem (DESIGN.md §12). 24–28 are coordinator-level (replayed in
// Coordinator::replay_journal before the object-scoped default branch);
// 29–30 are object-scoped.
inline constexpr std::uint8_t kDealOpen = 24;
inline constexpr std::uint8_t kDealDecided = 25;
inline constexpr std::uint8_t kDealClosed = 26;
inline constexpr std::uint8_t kDealTtpSubmitted = 27;
inline constexpr std::uint8_t kDealVerdictDelivered = 28;
inline constexpr std::uint8_t kDealStaged = 29;
inline constexpr std::uint8_t kDealEnlisted = 30;
// Pipelined batches (DESIGN.md §13), object-scoped.
inline constexpr std::uint8_t kBatchProposerRun = 31;
inline constexpr std::uint8_t kBatchResponderRun = 32;
inline constexpr std::uint8_t kBatchDecideSent = 33;
inline constexpr std::uint8_t kBatchDecideDelivered = 34;
}  // namespace walrec

/// Raised by an armed crash point to kill a coordinator mid-operation.
/// Deliberately NOT derived from std::exception: the protocol layer
/// catches std::exception around application callbacks (update
/// validation), and a simulated crash must never be swallowed there — it
/// has to unwind all the way to the coordinator entry point, which marks
/// the coordinator crashed and goes silent.
struct SimulatedCrash {
  const char* point;
};

}  // namespace b2b::core
