#include "b2b/messages.hpp"

#include "common/error.hpp"

namespace b2b::core {

namespace {

/// Domain-separation tags so a signature over one message kind can never
/// be replayed as a signature over another.
constexpr std::uint8_t kTagProposal = 0x01;
constexpr std::uint8_t kTagResponse = 0x02;
constexpr std::uint8_t kTagMembershipRequest = 0x03;
constexpr std::uint8_t kTagMembershipProposal = 0x04;
constexpr std::uint8_t kTagMembershipResponse = 0x05;
constexpr std::uint8_t kTagConnectWelcome = 0x06;
constexpr std::uint8_t kTagConnectReject = 0x07;
constexpr std::uint8_t kTagBatchProposal = 0x08;

void encode_party_list(wire::Encoder& enc, const std::vector<PartyId>& list) {
  enc.varint(list.size());
  for (const auto& p : list) enc.str(p.str());
}

std::vector<PartyId> decode_party_list(wire::Decoder& dec) {
  std::uint64_t n = dec.varint();
  std::vector<PartyId> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.emplace_back(dec.str());
  return out;
}

}  // namespace

// --------------------------------------------------------------------------
// Envelope
// --------------------------------------------------------------------------

Bytes Envelope::encode() const {
  wire::Encoder enc;
  enc.u8(static_cast<std::uint8_t>(type)).str(object.str()).blob(body);
  return std::move(enc).take();
}

Envelope Envelope::decode(BytesView data) {
  wire::Decoder dec{data};
  Envelope env;
  env.type = static_cast<MsgType>(dec.u8());
  env.object = ObjectId{dec.str()};
  env.body = dec.blob();
  dec.expect_done();
  return env;
}

// --------------------------------------------------------------------------
// Proposal / ProposeMsg
// --------------------------------------------------------------------------

void Proposal::encode_into(wire::Encoder& enc) const {
  enc.str(proposer.str()).str(object.str());
  group.encode_into(enc);
  agreed.encode_into(enc);
  proposed.encode_into(enc);
  enc.boolean(is_update).raw(crypto::digest_bytes(payload_hash));
}

Proposal Proposal::decode_from(wire::Decoder& dec) {
  Proposal p;
  p.proposer = PartyId{dec.str()};
  p.object = ObjectId{dec.str()};
  p.group = GroupTuple::decode_from(dec);
  p.agreed = StateTuple::decode_from(dec);
  p.proposed = StateTuple::decode_from(dec);
  p.is_update = dec.boolean();
  p.payload_hash = crypto::digest_from_bytes(dec.raw(32));
  return p;
}

Bytes Proposal::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagProposal);
  encode_into(enc);
  return std::move(enc).take();
}

Bytes ProposeMsg::encode() const {
  wire::Encoder enc;
  proposal.encode_into(enc);
  enc.blob(payload).blob(signature);
  return std::move(enc).take();
}

ProposeMsg ProposeMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  ProposeMsg msg;
  msg.proposal = Proposal::decode_from(dec);
  msg.payload = dec.blob();
  msg.signature = dec.blob();
  dec.expect_done();
  return msg;
}

// --------------------------------------------------------------------------
// Response / RespondMsg
// --------------------------------------------------------------------------

void Response::encode_into(wire::Encoder& enc) const {
  enc.str(responder.str()).str(object.str());
  proposed.encode_into(enc);
  agreed_view.encode_into(enc);
  current_view.encode_into(enc);
  group_view.encode_into(enc);
  enc.raw(crypto::digest_bytes(payload_integrity));
  decision.encode_into(enc);
}

Response Response::decode_from(wire::Decoder& dec) {
  Response r;
  r.responder = PartyId{dec.str()};
  r.object = ObjectId{dec.str()};
  r.proposed = StateTuple::decode_from(dec);
  r.agreed_view = StateTuple::decode_from(dec);
  r.current_view = StateTuple::decode_from(dec);
  r.group_view = GroupTuple::decode_from(dec);
  r.payload_integrity = crypto::digest_from_bytes(dec.raw(32));
  r.decision = Decision::decode_from(dec);
  return r;
}

Bytes Response::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagResponse);
  encode_into(enc);
  return std::move(enc).take();
}

void RespondMsg::encode_into(wire::Encoder& enc) const {
  response.encode_into(enc);
  enc.blob(signature);
}

RespondMsg RespondMsg::decode_from(wire::Decoder& dec) {
  RespondMsg msg;
  msg.response = Response::decode_from(dec);
  msg.signature = dec.blob();
  return msg;
}

Bytes RespondMsg::encode() const {
  wire::Encoder enc;
  encode_into(enc);
  return std::move(enc).take();
}

RespondMsg RespondMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  RespondMsg msg = decode_from(dec);
  dec.expect_done();
  return msg;
}

// --------------------------------------------------------------------------
// DecideMsg
// --------------------------------------------------------------------------

Bytes DecideMsg::encode() const {
  wire::Encoder enc;
  enc.str(proposer.str()).str(object.str());
  proposed.encode_into(enc);
  enc.varint(responses.size());
  for (const auto& r : responses) r.encode_into(enc);
  enc.blob(authenticator);
  return std::move(enc).take();
}

DecideMsg DecideMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  DecideMsg msg;
  msg.proposer = PartyId{dec.str()};
  msg.object = ObjectId{dec.str()};
  msg.proposed = StateTuple::decode_from(dec);
  std::uint64_t n = dec.varint();
  msg.responses.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    msg.responses.push_back(RespondMsg::decode_from(dec));
  }
  msg.authenticator = dec.blob();
  dec.expect_done();
  return msg;
}

// --------------------------------------------------------------------------
// Pipelined batches (DESIGN.md §13)
// --------------------------------------------------------------------------

void BatchItem::encode_into(wire::Encoder& enc) const {
  enc.boolean(is_update).blob(payload);
  proposed.encode_into(enc);
}

BatchItem BatchItem::decode_from(wire::Decoder& dec) {
  BatchItem item;
  item.is_update = dec.boolean();
  item.payload = dec.blob();
  item.proposed = StateTuple::decode_from(dec);
  return item;
}

Bytes BatchItem::encode() const {
  wire::Encoder enc;
  encode_into(enc);
  return std::move(enc).take();
}

crypto::Digest batch_chain_genesis(const ObjectId& object,
                                   const StateTuple& agreed) {
  wire::Encoder enc;
  enc.str("b2b.batch.genesis").str(object.str());
  agreed.encode_into(enc);
  return crypto::Sha256::hash(std::move(enc).take());
}

crypto::Digest batch_chain_extend(const crypto::Digest& head,
                                  const BatchItem& item) {
  crypto::Sha256 hasher;
  hasher.update(crypto::digest_bytes(head));
  hasher.update(crypto::digest_bytes(crypto::Sha256::hash(item.encode())));
  return hasher.finish();
}

crypto::Digest batch_chain_head(const ObjectId& object,
                                const StateTuple& agreed,
                                const std::vector<BatchItem>& items) {
  crypto::Digest head = batch_chain_genesis(object, agreed);
  for (const BatchItem& item : items) head = batch_chain_extend(head, item);
  return head;
}

Bytes batch_proposal_signed_bytes(const Proposal& proposal) {
  wire::Encoder enc;
  enc.u8(kTagBatchProposal);
  proposal.encode_into(enc);
  return std::move(enc).take();
}

Bytes BatchProposeMsg::encode() const {
  wire::Encoder enc;
  proposal.encode_into(enc);
  enc.varint(items.size());
  for (const auto& item : items) item.encode_into(enc);
  enc.blob(signature);
  return std::move(enc).take();
}

BatchProposeMsg BatchProposeMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  BatchProposeMsg msg;
  msg.proposal = Proposal::decode_from(dec);
  std::uint64_t n = dec.varint();
  msg.items.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    msg.items.push_back(BatchItem::decode_from(dec));
  }
  msg.signature = dec.blob();
  dec.expect_done();
  return msg;
}

Bytes BatchDecideMsg::encode() const {
  wire::Encoder enc;
  enc.str(proposer.str()).str(object.str());
  proposed.encode_into(enc);
  enc.varint(responses.size());
  for (const auto& r : responses) r.encode_into(enc);
  enc.varint(authenticators.size());
  for (const auto& a : authenticators) enc.blob(a);
  return std::move(enc).take();
}

BatchDecideMsg BatchDecideMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  BatchDecideMsg msg;
  msg.proposer = PartyId{dec.str()};
  msg.object = ObjectId{dec.str()};
  msg.proposed = StateTuple::decode_from(dec);
  std::uint64_t n = dec.varint();
  msg.responses.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    msg.responses.push_back(RespondMsg::decode_from(dec));
  }
  std::uint64_t k = dec.varint();
  msg.authenticators.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) {
    msg.authenticators.push_back(dec.blob());
  }
  dec.expect_done();
  return msg;
}

// --------------------------------------------------------------------------
// MembershipRequest
// --------------------------------------------------------------------------

void MembershipRequest::encode_into(wire::Encoder& enc) const {
  enc.u8(static_cast<std::uint8_t>(kind)).str(sender.str()).str(object.str());
  encode_party_list(enc, subjects);
  enc.blob(subject_public_key).blob(request_nonce);
}

MembershipRequest MembershipRequest::decode_from(wire::Decoder& dec) {
  MembershipRequest r;
  r.kind = static_cast<MembershipKind>(dec.u8());
  r.sender = PartyId{dec.str()};
  r.object = ObjectId{dec.str()};
  r.subjects = decode_party_list(dec);
  r.subject_public_key = dec.blob();
  r.request_nonce = dec.blob();
  return r;
}

Bytes MembershipRequest::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagMembershipRequest);
  encode_into(enc);
  return std::move(enc).take();
}

Bytes MembershipRequest::encode() const {
  wire::Encoder enc;
  encode_into(enc);
  return std::move(enc).take();
}

MembershipRequest MembershipRequest::decode(BytesView data) {
  wire::Decoder dec{data};
  MembershipRequest r = decode_from(dec);
  dec.expect_done();
  return r;
}

// --------------------------------------------------------------------------
// MembershipProposal / MembershipProposeMsg
// --------------------------------------------------------------------------

namespace {

void encode_membership_proposal(wire::Encoder& enc,
                                const MembershipProposal& p) {
  enc.str(p.sponsor.str()).str(p.object.str());
  p.request.encode_into(enc);
  enc.blob(p.request_signature);
  p.current_group.encode_into(enc);
  p.new_group.encode_into(enc);
  p.agreed.encode_into(enc);
  encode_party_list(enc, p.new_members);
}

MembershipProposal decode_membership_proposal(wire::Decoder& dec) {
  MembershipProposal p;
  p.sponsor = PartyId{dec.str()};
  p.object = ObjectId{dec.str()};
  p.request = MembershipRequest::decode_from(dec);
  p.request_signature = dec.blob();
  p.current_group = GroupTuple::decode_from(dec);
  p.new_group = GroupTuple::decode_from(dec);
  p.agreed = StateTuple::decode_from(dec);
  p.new_members = decode_party_list(dec);
  return p;
}

}  // namespace

Bytes MembershipProposal::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagMembershipProposal);
  encode_membership_proposal(enc, *this);
  return std::move(enc).take();
}

Bytes MembershipProposeMsg::encode() const {
  wire::Encoder enc;
  encode_membership_proposal(enc, proposal);
  enc.blob(signature);
  return std::move(enc).take();
}

MembershipProposeMsg MembershipProposeMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  MembershipProposeMsg msg;
  msg.proposal = decode_membership_proposal(dec);
  msg.signature = dec.blob();
  dec.expect_done();
  return msg;
}

// --------------------------------------------------------------------------
// MembershipResponse / MembershipRespondMsg
// --------------------------------------------------------------------------

void MembershipResponse::encode_into(wire::Encoder& enc) const {
  enc.str(responder.str()).str(object.str());
  new_group.encode_into(enc);
  group_view.encode_into(enc);
  agreed_view.encode_into(enc);
  decision.encode_into(enc);
}

MembershipResponse MembershipResponse::decode_from(wire::Decoder& dec) {
  MembershipResponse r;
  r.responder = PartyId{dec.str()};
  r.object = ObjectId{dec.str()};
  r.new_group = GroupTuple::decode_from(dec);
  r.group_view = GroupTuple::decode_from(dec);
  r.agreed_view = StateTuple::decode_from(dec);
  r.decision = Decision::decode_from(dec);
  return r;
}

Bytes MembershipResponse::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagMembershipResponse);
  encode_into(enc);
  return std::move(enc).take();
}

void MembershipRespondMsg::encode_into(wire::Encoder& enc) const {
  response.encode_into(enc);
  enc.blob(signature);
}

MembershipRespondMsg MembershipRespondMsg::decode_from(wire::Decoder& dec) {
  MembershipRespondMsg msg;
  msg.response = MembershipResponse::decode_from(dec);
  msg.signature = dec.blob();
  return msg;
}

Bytes MembershipRespondMsg::encode() const {
  wire::Encoder enc;
  encode_into(enc);
  return std::move(enc).take();
}

MembershipRespondMsg MembershipRespondMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  MembershipRespondMsg msg = decode_from(dec);
  dec.expect_done();
  return msg;
}

// --------------------------------------------------------------------------
// MembershipDecideMsg
// --------------------------------------------------------------------------

Bytes MembershipDecideMsg::encode() const {
  wire::Encoder enc;
  enc.str(sponsor.str()).str(object.str());
  new_group.encode_into(enc);
  enc.varint(responses.size());
  for (const auto& r : responses) r.encode_into(enc);
  enc.blob(authenticator);
  return std::move(enc).take();
}

MembershipDecideMsg MembershipDecideMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  MembershipDecideMsg msg;
  msg.sponsor = PartyId{dec.str()};
  msg.object = ObjectId{dec.str()};
  msg.new_group = GroupTuple::decode_from(dec);
  std::uint64_t n = dec.varint();
  msg.responses.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    msg.responses.push_back(MembershipRespondMsg::decode_from(dec));
  }
  msg.authenticator = dec.blob();
  dec.expect_done();
  return msg;
}

// --------------------------------------------------------------------------
// ConnectWelcomeMsg / ConnectRejectMsg / DisconnectConfirmMsg
// --------------------------------------------------------------------------

Bytes ConnectWelcomeMsg::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagConnectWelcome).str(sponsor.str()).str(object.str());
  new_group.encode_into(enc);
  encode_party_list(enc, members);
  enc.varint(member_public_keys.size());
  for (const auto& key : member_public_keys) enc.blob(key);
  agreed.encode_into(enc);
  enc.raw(crypto::digest_bytes(crypto::Sha256::hash(agreed_state)));
  return std::move(enc).take();
}

Bytes ConnectWelcomeMsg::encode() const {
  wire::Encoder enc;
  enc.str(sponsor.str()).str(object.str());
  new_group.encode_into(enc);
  encode_party_list(enc, members);
  enc.varint(member_public_keys.size());
  for (const auto& key : member_public_keys) enc.blob(key);
  agreed.encode_into(enc);
  enc.blob(agreed_state);
  enc.varint(responses.size());
  for (const auto& r : responses) r.encode_into(enc);
  enc.blob(authenticator).blob(sponsor_signature);
  return std::move(enc).take();
}

ConnectWelcomeMsg ConnectWelcomeMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  ConnectWelcomeMsg msg;
  msg.sponsor = PartyId{dec.str()};
  msg.object = ObjectId{dec.str()};
  msg.new_group = GroupTuple::decode_from(dec);
  msg.members = decode_party_list(dec);
  std::uint64_t keys = dec.varint();
  msg.member_public_keys.reserve(keys);
  for (std::uint64_t i = 0; i < keys; ++i) {
    msg.member_public_keys.push_back(dec.blob());
  }
  msg.agreed = StateTuple::decode_from(dec);
  msg.agreed_state = dec.blob();
  std::uint64_t n = dec.varint();
  msg.responses.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    msg.responses.push_back(MembershipRespondMsg::decode_from(dec));
  }
  msg.authenticator = dec.blob();
  msg.sponsor_signature = dec.blob();
  dec.expect_done();
  return msg;
}

Bytes ConnectRejectMsg::signed_bytes() const {
  wire::Encoder enc;
  enc.u8(kTagConnectReject).str(sponsor.str()).str(object.str());
  enc.blob(request_nonce);
  return std::move(enc).take();
}

Bytes ConnectRejectMsg::encode() const {
  wire::Encoder enc;
  enc.str(sponsor.str()).str(object.str()).blob(request_nonce).blob(signature);
  return std::move(enc).take();
}

ConnectRejectMsg ConnectRejectMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  ConnectRejectMsg msg;
  msg.sponsor = PartyId{dec.str()};
  msg.object = ObjectId{dec.str()};
  msg.request_nonce = dec.blob();
  msg.signature = dec.blob();
  dec.expect_done();
  return msg;
}

Bytes DisconnectConfirmMsg::encode() const {
  wire::Encoder enc;
  enc.str(sponsor.str()).str(object.str());
  new_group.encode_into(enc);
  enc.varint(responses.size());
  for (const auto& r : responses) r.encode_into(enc);
  enc.blob(authenticator);
  return std::move(enc).take();
}

DisconnectConfirmMsg DisconnectConfirmMsg::decode(BytesView data) {
  wire::Decoder dec{data};
  DisconnectConfirmMsg msg;
  msg.sponsor = PartyId{dec.str()};
  msg.object = ObjectId{dec.str()};
  msg.new_group = GroupTuple::decode_from(dec);
  std::uint64_t n = dec.varint();
  msg.responses.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    msg.responses.push_back(MembershipRespondMsg::decode_from(dec));
  }
  msg.authenticator = dec.blob();
  dec.expect_done();
  return msg;
}

}  // namespace b2b::core
