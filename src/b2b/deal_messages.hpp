// Wire messages for the deal subsystem (DESIGN.md §12).
//
// A *deal* is an atomic state change spanning several objects, each with
// its own (possibly disjoint, mutually distrusting) membership. The deal
// initiator drives one normal signed propose/respond cycle per object —
// the *legs* — but parks the completed response sets undecided, then
// replicates one signed commit/abort decision covering every leg. The
// messages here are the deal-level envelope bodies; the per-leg traffic is
// the unchanged §4.3 propose/respond/decide.
//
// Like every assertion-carrying message in messages.hpp, each deal message
// splits into a signed core (signed_bytes(), recomputed by verifiers from
// the decoded fields) and the enclosing message carrying the signature.
// The signed cores are what make defection provable: a participant holding
// a DealEnlist proving it was asked to prepare leg L of deal D, plus two
// DealDecisions for D with different verdicts, has non-repudiable evidence
// of initiator equivocation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "b2b/termination.hpp"
#include "b2b/tuples.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace b2b::core {

/// One leg of a deal: which object, and the proposed tuple (T_prop) of the
/// per-object run that carries the leg's state change. proposed.label()
/// is the run label — the join key between deal-level and run-level
/// evidence.
struct DealLeg {
  ObjectId object;
  StateTuple proposed;

  void encode_into(wire::Encoder& enc) const;
  static DealLeg decode_from(wire::Decoder& dec);

  friend bool operator==(const DealLeg&, const DealLeg&) = default;
};

/// The signed core of a deal announcement: the initiator binds the deal id
/// to the *complete* leg set, so no participant can be shown a different
/// view of what the deal covers. Sent per-object alongside the leg's
/// propose; every recipient of any leg learns every leg.
struct DealProposal {
  std::string deal_id;
  PartyId initiator;
  std::vector<DealLeg> legs;
  std::uint64_t deadline_micros = 0;  // 0: no deal-level deadline

  Bytes signed_bytes() const;
  void encode_into(wire::Encoder& enc) const;
  static DealProposal decode_from(wire::Decoder& dec);

  friend bool operator==(const DealProposal&, const DealProposal&) = default;
};

/// kDealEnlist: initiator -> every leg recipient.
struct DealEnlistMsg {
  DealProposal proposal;
  Bytes signature;  // initiator's, over proposal.signed_bytes()

  Bytes encode() const;
  static DealEnlistMsg decode(BytesView data);

  friend bool operator==(const DealEnlistMsg&, const DealEnlistMsg&) = default;
};

/// The signed core of the deal outcome. Exactly one verdict per deal id is
/// honest behaviour; two differently-signed cores for the same id are
/// proof of equivocation, blamable on the initiator alone.
struct DealDecision {
  enum class Verdict : std::uint8_t { kCommit = 1, kAbort = 2 };

  std::string deal_id;
  PartyId initiator;
  Verdict verdict = Verdict::kAbort;
  std::vector<DealLeg> legs;  // echo of the enlisted leg set
  std::string diagnostic;     // why aborted (empty on commit)

  Bytes signed_bytes() const;
  void encode_into(wire::Encoder& enc) const;
  static DealDecision decode_from(wire::Decoder& dec);

  friend bool operator==(const DealDecision&, const DealDecision&) = default;
};

/// kDealDecision: initiator -> every leg recipient. On commit the normal
/// (unsigned, authenticator-revealing) per-leg DecideMsg follows and does
/// the installing; this message is the cross-leg non-repudiation artifact.
/// On abort it is also the operative instruction: release the parked run.
struct DealDecisionMsg {
  DealDecision decision;
  Bytes signature;  // initiator's, over decision.signed_bytes()

  Bytes encode() const;
  static DealDecisionMsg decode(BytesView data);

  friend bool operator==(const DealDecisionMsg&,
                         const DealDecisionMsg&) = default;
};

/// kDealTerminationRequest: initiator -> TTP. Atomic commit registration:
/// the bundled per-leg transcripts are certified all-or-nothing under the
/// TTP's single mutex, so a commit can never split against a concurrent
/// per-run escape (§7) by a parked participant — the TTP writes the deal
/// verdict AND a per-run verdict for every leg in one critical section.
/// The outer signature covers every embedded leg transcript; the inner
/// TerminationRequests carry empty signatures of their own.
struct DealTerminationRequest {
  std::string deal_id;
  PartyId requester;  // the deal initiator (proposer of every leg)
  std::vector<TerminationRequest> legs;

  Bytes signed_bytes() const;
  Bytes encode_with_signature(const Bytes& signature) const;
  static DealTerminationRequest decode_fields(BytesView data, Bytes* signature);
};

/// kDealTerminationVerdict: TTP -> initiator. verdict 1 = commit, 2 =
/// abort; leg_verdicts are the per-leg signed TerminationVerdict bodies
/// (encode_with_signature form) the TTP cached, usable by anyone through
/// the existing per-run verdict path.
struct DealTerminationVerdict {
  std::string deal_id;
  std::uint8_t verdict = 2;
  std::vector<Bytes> leg_verdicts;
  std::uint64_t time_micros = 0;

  Bytes signed_bytes() const;
  Bytes encode_with_signature(const Bytes& signature) const;
  static DealTerminationVerdict decode_fields(BytesView data, Bytes* signature);
};

}  // namespace b2b::core
