// Deal subsystem: atomic cross-object coordination (DESIGN.md §12).
//
// A *deal* binds state-coordination runs on several B2B objects into one
// all-or-nothing unit: either every leg's proposed state is installed by
// its group, or none is. The paper's per-object protocol already yields
// signed, non-repudiable evidence for each run; the deal layer adds a
// signed cross-leg proposal (the enlist), a signed cross-leg verdict (the
// decision), and — because organisations are mutually distrusting — a
// TTP-arbitrated escape hatch reusing the §7 termination machinery so
// that a defecting initiator cannot strand honest participants.
//
// Phases, driven by the initiator's DealCoordinator:
//
//   1. stage    — a proposer run is created and journaled on every leg
//                 object, but nothing is sent (the kDealStaged record is
//                 written *before* the proposer-run record so a crash
//                 between them leaves an inert marker, never a runnable
//                 standalone run).
//   2. open     — the signed DealEnlistMsg is journaled (kDealOpen) and
//                 each leg's propose + enlist is sent; participants park
//                 their responder runs undecided.
//   3. prepare  — each leg's response set completes; the run parks
//                 (Replica::DealHooks::on_leg_prepared) instead of
//                 auto-deciding.
//   4. decide   — all legs prepared+accepted => signed commit decision;
//                 any veto or deadline => signed abort decision. The
//                 decision is journaled (kDealDecided) before any leg
//                 acts on it.
//   5. replicate— commit: each leg's normal decide (authenticator
//                 reveal) runs, with the DealDecisionMsg broadcast as
//                 the cross-leg non-repudiation artifact; abort: each
//                 leg rolls back and the abort decision releases parked
//                 participants.
//
// Escape hatches: with a TTP configured, a *commit* decision is first
// registered atomically with the TTP (kDealTerminationRequest carrying
// every leg's transcript). The TTP certifies commit iff every leg's
// response set is complete, valid and unanimous, writing its per-run
// verdict cache for all legs in one critical section — so a parked
// participant that independently escapes via its per-run §7 deadline
// always receives an answer consistent with the deal outcome. Aborts
// never need the TTP: the signed abort decision (or a per-run certified
// abort) releases participants.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "b2b/deal_messages.hpp"
#include "b2b/replica.hpp"

namespace b2b::core {

class Coordinator;

/// Deal-layer journal state reconstructed by Coordinator::replay_journal
/// from the coordinator-scoped deal records (walrec 24-28).
struct RecoveredDealState {
  /// deal id -> encoded DealEnlistMsg (kDealOpen); erased by kDealClosed.
  std::map<std::string, Bytes> open;
  /// deal id -> encoded DealDecisionMsg (last kDealDecided wins: the TTP
  /// abort path journals a second, overriding decision).
  std::map<std::string, Bytes> decisions;
  /// deal ids whose TTP registration was journaled (kDealTtpSubmitted).
  std::set<std::string> ttp_submitted;
  /// deal id -> signed DealTerminationVerdict body (kDealVerdictDelivered).
  std::map<std::string, Bytes> ttp_verdicts;

  bool empty() const {
    return open.empty() && decisions.empty() && ttp_submitted.empty() &&
           ttp_verdicts.empty();
  }
};

/// Initiator-side driver for multi-object deals. One per Coordinator,
/// created by it; participants need no driver (their replicas park and
/// release runs via the message handlers in Replica).
///
/// Locking: `mutex_` is a leaf under the shard locks — the replica hooks
/// take it while holding their shard's mutex, so no DealCoordinator path
/// may enter a shard while holding `mutex_`. Shard work is always done
/// between unlocked sections on snapshots of deal state.
class DealCoordinator {
 public:
  /// One leg of a deal spec: the proposed payload/state for one object.
  struct LegSpec {
    ObjectId object;
    Bytes payload;    // update bytes (is_update) or ignored
    Bytes new_state;  // full proposed state
    bool is_update = true;
  };

  struct DealSpec {
    /// Optional explicit id; derived deterministically when empty.
    std::string deal_id;
    std::vector<LegSpec> legs;
    /// Relative deal deadline; 0 = none. Also stamped (as an absolute
    /// virtual time) into the signed proposal so participants can prove
    /// how long they were obliged to stay parked.
    std::uint64_t deadline_micros = 0;
  };

  /// TTP-arbitrated escape configuration (deal-level registration).
  struct TtpEscape {
    PartyId ttp;
    crypto::RsaPublicKey ttp_key;
  };

  struct Stats {
    std::uint64_t started = 0;
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t ttp_registrations = 0;
    std::uint64_t ttp_verdicts = 0;
  };

  explicit DealCoordinator(Coordinator& host);

  /// Route a commit decision through deal-level TTP registration before
  /// replication. Aborts never involve the TTP.
  void enable_ttp_escape(TtpEscape escape);

  /// Start a deal across `spec.legs` (distinct objects, all hosted by
  /// this coordinator, this party a member of each). Returns a handle
  /// that completes kAgreed (committed), kVetoed (aborted on a veto,
  /// with the vetoers) or kAborted (any other abort) once every leg has
  /// been driven to its final state.
  RunHandle start_deal(DealSpec spec);

  Stats stats() const;

  /// The signed decision for a deal this coordinator initiated, once one
  /// has been journaled (testing/verification).
  std::optional<DealDecisionMsg> decision_of(const std::string& deal_id) const;

  // -- wiring used by Coordinator ------------------------------------------

  /// Hooks to install on every registered replica.
  Replica::DealHooks make_hooks();

  /// Handle a kDealTerminationVerdict envelope (routed here before shard
  /// dispatch). Returns true if consumed.
  bool on_ttp_verdict(const PartyId& from, const Envelope& envelope);

  /// Resume deals from replayed journal state; called after every object
  /// has been registered and per-run resume has run. Also cancels orphan
  /// staged runs (staged, never opened). Returns handles for resumed
  /// deals.
  std::vector<RunHandle> resume(RecoveredDealState recovered);

 private:
  enum class Phase : std::uint8_t {
    kPreparing,    // legs staged + launched, responses arriving
    kDeciding,     // verdict chosen, decision not yet journaled/acted on
    kAwaitingTtp,  // commit registered with the TTP, awaiting verdict
    kReplicating,  // decision being driven into every leg
    kClosed,
  };

  struct Leg {
    ObjectId object;
    std::string label;  // staged run label (StateTuple::label())
    StateTuple proposed;
    RunHandle handle;  // per-leg run handle (parked until decision)
    std::size_t recipient_count = 0;
    bool prepared = false;
    bool accepted = false;
    std::vector<PartyId> vetoers;
  };

  struct Deal {
    std::string id;
    DealEnlistMsg enlist;
    std::vector<Leg> legs;
    RunHandle result;
    Phase phase = Phase::kPreparing;
    DealDecision::Verdict verdict = DealDecision::Verdict::kAbort;
    std::string diagnostic;
    std::optional<DealDecisionMsg> decision;
    Bytes ttp_request;  // encoded signed request, kept for re-send
    bool deadline_armed = false;
  };

  /// Run `fn` on the leg object's replica under its shard lock with
  /// simulated-crash containment. Returns false if the coordinator is
  /// (or becomes) crashed. Never call while holding mutex_.
  bool exec_on_object(const ObjectId& object,
                      const std::function<void(Replica&)>& fn);
  /// Throw SimulatedCrash if `point` is armed on the host.
  void hit_crash_point(const char* point);
  /// Append a coordinator-scoped deal record (+ fsync barrier).
  void journal_deal(std::uint8_t type, Bytes payload);
  /// Schedule `fn` on the host clock with anchor + crash containment.
  void schedule(std::uint64_t delay_micros, std::function<void()> fn);

  void on_leg_prepared(const ObjectId& object, const std::string& label,
                       bool all_accept, const std::vector<PartyId>& vetoers);
  void on_leg_deadline(const ObjectId& object, const std::string& label);
  void arm_deal_deadline(Deal& deal, std::uint64_t deadline_micros);

  /// Journal + act on the pending verdict (phase kDeciding). Either
  /// registers a commit with the TTP (-> kAwaitingTtp) or replicates
  /// directly.
  void decide_deal(const std::string& deal_id);
  /// Build, sign and send the deal-level TTP registration request.
  void register_with_ttp(const std::string& deal_id);
  /// Drive the journaled decision into every leg, then close the deal.
  void replicate_decision(const std::string& deal_id);
  void close_deal(const std::string& deal_id);
  void complete_handle(const RunHandle& handle, RunResult::Outcome outcome,
                       std::string diagnostic, std::vector<PartyId> vetoers,
                       const std::string& label);

  std::string derive_deal_id(const std::vector<LegSpec>& legs);

  Coordinator& host_;

  mutable std::mutex mutex_;
  std::map<std::string, Deal> deals_;          // by deal id
  std::map<std::string, std::string> leg_index_;  // leg label -> deal id
  std::optional<TtpEscape> escape_;
  std::uint64_t next_local_seq_ = 1;
  Stats stats_;
};

}  // namespace b2b::core
