// Non-repudiation evidence: kinds, transcripts and third-party verification.
//
// §4.3: the authenticated decision of the group on P_i's proposal is the
// full transcript {propose, all signed responses, decide-with-authenticator}.
// "Any party can compute the group's decision" from it. EvidenceVerifier is
// that computation, written so that it can be run by a party to the
// interaction *or* by an outside arbiter holding only the public keys —
// which is what the paper's extra-protocol dispute resolution needs.
//
// The verifier is deliberately paranoid: every signature is checked, every
// echoed tuple is compared, the revealed authenticator is checked against
// the committed hash, and the group decision is *computed* from the signed
// decisions (never read from an unsigned flag), so a dishonest party cannot
// misrepresent a vetoed state as valid or a valid state as vetoed (§4.1).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "b2b/messages.hpp"
#include "crypto/rsa.hpp"

namespace b2b::core {

/// Evidence-record kinds used in the local non-repudiation log.
namespace evidence_kind {
inline constexpr const char* kProposeSent = "propose.sent";
inline constexpr const char* kProposeReceived = "propose.recv";
inline constexpr const char* kRespondSent = "respond.sent";
inline constexpr const char* kRespondReceived = "respond.recv";
inline constexpr const char* kDecideSent = "decide.sent";
inline constexpr const char* kDecideReceived = "decide.recv";
inline constexpr const char* kStateInstalled = "state.installed";
inline constexpr const char* kStateRolledBack = "state.rolledback";
inline constexpr const char* kViolation = "violation";
inline constexpr const char* kMembershipRequest = "membership.request";
inline constexpr const char* kMembershipPropose = "membership.propose";
inline constexpr const char* kMembershipRespond = "membership.respond";
inline constexpr const char* kMembershipDecide = "membership.decide";
inline constexpr const char* kMembershipApplied = "membership.applied";
// Deal subsystem (DESIGN.md §12).
inline constexpr const char* kDealOpen = "deal.open";
inline constexpr const char* kDealEnlistReceived = "deal.enlist.recv";
inline constexpr const char* kDealPrepared = "deal.prepared";
inline constexpr const char* kDealDecision = "deal.decision";
inline constexpr const char* kDealDecisionReceived = "deal.decision.recv";
inline constexpr const char* kDealClosed = "deal.closed";
inline constexpr const char* kDealTtpRequest = "deal.ttp.request";
inline constexpr const char* kDealTtpVerdict = "deal.ttp.verdict";
// Pipelined batches (DESIGN.md §13). Responses ride under the standard
// respond.* kinds — a batch responder sends one ordinary signed response.
inline constexpr const char* kBatchProposeSent = "batch.propose.sent";
inline constexpr const char* kBatchProposeReceived = "batch.propose.recv";
inline constexpr const char* kBatchDecideSent = "batch.decide.sent";
inline constexpr const char* kBatchDecideReceived = "batch.decide.recv";
/// Periodic signed anchor over the evidence chain head (see
/// Arbiter::verify_anchored_spans).
inline constexpr const char* kEvidenceAnchor = "evidence.anchor";
}  // namespace evidence_kind

/// A signed anchor over the evidence-chain head (DESIGN.md §13). In
/// pipeline mode the coordinator periodically signs {index, record_hash}
/// of the newest evidence record and appends the anchor to the chain
/// itself, so an arbiter holding only the signer's public key can
/// validate a whole anchored span offline — one signature check plus the
/// (cheap) hash-chain walk, instead of trusting the unsigned chain.
struct EvidenceAnchor {
  /// Index of the covered (head) record — the anchor vouches for every
  /// record up to and including this one.
  std::uint64_t index = 0;
  /// That record's chain hash (EvidenceRecord::record_hash).
  crypto::Digest head_hash{};
  /// Signer's RSA signature over signed_bytes().
  Bytes signature;

  /// Domain-separated bytes the signature covers.
  Bytes signed_bytes() const;
  Bytes encode() const;
  static EvidenceAnchor decode(BytesView data);  // throws CodecError
};

/// Everything generated during one state-coordination run.
struct RunTranscript {
  ProposeMsg propose;
  std::vector<RespondMsg> responses;
  std::optional<DecideMsg> decide;
};

/// Outcome of third-party verification of a transcript.
struct VerifiedRun {
  /// True iff all signatures verify and all cross-message checks pass.
  bool evidence_intact = false;
  /// True iff evidence_intact, the decide message is present, and every
  /// recipient's signed decision is accept — i.e. the state is *valid* in
  /// the paper's sense.
  bool agreed = false;
  /// Parties whose signed decision was reject.
  std::vector<PartyId> vetoers;
  /// Human-readable description of every defect found.
  std::vector<std::string> violations;
};

class EvidenceVerifier {
 public:
  explicit EvidenceVerifier(std::map<PartyId, crypto::RsaPublicKey> keys);

  /// Verify a full state-coordination transcript. `expected_recipients`,
  /// when given, additionally checks that a response is present from every
  /// recipient (completeness of the decide aggregation).
  VerifiedRun verify_state_run(
      const RunTranscript& transcript,
      const std::vector<PartyId>* expected_recipients = nullptr) const;

  /// Verify a membership run (connect / evict / voluntary disconnect).
  VerifiedRun verify_membership_run(
      const MembershipProposeMsg& propose,
      const std::vector<MembershipRespondMsg>& responses,
      const Bytes* authenticator,
      const std::vector<PartyId>* expected_recipients = nullptr) const;

  /// Compute the unanimous-accept group decision over signed responses
  /// without verifying signatures (callers that already verified them).
  static bool unanimous(const std::vector<RespondMsg>& responses);

 private:
  bool check_signature(const PartyId& signer, BytesView message,
                       BytesView signature, std::vector<std::string>* out,
                       const std::string& what) const;

  std::map<PartyId, crypto::RsaPublicKey> keys_;
};

}  // namespace b2b::core
