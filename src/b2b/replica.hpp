// Replica: the per-object, per-party protocol engine.
//
// One Replica exists at each organisation for each shared object (the
// "physical realisation" of Figure 2b). It holds the local copy of the
// object, the party's view of the agreed state tuple T_agreed, the group
// tuple G and the ordered member list, and it runs both sides of the
// state coordination protocol (§4.3) and of the connection /
// disconnection protocols (§4.5).
//
// Safety posture: every check of §4.4 is enforced here. A message that
// fails signature or cross-message consistency checks produces a
// `violation` evidence record and never changes local state; a proposal
// that fails a semantic check produces a *signed reject response* so the
// proposer holds non-repudiable evidence of the veto. Invalid state is
// never installed (§4.1's fail-safe guarantee).
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "b2b/deal_messages.hpp"
#include "b2b/evidence.hpp"
#include "b2b/messages.hpp"
#include "b2b/object.hpp"
#include "b2b/tuples.hpp"
#include "crypto/rsa.hpp"
#include "net/runtime.hpp"
#include "store/checkpoint_store.hpp"
#include "store/message_store.hpp"

namespace b2b::core {

/// Completion state of one coordination run, shared with the caller.
/// `outcome` is atomic so an Executor on the threaded runtime can poll
/// done() from another thread; the completing replica writes the other
/// fields *before* storing the outcome, so whoever observes done() also
/// observes a consistent diagnostic/vetoers/sequence.
struct RunResult {
  enum class Outcome {
    kPending,  // run still active (§4.4: blocking is detectable, not fatal)
    kAgreed,   // unanimously agreed and installed
    kVetoed,   // rejected by at least one party; state rolled back
    kAborted,  // aborted locally before completion (e.g. busy, lost race)
  };

  std::atomic<Outcome> outcome{Outcome::kPending};
  std::string diagnostic;
  std::vector<PartyId> vetoers;
  std::uint64_t sequence = 0;
  std::string run_label;

  bool done() const { return outcome.load() != Outcome::kPending; }

  /// Invoked exactly once when the run completes (async mode plumbing).
  std::function<void(const RunResult&)> on_complete;
};

using RunHandle = std::shared_ptr<RunResult>;

/// Durable image of a replica's replicated state (§3: "persistence of
/// both validated object state and of the information required to reach
/// validation decisions"). Everything needed to resume participation
/// after a full process restart; volatile run state is deliberately
/// excluded (an interrupted run resumes via retransmission or is resolved
/// out of band).
struct ReplicaSnapshot {
  bool connected = false;
  std::vector<PartyId> members;
  GroupTuple group_tuple;
  StateTuple agreed_tuple;
  Bytes agreed_state;
  std::uint64_t last_seen_sequence = 0;
  std::vector<std::string> seen_run_labels;  // replay protection survives

  Bytes encode() const;
  static ReplicaSnapshot decode(BytesView data);  // throws CodecError

  friend bool operator==(const ReplicaSnapshot&,
                         const ReplicaSnapshot&) = default;
};

/// How the group's decision is computed from the signed responses (§7:
/// "automatic resolution ... by resorting to majority decision on state
/// changes"). Under kUnanimous (the paper's base protocol) any veto
/// invalidates. Under kMajority a state is installed when a strict
/// majority of the full group (the proposer counts as an implicit accept,
/// invariant 2) signed accept — individual vetoes are overridden but
/// remain on the non-repudiation record. All parties must be configured
/// identically; a full response set is still required, so this trades the
/// per-party veto for termination of *decisions*, not of message loss.
enum class DecisionRule : std::uint8_t {
  kUnanimous = 0,
  kMajority = 1,
};

/// Sponsor selection policy (§4.5.1). The default rotates responsibility
/// to the most recently joined member; footnote 2 of the paper describes
/// the alternative where the initial member sponsors every request unless
/// it is itself the subject. All parties must be configured identically.
enum class SponsorPolicy : std::uint8_t {
  kRotating = 0,
  kFixedInitial = 1,
};

/// Insertion-ordered set of membership-request nonces with a bounded
/// footprint — the membership analogue of net::DedupWindow. Nonces are
/// random, so there is no total order to watermark on; the eviction
/// watermark is FIFO insertion order instead: past the capacity the
/// oldest nonce is forgotten. A replayed request whose nonce has been
/// evicted is still rejected downstream by the membership state checks
/// (the subject is already a member / the evictee is already gone), so
/// eviction bounds memory without opening a replay window onto state.
class BoundedNonceSet {
 public:
  explicit BoundedNonceSet(std::size_t capacity = 256)
      : capacity_(capacity) {}

  /// False when the nonce is already present (the duplicate signal).
  bool insert(const std::string& nonce) {
    if (!set_.insert(nonce).second) return false;
    order_.push_back(nonce);
    while (set_.size() > capacity_ && !order_.empty()) {
      // The front may have been lazily erased; then this is a no-op and
      // the loop advances to the next-oldest entry.
      set_.erase(order_.front());
      order_.pop_front();
    }
    return true;
  }

  /// Lazy erase: the FIFO entry stays behind and is skipped on eviction.
  void erase(const std::string& nonce) { set_.erase(nonce); }
  bool contains(const std::string& nonce) const {
    return set_.contains(nonce);
  }
  std::size_t size() const { return set_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::set<std::string> set_;
  std::deque<std::string> order_;
};

/// One signature check in a bulk verification request (see
/// Replica::Callbacks::verify_many): resolve `signer`'s public key and
/// verify `signature` over `message`.
struct VerifyJob {
  PartyId signer;
  Bytes message;
  Bytes signature;
};

class Replica {
 public:
  /// Everything the replica needs from its hosting coordinator.
  struct Callbacks {
    /// Transmit an envelope to a peer (reliable, once-only).
    std::function<void(const PartyId& to, const Envelope&)> send;
    /// Virtual clock (microseconds).
    std::function<std::uint64_t()> now;
    /// Append (kind, payload) to the non-repudiation log (time-stamped by
    /// the coordinator).
    std::function<void(const std::string& kind, const Bytes& payload)>
        record_evidence;
    /// Look up a member's public key (nullptr if unknown).
    std::function<const crypto::RsaPublicKey*(const PartyId&)> key_of;
    /// Learn a newly admitted member's public key.
    std::function<void(const PartyId&, const crypto::RsaPublicKey&)> learn_key;
    /// Surface a protocol event (forwarded to coord_callback and observers).
    std::function<void(const CoordEvent&)> notify;
    /// Run `fn` after `delay_micros` of virtual time (deadline timers).
    std::function<void(std::uint64_t delay_micros, std::function<void()> fn)>
        schedule;
    /// Append one typed record (see recovery.hpp) to the hosting
    /// coordinator's write-ahead journal; the coordinator prepends the
    /// object id. Null when journaling is disabled — every journal-only
    /// behaviour (idempotent duplicate handling, run probes) is gated on
    /// this so the journal-less protocol is bit-for-bit the original.
    std::function<void(std::uint8_t type, const Bytes& payload)>
        journal_record;
    /// Durability barrier: records appended so far survive any crash
    /// once this returns (WAL discipline: barrier before send/install).
    std::function<void()> journal_barrier;
    /// Crash-point hook: invoked with a point name at every persist/send
    /// boundary; an armed hook throws SimulatedCrash. Null in production.
    std::function<void(const char* point)> crash_point;
    /// Bulk signature verification (DESIGN.md §13): verify every job and
    /// return one bool per job, in order. A coordinator with pipelining
    /// enabled backs this with crypto::batch_verify plus a verified-
    /// signature cache, so a batch decide's K response signatures cost
    /// far less than K full RSA verifications and retransmitted decides
    /// never re-enter RSA at all. Null falls back to per-job key_of +
    /// verify, which is bit-for-bit the unbatched behaviour.
    std::function<std::vector<bool>(const std::vector<VerifyJob>&)>
        verify_many;
  };

  Replica(PartyId self, ObjectId object, B2BObject& impl,
          const crypto::RsaPrivateKey& key, net::Rng& rng,
          Callbacks callbacks, store::CheckpointStore& checkpoints,
          store::MessageStore& messages);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // --- bootstrap ------------------------------------------------------------

  /// Install the genesis group and state out of band (the initial
  /// agreement between organisations that precedes protocol use).
  /// `members` must be ordered by join time and include self.
  void bootstrap(std::vector<PartyId> members, const Bytes& initial_state);

  /// True once bootstrapped or connected; false before, and again after a
  /// voluntary disconnection completes.
  bool connected() const { return connected_; }

  // --- local coordination API (driven by the Controller) --------------------

  /// Propose overwriting the shared state (§4.3). `new_state` is the
  /// serialized state the local object already holds (invariant 2: the
  /// proposer's current state is the proposed state).
  RunHandle propose_state(Bytes new_state);

  /// Propose an update (delta) yielding `new_state` (§4.3.1).
  RunHandle propose_update(Bytes update, Bytes new_state);

  // --- pipelined batches (DESIGN.md §13) -------------------------------------

  /// One element of a pipelined batch: an overwrite (`payload` IS the new
  /// state) or an update (delta) yielding `new_state`.
  struct BatchOp {
    bool is_update = false;
    Bytes payload;
    Bytes new_state;
  };

  /// Propose K state changes as ONE coordination run (run pipelining).
  /// The ops are hash-chained; the proposer signs only the chain head, a
  /// responder answers the whole batch with one signed response, and the
  /// single batch decide reveals every per-item authenticator — K agreed
  /// states for one signature per party. The installed tuple sequence is
  /// bit-for-bit what K sequential runs would have produced. Unlike
  /// propose_state/propose_update the caller must NOT pre-mutate the
  /// object: the replica applies the final state itself once the batch
  /// validates (invariant 2).
  RunHandle propose_batch(std::vector<BatchOp> ops);

  // --- deal legs (DESIGN.md §12; driven by the DealCoordinator) --------------

  /// Result of staging one deal leg: the run handle, plus the label and
  /// proposed tuple the deal layer needs to enlist participants.
  struct StagedLeg {
    RunHandle handle;
    std::string label;
    StateTuple proposed;
    std::size_t recipient_count = 0;
  };

  /// Phase A of a deal leg: create and journal a *staged* proposer run —
  /// identical to propose_update/propose_state except that NOTHING is
  /// sent yet and, once the response set completes, the run parks
  /// undecided (DealHooks::on_leg_prepared fires) instead of
  /// auto-deciding. Throws std::runtime_error if this replica is busy.
  StagedLeg stage_deal_run(bool is_update, Bytes payload, Bytes new_state,
                           const std::string& deal_id);

  /// Phase B (after the deal-open record is durable): send the staged
  /// run's propose followed by the deal enlist to every recipient, arm
  /// probes and (if configured) the leg deadline.
  void launch_staged_run(const std::string& label,
                         const DealEnlistMsg& enlist);

  /// Commit a prepared staged leg: un-stages the run and drives the
  /// normal decide phase (authenticator reveal, install). The decision
  /// message is broadcast alongside as the cross-leg evidence artifact.
  void commit_staged_run(const std::string& label,
                         const DealDecisionMsg& decision);

  /// Abort a staged leg (prepared or not): broadcast the signed abort
  /// decision, roll the object back to agreed state, complete the run
  /// handle as aborted.
  void abort_staged_run(const std::string& label,
                        const DealDecisionMsg& decision);

  /// Quietly discard a staged run that was never launched (crash between
  /// staging and the deal-open record): nothing was sent, so no peer ever
  /// saw it. Rolls back and completes the handle as aborted.
  void cancel_staged_run(const std::string& label);

  /// Recovery: re-send the staged run's propose + enlist to recipients
  /// whose responses are missing and re-arm probes. Returns false if no
  /// such staged run is open.
  bool resume_staged_run(const std::string& label,
                         const DealEnlistMsg& enlist);

  /// Status of a staged run's parked response set.
  struct StagedRunStatus {
    bool open = false;      // staged run with this label exists
    bool complete = false;  // every recipient responded
    bool all_accept = false;
    std::vector<PartyId> vetoers;
  };
  StagedRunStatus staged_run_status(const std::string& label) const;

  /// The open staged run, if any: (label, deal id). At most one (a
  /// replica has at most one proposer run).
  std::optional<std::pair<std::string, std::string>> staged_run() const;

  /// Build the per-leg transcript for deal-level TTP registration. The
  /// returned request carries the propose + all collected responses and
  /// is unsigned (the deal-level request signature covers it). Empty if
  /// no staged run with this label is open.
  std::optional<TerminationRequest> staged_termination_request(
      const std::string& label) const;

  /// Hooks the deal layer installs to learn about leg progress. Both are
  /// invoked under this replica's shard lock — implementations may only
  /// touch deal-internal (leaf) state and schedule work, never call back
  /// into any shard.
  struct DealHooks {
    /// Fires when a staged run's response set completes.
    std::function<void(const ObjectId& object, const std::string& label,
                       bool all_accept, const std::vector<PartyId>& vetoers)>
        on_leg_prepared;
    /// Fires instead of a per-run TTP referral when a *staged* proposer
    /// run hits its deadline (the deal layer owns initiator escalation).
    std::function<void(const ObjectId& object, const std::string& label)>
        on_leg_deadline;
  };
  void set_deal_hooks(DealHooks hooks) { deal_hooks_ = std::move(hooks); }

  /// Subject side: ask to join the group coordinating this object.
  /// `via` is any known member; a non-sponsor member relays to the
  /// legitimate sponsor (§4.5.1).
  RunHandle request_connect(const PartyId& via);

  /// Propose eviction of `subjects` (§4.5.4). Relays to the sponsor when
  /// the caller is not the sponsor.
  RunHandle propose_eviction(std::vector<PartyId> subjects);

  /// Voluntary disconnection of this party (§4.5.4).
  RunHandle request_disconnect();

  // --- message dispatch ------------------------------------------------------

  /// Handle one incoming protocol message.
  void handle(const PartyId& from, const Envelope& envelope);

  // --- introspection ----------------------------------------------------------

  const PartyId& self() const { return self_; }
  const ObjectId& object_id() const { return object_; }
  B2BObject& impl() { return impl_; }
  const std::vector<PartyId>& members() const { return members_; }
  const StateTuple& agreed_tuple() const { return agreed_tuple_; }
  const GroupTuple& group_tuple() const { return group_tuple_; }
  const Bytes& agreed_state() const { return agreed_state_; }
  std::uint64_t last_seen_sequence() const { return last_seen_seq_; }

  /// The legitimate sponsor for a connection request: the most recently
  /// joined member (§4.5.1).
  PartyId connect_sponsor() const;

  /// The legitimate sponsor for disconnection of `subject`: the most
  /// recently joined member, or its predecessor if it is the subject.
  PartyId disconnect_sponsor(const PartyId& subject) const;

  /// Labels of protocol runs this replica believes are still active —
  /// the evidence that "the protocol run is active" (§4.4).
  std::vector<std::string> active_run_labels() const;
  bool busy() const;

  /// Extra-protocol resolution hook (§7): locally abandon a blocked run,
  /// rolling back any provisional state. Records evidence of the abort.
  /// Returns false if no such run is active.
  bool resolve_blocked_run(const std::string& run_label);

  /// Count of misbehaviour detections recorded by this replica.
  std::uint64_t violations_detected() const { return violations_detected_; }

  /// Configure sponsor selection (must match across all parties).
  void set_sponsor_policy(SponsorPolicy policy) { sponsor_policy_ = policy; }
  SponsorPolicy sponsor_policy() const { return sponsor_policy_; }

  /// Configure the group decision rule (must match across all parties).
  void set_decision_rule(DecisionRule rule) { decision_rule_ = rule; }
  DecisionRule decision_rule() const { return decision_rule_; }

  // --- TTP-certified termination (§7 extension) ---------------------------------

  struct TtpConfig {
    PartyId ttp;
    crypto::RsaPublicKey ttp_key;
    /// Virtual-time deadline: a run still active this long after it was
    /// seen locally is referred to the TTP.
    std::uint64_t deadline_micros = 0;
  };

  /// Enable deadline-based certified termination. Requires the hosting
  /// coordinator to provide Callbacks::schedule.
  void enable_ttp_termination(TtpConfig config);
  bool ttp_termination_enabled() const { return ttp_.has_value(); }

  // --- crash recovery ----------------------------------------------------------

  /// Capture the durable state (taken after every installed state in a
  /// real deployment; here callable at any quiescent point).
  ReplicaSnapshot export_snapshot() const;

  /// Rebuild from a snapshot after a restart: replicated state and replay
  /// protection are restored, the application object is re-initialised
  /// with the agreed state, and any half-finished local runs are dropped
  /// (peers recover via retransmission or extra-protocol resolution).
  /// Records a "recovery" evidence record.
  void restore_snapshot(const ReplicaSnapshot& snapshot);

  // --- journal-based recovery (write-ahead journal replay) ---------------------

  /// Durable image of an in-flight proposer-side state run, journaled
  /// before the propose is sent so the run can be resumed after a crash.
  struct ProposerRunRecord {
    ProposeMsg propose;
    Bytes authenticator;
    Bytes new_state;
    std::vector<PartyId> recipients;

    Bytes encode() const;
    static ProposerRunRecord decode(BytesView data);  // throws CodecError
  };

  /// Durable image of an in-flight responder-side state run, journaled
  /// before the signed response is sent.
  struct ResponderRunRecord {
    ProposeMsg propose;
    Bytes pending_state;
    RespondMsg my_response;
    std::vector<PartyId> members_at_response;

    Bytes encode() const;
    static ResponderRunRecord decode(BytesView data);  // throws CodecError
  };

  /// Durable image of an in-flight batch proposer run (DESIGN.md §13),
  /// journaled before the batch propose is sent. Carries ALL per-item
  /// authenticators and full per-item states so a recovered proposer can
  /// redo the batch decide (which reveals every authenticator) and the
  /// per-item installs.
  struct BatchProposerRunRecord {
    BatchProposeMsg propose;
    std::vector<Bytes> authenticators;
    std::vector<Bytes> states;
    std::vector<PartyId> recipients;

    Bytes encode() const;
    static BatchProposerRunRecord decode(BytesView data);  // throws CodecError
  };

  /// Durable image of a responder-side batch run, journaled (with the
  /// validated per-item scratch states) before the single signed
  /// response is sent.
  struct BatchResponderRunRecord {
    BatchProposeMsg propose;
    std::vector<Bytes> pending_states;  // empty when the batch was rejected
    RespondMsg my_response;
    std::vector<PartyId> members_at_response;

    Bytes encode() const;
    // throws CodecError
    static BatchResponderRunRecord decode(BytesView data);
  };

  /// Durable image of an in-flight sponsor-side membership run (§4.5),
  /// journaled before the membership propose is sent. The signed request
  /// (and its signature) ride inside the proposal; `report_to` is not
  /// persisted because a relayed eviction proposer learns the outcome
  /// from the decide broadcast, not from a sponsor report.
  struct SponsorRunRecord {
    MembershipProposeMsg propose;
    Bytes authenticator;
    std::vector<PartyId> recipients;

    Bytes encode() const;
    static SponsorRunRecord decode(BytesView data);  // throws CodecError
  };

  /// Durable image of a recipient-side membership run, journaled before
  /// the signed membership response is sent.
  struct MembershipResponderRunRecord {
    MembershipProposeMsg propose;
    MembershipRespondMsg my_response;
    std::vector<PartyId> members_at_response;

    Bytes encode() const;
    // throws CodecError
    static MembershipResponderRunRecord decode(BytesView data);
  };

  /// Durable image of a subject-side connect/disconnect request (or a
  /// relayed eviction request), journaled before it goes to the sponsor
  /// so a recovering subject re-sends the SAME nonce — which the sponsor
  /// recognises and answers idempotently — instead of forging a second
  /// request under a fresh one.
  struct SubjectRequestRecord {
    MembershipRequest request;
    Bytes signature;
    PartyId sent_to;
    bool relayed_eviction = false;

    Bytes encode() const;
    static SubjectRequestRecord decode(BytesView data);  // throws CodecError
  };

  /// Everything the coordinator's journal replay reconstructed for one
  /// object: the latest snapshot, the still-open runs on both sides, and
  /// the replay-protection facts that must outlive any snapshot.
  struct RecoveredObjectState {
    std::optional<ReplicaSnapshot> snapshot;
    std::optional<ProposerRunRecord> proposer_run;
    std::vector<RespondMsg> proposer_responses;
    /// Set when the decide was journaled but the run not closed: the
    /// decide phase must be redone (idempotently) on resume.
    std::optional<DecideMsg> proposer_decide;
    std::map<std::string, ResponderRunRecord> responder_runs;
    /// Decides journaled as delivered whose installation may not have
    /// completed before the crash; concluded again on resume.
    std::map<std::string, DecideMsg> responder_decides;
    std::set<std::string> seen_labels;
    std::uint64_t max_sequence = 0;

    // --- pipelined batches (DESIGN.md §13) ------------------------------------
    std::optional<BatchProposerRunRecord> batch_proposer_run;
    /// Batch decide journaled but the run not closed: the batch decide
    /// phase is redone to the journaled outcome on resume.
    std::optional<BatchDecideMsg> batch_proposer_decide;
    std::map<std::string, BatchResponderRunRecord> batch_responder_runs;
    /// Batch decides journaled as delivered whose per-item installation
    /// may not have completed; concluded again on resume.
    std::map<std::string, BatchDecideMsg> batch_responder_decides;

    // --- membership runs (§4.5) ---------------------------------------------
    std::optional<SponsorRunRecord> sponsor_run;
    std::vector<MembershipRespondMsg> sponsor_responses;
    /// Membership decide journaled but the run not closed: redone on
    /// resume, exactly like proposer_decide.
    std::optional<MembershipDecideMsg> sponsor_decide;
    std::map<std::string, MembershipResponderRunRecord>
        membership_responder_runs;
    /// Membership decides journaled as delivered whose installation may
    /// not have completed; concluded again on resume.
    std::map<std::string, MembershipDecideMsg> membership_decides;
    std::optional<SubjectRequestRecord> subject_request;
    /// Membership-request nonces the sponsor side had acted on: survives
    /// so a recovered sponsor does not re-run an already-applied change
    /// when the subject probes it under the original nonce.
    std::set<std::string> processed_nonces;

    // --- TTP termination (§7) -----------------------------------------------
    std::map<std::string, bool> termination_submissions;  // label->proposer?
    std::map<std::string, Bytes> verdicts;  // label -> signed verdict body

    // --- deal legs (DESIGN.md §12) --------------------------------------------
    /// Open staged proposer runs: run label -> deal id. (At most one per
    /// object, but keyed for symmetry with the closing record.)
    std::map<std::string, std::string> staged_runs;
    /// Participant-side enlists journaled as received: run label ->
    /// encoded DealEnlistMsg.
    std::map<std::string, Bytes> deal_enlists;
  };

  /// Rebuild this replica from a journal replay (called by the hosting
  /// coordinator during register_object, instead of bootstrap). Restores
  /// replicated state, re-opens in-flight runs, re-establishes the accept
  /// lock and invariant 2 (the object holds our own open proposal's
  /// state). Records a "recovery" evidence record.
  void restore_recovered(const RecoveredObjectState& recovered);

  /// Redo-and-resend phase of recovery, run after every object is
  /// restored: finishes journaled-but-uninstalled decides (idempotent
  /// redo), re-sends the in-flight propose/response messages, and re-arms
  /// the capped run probes. Returns the handles of runs still in flight
  /// (already-complete redos resolve their handles before returning).
  std::vector<RunHandle> resume_recovered_runs();

  /// Capped periodic re-probe configuration (journal-gated liveness: the
  /// transport acks a frame before the coordinator journals it, so a
  /// message can be acked-then-lost in a crash; probes re-drive the
  /// exchange). Must be set before any run starts.
  void set_run_probe(std::uint64_t interval_micros, int max_probes) {
    run_probe_interval_micros_ = interval_micros;
    max_run_probes_ = max_probes;
  }

 private:
  friend class ReplicaMembership;

  // --- journaling helpers ----------------------------------------------------
  bool journaling() const {
    return static_cast<bool>(callbacks_.journal_record);
  }
  void journal_record(std::uint8_t type, const Bytes& payload);
  void journal_barrier();
  void hit_crash_point(const char* point);
  /// Journal the current durable replicated state (kSnapshot + barrier).
  void journal_snapshot();
  void journal_run_closed(std::uint8_t type, const std::string& label);
  /// Re-send the stored decide of a closed run to `to` (a recovering
  /// responder probing us). Returns false if no decide is on record.
  bool maybe_resend_decide(const std::string& label, const PartyId& to);
  /// Arm one capped re-probe of a still-open run (journal-gated).
  void arm_run_probe(const std::string& label, bool as_proposer, int attempt);

  // --- membership journaling & recovery (membership.cpp) ---------------------
  /// Like maybe_resend_decide, for membership decides ("m.decide").
  bool maybe_resend_membership_decide(const std::string& label,
                                      const PartyId& to);
  /// Re-send the stored welcome/reject/confirm answer of an already
  /// answered subject request (journal-gated duplicate handling).
  bool maybe_reanswer_membership_request(const std::string& nonce_key,
                                         const PartyId& subject);
  /// File the answer to a subject request so a duplicate of the same
  /// request (recovering subject probing us) can be re-answered.
  void remember_subject_answer(const std::string& nonce_key,
                               const PartyId& subject, MsgType type,
                               const Bytes& payload);
  /// Journal the pending subject-side request (kSubjectRequest + barrier).
  void journal_subject_request(const MembershipRequest& request,
                               const Bytes& signature, const PartyId& sent_to,
                               bool relayed_eviction);
  /// Close the pending subject-side request (kSubjectClosed + barrier).
  void close_subject_request(const std::string& nonce_key);
  /// Capped re-probe of a still-open membership run (journal-gated).
  void arm_membership_probe(const std::string& label, bool as_sponsor,
                            int attempt);
  /// Capped re-probe of the pending subject request (journal-gated).
  void arm_subject_probe(std::string nonce_key, int attempt);
  void resend_subject_request();
  void abort_runs_on_departure();
  void restore_recovered_membership(const RecoveredObjectState& recovered);
  void resume_recovered_membership(std::vector<RunHandle>& handles);

  // --- shared helpers (replica_common in replica.cpp) -----------------------
  std::uint64_t next_sequence();
  void note_sequence(std::uint64_t sequence);
  Bytes fresh_random();
  void record_violation(const std::string& what, const PartyId& suspect);
  /// Like record_violation, but for events that are evidence-worthy yet
  /// explainable by benign races (stale views after membership changes,
  /// duplicate decides): logged, not counted as misbehaviour.
  void record_anomaly(const std::string& what, const PartyId& party);
  void send_envelope(const PartyId& to, MsgType type, Bytes body);
  bool is_member(const PartyId& party) const;
  /// `bookkeep = false` installs the tuple/state without checkpoint,
  /// evidence or journal snapshot — used for the intermediate items of a
  /// batch, whose bookkeeping the final item's install subsumes (the
  /// checkpoint store only keeps the latest state per object, and the
  /// batch decide evidence already carries every item tuple). Skipping
  /// it keeps the per-item cost of a batch free of RSA work: evidence
  /// records are TSS-stamped, and one stamp per item would quietly
  /// restore the per-item RSA floor pipelining exists to kill.
  void install_agreed_state(const StateTuple& tuple, Bytes state,
                            bool apply_to_object, bool bookkeep = true);
  void complete(const RunHandle& handle, RunResult::Outcome outcome,
                std::string diagnostic, std::vector<PartyId> vetoers,
                std::uint64_t sequence, const std::string& label);

  // --- state coordination: proposer side -------------------------------------
  RunHandle start_state_run(bool is_update, Bytes payload, Bytes new_state);
  void handle_respond(const PartyId& from, const Bytes& body);
  void finish_state_run_as_proposer();
  void finish_batch_run_as_proposer();

  // --- state coordination: responder side ------------------------------------
  void handle_propose(const PartyId& from, const Bytes& body);
  void handle_decide(const PartyId& from, const Bytes& body);
  Decision evaluate_proposal(const ProposeMsg& msg, Bytes* new_state_out);
  struct ResponderRun;
  std::optional<Bytes> derive_agreed_state(ResponderRun& run);

  // --- pipelined batches (DESIGN.md §13) ---------------------------------------
  void handle_batch_propose(const PartyId& from, const Bytes& body);
  void handle_batch_decide(const PartyId& from, const Bytes& body);
  /// Shared tail of handle_batch_decide and the recovery redo: verify the
  /// aggregated responses (via verify_many when available), compute the
  /// group decision, install every item in order or discard, release the
  /// lock. `run` must already be removed from the map.
  void conclude_batch_responder_run(const std::string& label,
                                    ResponderRun run,
                                    const BatchDecideMsg& msg,
                                    const PartyId& attribute_to);
  /// Re-derive every item state of an overridden-veto batch from our own
  /// copy of the payloads (nullopt if any hash cannot be confirmed).
  std::optional<std::vector<Bytes>> derive_batch_agreed_states(
      ResponderRun& run);
  /// Re-send the stored batch decide of a closed run to a probing
  /// responder. Returns false if none is on record.
  bool maybe_resend_batch_decide(const std::string& label, const PartyId& to);

  /// Shared tail of handle_decide and TTP-certified decisions: verify the
  /// aggregated responses, compute the group decision, install or discard,
  /// release the lock. `run` must already be removed from the map.
  void conclude_responder_run(const std::string& label, ResponderRun run,
                              const std::vector<RespondMsg>& responses,
                              const PartyId& attribute_to);

  // --- TTP termination helpers ---------------------------------------------------
  void arm_deadline(const std::string& label, bool as_proposer);
  void request_termination(const std::string& label, bool as_proposer);
  void handle_termination_verdict(const PartyId& from, const Bytes& body);

  // --- deal legs (deal participant side) --------------------------------------
  void handle_deal_enlist(const PartyId& from, const Bytes& body);
  void handle_deal_decision(const PartyId& from, const Bytes& body);
  /// Re-send the stored deal decision of a closed (aborted) staged run to
  /// a probing responder. Returns false if none is on record.
  bool maybe_resend_deal_decision(const std::string& label, const PartyId& to);

  // --- membership (implementation in membership.cpp) --------------------------
  void handle_connect_request(const PartyId& from, const Bytes& body);
  void handle_membership_propose(const PartyId& from, const Bytes& body);
  void handle_membership_respond(const PartyId& from, const Bytes& body);
  void handle_membership_decide(const PartyId& from, const Bytes& body);
  /// Shared tail of handle_membership_decide and the recovery redo:
  /// verify the aggregated responses, apply or discard the change, close
  /// the run. `run` must already be removed from the map.
  struct MembershipResponderRun;
  void conclude_membership_responder_run(const std::string& label,
                                         MembershipResponderRun run,
                                         const MembershipDecideMsg& msg);
  void handle_connect_welcome(const PartyId& from, const Bytes& body);
  void handle_connect_reject(const PartyId& from, const Bytes& body);
  void handle_disconnect_request(const PartyId& from, const Bytes& body);
  void handle_disconnect_confirm(const PartyId& from, const Bytes& body);
  RunHandle start_membership_run(MembershipRequest request,
                                 Bytes request_signature, RunHandle handle);
  void finish_membership_run_as_sponsor();
  void apply_membership_change(const MembershipProposal& proposal);
  Decision evaluate_membership_proposal(const MembershipProposeMsg& msg);
  /// Sponsor-side request intake shared by fresh and deferred requests.
  void process_membership_request(MembershipRequest request, Bytes signature);
  /// Hand a request we cannot serve (departed) to another member.
  void forward_membership_request(const MembershipRequest& request,
                                  const Bytes& signature,
                                  const PartyId& exclude);
  /// Process deferred requests once no run is active (§4.5.1 "blocking").
  void drain_deferred_membership();

  // --- identity & collaborators ----------------------------------------------
  PartyId self_;
  ObjectId object_;
  B2BObject& impl_;
  const crypto::RsaPrivateKey& key_;
  net::Rng& rng_;
  Callbacks callbacks_;
  store::CheckpointStore& checkpoints_;
  store::MessageStore& messages_;

  // --- replicated state --------------------------------------------------------
  bool connected_ = false;
  std::vector<PartyId> members_;  // ordered by join time
  GroupTuple group_tuple_;
  StateTuple agreed_tuple_;
  Bytes agreed_state_;
  std::uint64_t last_seen_seq_ = 0;
  std::set<std::string> seen_run_labels_;  // replay detection (§4.4)
  std::uint64_t violations_detected_ = 0;
  SponsorPolicy sponsor_policy_ = SponsorPolicy::kRotating;
  DecisionRule decision_rule_ = DecisionRule::kUnanimous;
  std::optional<TtpConfig> ttp_;

  /// Group decision from (consistent) accept count under the configured
  /// rule; `accepts` counts recipient accepts (the proposer is implicit).
  bool group_accepts(std::size_t accepts, std::size_t recipients) const;

  // --- proposer-side active state run ------------------------------------------
  /// Batch overlay on a proposer run (DESIGN.md §13): present iff the run
  /// is a pipelined batch. `propose` is the wire message (re-sent by
  /// probes and recovery); the outer run's ProposeMsg mirrors its
  /// proposal for label routing and response cross-checks.
  struct BatchProposerState {
    BatchProposeMsg propose;
    std::vector<Bytes> authenticators;  // r_i: preimage of item i's rand_hash
    std::vector<Bytes> states;          // full state after item i
  };
  struct ProposerRun {
    ProposeMsg propose;
    Bytes authenticator;  // r: preimage of proposed.rand_hash
    Bytes new_state;      // state to install on agreement
    std::vector<PartyId> recipients;
    std::map<PartyId, RespondMsg> responses;
    RunHandle result;
    /// Deal leg (DESIGN.md §12): park the completed response set for the
    /// deal layer instead of auto-deciding.
    bool deal_staged = false;
    std::string deal_id;
    std::optional<BatchProposerState> batch;
  };
  std::optional<ProposerRun> proposer_run_;

  // --- responder-side active state run ------------------------------------------
  /// Batch overlay on a responder run: the original batch propose (for
  /// authenticator checks and state re-derivation) plus the validated
  /// per-item scratch states (empty when we rejected the batch).
  struct BatchResponderState {
    BatchProposeMsg propose;
    std::vector<Bytes> pending_states;
  };
  struct ResponderRun {
    ProposeMsg propose;
    Bytes pending_state;  // state to install if the group agrees
    Decision my_decision;
    RespondMsg my_response;
    /// Membership at response time: the decide's response coverage is
    /// checked against this, not against the (possibly since-changed)
    /// current member list.
    std::vector<PartyId> members_at_response;
    std::optional<BatchResponderState> batch;
  };
  std::map<std::string, ResponderRun> responder_runs_;
  /// Label of the run this replica has *accepted* and is provisionally
  /// locked on (at most one at a time; others are rejected as busy).
  std::optional<std::string> accept_lock_;

  // --- membership runs -----------------------------------------------------------
  struct SponsorRun {
    MembershipProposeMsg propose;
    Bytes authenticator;
    std::vector<PartyId> recipients;
    std::map<PartyId, MembershipRespondMsg> responses;
    RunHandle result;
    /// For eviction relayed by a non-sponsor proposer: where to report.
    std::optional<PartyId> report_to;
  };
  std::optional<SponsorRun> sponsor_run_;

  struct MembershipResponderRun {
    MembershipProposeMsg propose;
    MembershipRespondMsg my_response;
    std::vector<PartyId> members_at_response;
  };
  std::map<std::string, MembershipResponderRun> membership_responder_runs_;

  /// Subject-side pending connect/disconnect request.
  struct SubjectRequest {
    MembershipRequest request;
    RunHandle result;
  };
  std::optional<SubjectRequest> subject_request_;

  /// Eviction proposer (non-sponsor) waiting for the outcome.
  std::optional<RunHandle> relayed_eviction_result_;
  std::string relayed_eviction_nonce_;

  /// Membership requests deferred while a coordination run was active.
  /// Bounded: past kMaxDeferredMembership further requests are dropped
  /// with an anomaly record (the requester's capped probe retries).
  std::deque<std::pair<MembershipRequest, Bytes>> deferred_membership_;
  static constexpr std::size_t kMaxDeferredMembership = 64;
  /// Nonces of membership requests this sponsor has already acted on
  /// (bounded, watermark-style eviction — see BoundedNonceSet).
  BoundedNonceSet sponsor_nonces_;
  /// Retry accounting for voluntary departures vetoed by transient
  /// view inconsistency.
  std::map<std::string, int> voluntary_retry_counts_;
  static constexpr int kMaxVoluntaryRetries = 32;
  /// Per-nonce forwarding budget for requests received while departed.
  std::map<std::string, int> forward_counts_;

  // --- journal-based recovery state ----------------------------------------------
  /// Decide journaled by our previous incarnation but not confirmed
  /// installed: redone in resume_recovered_runs.
  std::optional<DecideMsg> recovered_decide_;
  /// Delivered decides whose conclusion must be redone on resume.
  std::map<std::string, DecideMsg> pending_redo_decides_;
  /// Batch decide journaled by our previous incarnation but not confirmed
  /// installed: redone (to the journaled outcome) in resume_recovered_runs.
  std::optional<BatchDecideMsg> recovered_batch_decide_;
  /// Delivered batch decides whose conclusion must be redone on resume.
  std::map<std::string, BatchDecideMsg> pending_redo_batch_decides_;
  /// Membership decide journaled by our previous incarnation as sponsor
  /// but not confirmed installed: redone in resume_recovered_runs.
  std::optional<MembershipDecideMsg> recovered_membership_decide_;
  /// Delivered membership decides whose conclusion must be redone.
  std::map<std::string, MembershipDecideMsg> pending_redo_membership_decides_;
  /// The durable image of our own pending subject-side request: set while
  /// the request is unanswered (journal-gated), drives the subject probe
  /// and the recovery re-send under the original nonce.
  std::optional<SubjectRequestRecord> pending_subject_record_;
  /// TTP referrals journaled before the crash (label -> as_proposer):
  /// resubmitted on resume — the TTP's verdict cache makes resubmission a
  /// re-fetch of any decision it already issued.
  std::map<std::string, bool> recovered_termination_submissions_;
  /// Signed verdict bodies journaled as delivered but possibly not acted
  /// on; redone on resume once the TTP config is re-enabled.
  std::map<std::string, Bytes> pending_redo_verdicts_;
  std::uint64_t run_probe_interval_micros_ = 1'000'000;
  int max_run_probes_ = 12;

  // --- deal legs (DESIGN.md §12) --------------------------------------------------
  DealHooks deal_hooks_;
  /// Participant side: enlists received, keyed by leg run label. Kept for
  /// evidence/blame and decision verification; bounded by active deals.
  std::map<std::string, DealEnlistMsg> deal_enlists_;
  /// First signed deal decision seen per deal id — a later one with a
  /// different signed core is proof of initiator equivocation.
  std::map<std::string, DealDecisionMsg> deal_decisions_seen_;
};

}  // namespace b2b::core
