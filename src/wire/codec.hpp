// Manual binary serialization (the "CORBA-era plumbing").
//
// The original prototype used Java RMI; in C++ we marshal every protocol
// message by hand. Encoder/Decoder implement a small, self-describing-free
// binary format: fixed-width little-endian integers, LEB128 varints, and
// length-prefixed byte strings. Decoder is strict — any truncation,
// overlong varint or trailing garbage raises CodecError, which the protocol
// layer treats as evidence of a malformed (possibly malicious) message.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace b2b::wire {

class Encoder {
 public:
  Encoder() = default;

  Encoder& u8(std::uint8_t value);
  Encoder& u16(std::uint16_t value);
  Encoder& u32(std::uint32_t value);
  Encoder& u64(std::uint64_t value);
  /// Unsigned LEB128.
  Encoder& varint(std::uint64_t value);
  Encoder& boolean(bool value);
  /// Length-prefixed (varint) byte string.
  Encoder& blob(BytesView data);
  /// Length-prefixed string (same wire form as blob).
  Encoder& str(std::string_view value);
  /// Raw bytes with NO length prefix (for fixed-size fields like digests).
  Encoder& raw(BytesView data);

  const Bytes& bytes() const& { return out_; }
  Bytes take() && { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

class Decoder {
 public:
  /// The decoder keeps only a view; the caller must keep `data` alive.
  explicit Decoder(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  bool boolean();
  Bytes blob();
  std::string str();
  /// Exactly `len` raw bytes.
  Bytes raw(std::size_t len);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Throws CodecError unless all input was consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace b2b::wire
