#include "wire/codec.hpp"

namespace b2b::wire {

Encoder& Encoder::u8(std::uint8_t value) {
  out_.push_back(value);
  return *this;
}

Encoder& Encoder::u16(std::uint16_t value) {
  out_.push_back(static_cast<std::uint8_t>(value));
  out_.push_back(static_cast<std::uint8_t>(value >> 8));
  return *this;
}

Encoder& Encoder::u32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
  return *this;
}

Encoder& Encoder::u64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
  return *this;
}

Encoder& Encoder::varint(std::uint64_t value) {
  while (value >= 0x80) {
    out_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out_.push_back(static_cast<std::uint8_t>(value));
  return *this;
}

Encoder& Encoder::boolean(bool value) { return u8(value ? 1 : 0); }

Encoder& Encoder::blob(BytesView data) {
  varint(data.size());
  return raw(data);
}

Encoder& Encoder::str(std::string_view value) {
  varint(value.size());
  out_.insert(out_.end(), value.begin(), value.end());
  return *this;
}

Encoder& Encoder::raw(BytesView data) {
  out_.insert(out_.end(), data.begin(), data.end());
  return *this;
}

void Decoder::need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    throw CodecError("truncated input: need " + std::to_string(n) +
                     " bytes, have " + std::to_string(data_.size() - pos_));
  }
}

std::uint8_t Decoder::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Decoder::u16() {
  need(2);
  std::uint16_t value = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return value;
}

std::uint32_t Decoder::u32() {
  need(4);
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 4;
  return value;
}

std::uint64_t Decoder::u64() {
  need(8);
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 8;
  return value;
}

std::uint64_t Decoder::varint() {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    need(1);
    std::uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & 0xfe) != 0) {
      throw CodecError("varint overflows 64 bits");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical (overlong) encodings such as 0x80 0x00.
      if (byte == 0 && shift != 0) {
        throw CodecError("non-canonical varint");
      }
      return value;
    }
    shift += 7;
    if (shift > 63) throw CodecError("varint too long");
  }
}

bool Decoder::boolean() {
  std::uint8_t value = u8();
  if (value > 1) throw CodecError("invalid boolean value");
  return value == 1;
}

Bytes Decoder::blob() {
  std::uint64_t len = varint();
  if (len > remaining()) throw CodecError("blob length exceeds input");
  return raw(static_cast<std::size_t>(len));
}

std::string Decoder::str() {
  Bytes data = blob();
  return std::string(data.begin(), data.end());
}

Bytes Decoder::raw(std::size_t len) {
  need(len);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

void Decoder::expect_done() const {
  if (!done()) {
    throw CodecError("trailing bytes after message: " +
                     std::to_string(remaining()));
  }
}

}  // namespace b2b::wire
