// Baseline: plain (non-non-repudiable) two-phase-commit state replication.
//
// §4.3 describes the B2BObjects protocol as "in essence ... non-repudiable
// two-phase commit". This module is the same propose/vote/decide shape
// with everything the paper adds stripped away: no signatures, no state
// identifier tuples, no random authenticators, no evidence logging and no
// time-stamping. Application-level validation is retained (the same
// B2BObject upcall) so a comparison measures exactly the cost of the
// dependability machinery (bench E9), not a different workload.
//
// It shares the transport abstraction (net::Transport, usually backed by
// the same ReliableEndpoint/SimNetwork substrate as the full protocol), so
// byte and message counts are directly comparable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "b2b/object.hpp"
#include "b2b/replica.hpp"
#include "net/runtime.hpp"

namespace b2b::baseline {

/// Reuses core::RunResult so callers drive both stacks identically.
using core::RunHandle;
using core::RunResult;

/// Thread-safe on the threaded runtime: an internal mutex serialises
/// propose_state() against transport-thread message delivery.
class PlainReplica {
 public:
  PlainReplica(PartyId self, ObjectId object, core::B2BObject& impl,
               net::Transport& transport);

  /// Out-of-band genesis, mirroring Replica::bootstrap.
  void bootstrap(std::vector<PartyId> members, const Bytes& initial_state);

  /// Propose replacing the shared state (the object already holds it).
  RunHandle propose_state(Bytes new_state);

  std::vector<PartyId> members() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return members_;
  }
  std::uint64_t agreed_sequence() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return agreed_seq_;
  }
  Bytes agreed_state() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return agreed_state_;
  }

  /// Protocol messages sent (for complexity comparison).
  std::uint64_t messages_sent() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return messages_sent_;
  }
  std::uint64_t bytes_sent() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_sent_;
  }

 private:
  void on_message(const PartyId& from, const Bytes& payload);
  void handle_propose(const PartyId& from, std::uint64_t seq,
                      const Bytes& state);
  void handle_vote(const PartyId& from, std::uint64_t seq, bool accept,
                   const std::string& diagnostic);
  void handle_decision(const PartyId& from, std::uint64_t seq, bool commit);
  void send(const PartyId& to, const Bytes& payload);

  PartyId self_;
  ObjectId object_;
  core::B2BObject& impl_;
  net::Transport& transport_;
  mutable std::mutex mutex_;

  std::vector<PartyId> members_;
  std::uint64_t agreed_seq_ = 0;
  Bytes agreed_state_;
  std::uint64_t last_seen_seq_ = 0;

  struct ProposerRun {
    std::uint64_t seq = 0;
    Bytes new_state;
    std::map<PartyId, bool> votes;
    std::vector<PartyId> vetoers;
    std::string first_diagnostic;
    std::size_t expected = 0;
    RunHandle result;
  };
  std::optional<ProposerRun> proposer_run_;

  struct ResponderRun {
    PartyId proposer;
    Bytes pending_state;
    bool accepted = false;
  };
  std::map<std::uint64_t, ResponderRun> responder_runs_;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace b2b::baseline
