#include "baseline/plain2pc.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "wire/codec.hpp"

namespace b2b::baseline {

namespace {

constexpr std::uint8_t kPropose = 1;
constexpr std::uint8_t kVote = 2;
constexpr std::uint8_t kDecision = 3;

void complete(const RunHandle& handle, RunResult::Outcome outcome,
              std::string diagnostic, std::vector<PartyId> vetoers,
              std::uint64_t seq) {
  handle->diagnostic = std::move(diagnostic);
  handle->vetoers = std::move(vetoers);
  handle->sequence = seq;
  handle->outcome = outcome;  // last: done() pollers see the fields above
  if (handle->on_complete) handle->on_complete(*handle);
}

}  // namespace

PlainReplica::PlainReplica(PartyId self, ObjectId object,
                           core::B2BObject& impl, net::Transport& transport)
    : self_(std::move(self)),
      object_(std::move(object)),
      impl_(impl),
      transport_(transport) {
  transport_.set_handler([this](const PartyId& from, const Bytes& payload) {
    on_message(from, payload);
  });
}

void PlainReplica::bootstrap(std::vector<PartyId> members,
                             const Bytes& initial_state) {
  std::lock_guard<std::mutex> lock(mutex_);
  members_ = std::move(members);
  agreed_state_ = initial_state;
  agreed_seq_ = 0;
  impl_.apply_state(initial_state);
}

void PlainReplica::send(const PartyId& to, const Bytes& payload) {
  ++messages_sent_;
  bytes_sent_ += payload.size();
  transport_.send(to, payload);
}

RunHandle PlainReplica::propose_state(Bytes new_state) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto handle = std::make_shared<RunResult>();
  if (proposer_run_.has_value()) {
    impl_.apply_state(agreed_state_);
    complete(handle, RunResult::Outcome::kAborted, "busy", {}, 0);
    return handle;
  }
  ProposerRun run;
  run.seq = ++last_seen_seq_;
  run.new_state = std::move(new_state);
  run.result = handle;
  run.expected = members_.size() - 1;

  if (run.expected == 0) {
    agreed_state_ = run.new_state;
    agreed_seq_ = run.seq;
    complete(handle, RunResult::Outcome::kAgreed, "", {}, run.seq);
    return handle;
  }

  wire::Encoder enc;
  enc.u8(kPropose).u64(run.seq).blob(run.new_state);
  Bytes encoded = std::move(enc).take();
  for (const PartyId& member : members_) {
    if (member != self_) send(member, encoded);
  }
  proposer_run_ = std::move(run);
  return handle;
}

void PlainReplica::on_message(const PartyId& from, const Bytes& payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  try {
    wire::Decoder dec{payload};
    std::uint8_t type = dec.u8();
    std::uint64_t seq = dec.u64();
    switch (type) {
      case kPropose: {
        Bytes state = dec.blob();
        dec.expect_done();
        handle_propose(from, seq, state);
        break;
      }
      case kVote: {
        bool accept = dec.boolean();
        std::string diagnostic = dec.str();
        dec.expect_done();
        handle_vote(from, seq, accept, diagnostic);
        break;
      }
      case kDecision: {
        bool commit = dec.boolean();
        dec.expect_done();
        handle_decision(from, seq, commit);
        break;
      }
      default:
        break;  // baseline silently drops garbage (no evidence machinery)
    }
  } catch (const CodecError&) {
    // Silently dropped: the baseline records no evidence.
  }
}

void PlainReplica::handle_propose(const PartyId& from, std::uint64_t seq,
                                  const Bytes& state) {
  last_seen_seq_ = std::max(last_seen_seq_, seq);
  core::ValidationContext ctx{self_, from, object_, seq};
  core::Decision decision = impl_.validate_state(state, ctx);

  ResponderRun run;
  run.proposer = from;
  run.accepted = decision.accept;
  if (decision.accept) run.pending_state = state;
  responder_runs_[seq] = std::move(run);

  wire::Encoder enc;
  enc.u8(kVote).u64(seq).boolean(decision.accept).str(decision.diagnostic);
  send(from, std::move(enc).take());
}

void PlainReplica::handle_vote(const PartyId& from, std::uint64_t seq,
                               bool accept, const std::string& diagnostic) {
  if (!proposer_run_.has_value() || proposer_run_->seq != seq) return;
  ProposerRun& run = *proposer_run_;
  if (run.votes.contains(from)) return;
  run.votes[from] = accept;
  if (!accept) {
    run.vetoers.push_back(from);
    if (run.first_diagnostic.empty()) run.first_diagnostic = diagnostic;
  }
  if (run.votes.size() < run.expected) return;

  ProposerRun finished = std::move(run);
  proposer_run_.reset();
  bool commit = finished.vetoers.empty();

  wire::Encoder enc;
  enc.u8(kDecision).u64(seq).boolean(commit);
  Bytes encoded = std::move(enc).take();
  for (const PartyId& member : members_) {
    if (member != self_) send(member, encoded);
  }

  if (commit) {
    agreed_state_ = std::move(finished.new_state);
    agreed_seq_ = seq;
    complete(finished.result, RunResult::Outcome::kAgreed, "", {}, seq);
  } else {
    impl_.apply_state(agreed_state_);
    complete(finished.result, RunResult::Outcome::kVetoed,
             finished.first_diagnostic, std::move(finished.vetoers), seq);
  }
}

void PlainReplica::handle_decision(const PartyId& from, std::uint64_t seq,
                                   bool commit) {
  auto it = responder_runs_.find(seq);
  if (it == responder_runs_.end()) return;
  ResponderRun run = std::move(it->second);
  responder_runs_.erase(it);
  if (run.proposer != from) return;
  if (commit && run.accepted) {
    agreed_state_ = std::move(run.pending_state);
    agreed_seq_ = seq;
    impl_.apply_state(agreed_state_);
  }
}

}  // namespace b2b::baseline
